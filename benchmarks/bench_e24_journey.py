"""E24 (journey telemetry): detect and attribute a mid-run degradation.

The claim this experiment demonstrates numerically: the serving tier's
time-series + journey-tracing layer **notices a creeping degradation
within a bounded number of windows and names the right phase and
tenant** — with zero false positives on the healthy prefix of the very
same run.

One front door, one database, two tenants, sixteen simulated seconds:

* **prod** — always-fresh interactive queries (no result-cache reuse),
  the tenant actually exercising the planner and the IVF index.
* **replay** — a tiny fixed query pool replayed verbatim; after the
  first second it is served entirely from its result cache and is
  therefore *untouched* by the fault below.

At t=8s (after 8 healthy one-second windows — comfortably past the
anomaly monitor's warmup) the run injects a compound fault no single
counter names on its own:

* the **plan cache is disabled** (``db.plan_cache = None``) — every
  batch re-plans, adding the service model's ``planning_seconds``; and
* the **IVF index is doctored** (``nprobe`` 24 -> 1) — searches get
  *faster* but recall collapses, which only the recall-audit series
  can see.

The detectors must fire within ``DETECT_WITHIN_WINDOWS`` windows of the
fault and attribution must walk the exemplar journeys to the truth:
plan-cache collapse -> phase ``planning``, tenant ``prod`` (replay
never plans — its journeys stop at ``cache_lookup``); recall drift ->
phase ``index_scan``; p99 inflation -> tenant ``prod``.  Along the way
the serving spans must stay exact: every coalesced member's root links
to exactly one batch span (``validate_span_links`` is clean) and the
largest-remainder stats shares keep ``attribution_residual() == 0``
across every ``serve_request`` trace.

Everything runs on the simulated clock with seeded traffic, so the
anomaly list — down to the exemplar trace ids — is reproducible
bit-for-bit.

Artifacts: ``results/e24_journey.json`` (health dump + recent windows +
exemplar journeys + attributed anomalies; the interchange format
``python -m repro.observability report`` renders) and
``results/e24_journey.txt`` (the rendered dashboard; CI uploads both).
"""

import json
import math

import numpy as np
import pytest

from _util import RESULTS_DIR, emit
from repro.core.database import VectorDatabase
from repro.observability import (
    CacheHitRatioDetector,
    Observability,
    P99InflationDetector,
    PlanCacheCollapseDetector,
    QueryProfile,
    QueueWaitGrowthDetector,
    RecallDriftDetector,
    build_profile_tree,
    validate_span_links,
)
from repro.observability.__main__ import render_report
from repro.serving import (
    ServiceModel,
    ServingFrontDoor,
    TenantSpec,
    TrafficGenerator,
)

K = 10
DIM = 32
WINDOW_SECONDS = 1.0
#: The fault lands exactly on this window boundary...
FAULT_SECONDS = 8.0
END_SECONDS = 16.0
#: ...and every detector must fire within this many windows of it.
DETECT_WITHIN_WINDOWS = 3
#: Planning is deliberately expensive relative to the ~1ms dispatch so
#: a disabled plan cache moves the latency needle the p99 detector
#: watches (the collapse detector sees the counters regardless).
SERVICE = ServiceModel(base_seconds=1e-3, planning_seconds=5e-3)
#: Healthy IVF probe width: recall ~0.87 on this gaussian workload.
#: The fault drops it to nprobe=1 (recall ~0.14) — a collapse the
#: latency series cannot see because scanning one cell is *faster*.
HEALTHY_NPROBE = 24


def detectors():
    """The default serving detector set, with the recall-drift margin
    widened to 0.1: at ~64 audits/window the healthy windowed mean
    recall has sigma ~0.02, so 0.1 is a 5-sigma fence against noise
    while the injected ~0.7 collapse clears it in the first window."""
    return [
        P99InflationDetector(),
        QueueWaitGrowthDetector(),
        RecallDriftDetector(drop=0.1, min_audits=20),
        PlanCacheCollapseDetector(),
        CacheHitRatioDetector(),
    ]


def tenant_specs():
    prod = TenantSpec(
        "prod", qps=200.0, burst=40.0, max_inflight=8, max_queue=256,
        priority=1,
    )
    replay = TenantSpec(
        "replay", qps=100.0, burst=20.0, max_inflight=4, max_queue=64,
        priority=2, cache_capacity=64,
    )
    return [prod, replay]


def make_trace(start_seconds):
    """One window-aligned 8s slice of the two-tenant workload."""
    prod = TrafficGenerator(
        ["prod"], DIM, rate=80.0, seed=7, query_pool=256,
        fresh_fraction=1.0, k=K,
    ).generate(8.0, start_seconds=start_seconds)
    # A pool of 8 verbatim-replayed queries: fully cached after the
    # first second, so the fault cannot touch this tenant.
    replay = TrafficGenerator(
        ["replay"], DIM, rate=30.0, seed=13, query_pool=8,
        fresh_fraction=0.0, k=K,
    ).generate(8.0, start_seconds=start_seconds)
    return sorted(prod + replay, key=lambda r: r.arrival_seconds)


def build_frontdoor():
    rng = np.random.default_rng(0)
    db = VectorDatabase(
        dim=DIM,
        observability=Observability(audit_fraction=1.0, audit_seed=0),
    )
    db.insert_many(rng.standard_normal((4000, DIM)).astype(np.float32))
    db.create_index(
        "ivf", "ivf_flat", nlist=64, nprobe=HEALTHY_NPROBE, seed=0
    )
    fd = ServingFrontDoor(
        db, tenant_specs(), workers=2, coalesce_max=8,
        service_model=SERVICE, telemetry=True,
        window_seconds=WINDOW_SECONDS, detectors=detectors(),
    )
    return db, fd


def inject_fault(db):
    """The compound mid-run degradation the detectors must explain."""
    db.plan_cache = None  # every batch re-plans from scratch
    db.indexes["ivf"].nprobe = 1  # faster scans, collapsed recall


@pytest.fixture(scope="module")
def e24_scenario():
    db, fd = build_frontdoor()

    fd.run(make_trace(0.0))
    # Flush the final healthy window before the fault lands, so the
    # healthy/degraded split is exact at the window boundary.
    fd.monitor.tick(FAULT_SECONDS)
    healthy_anomalies = len(fd.monitor.anomalies)
    healthy_windows = fd.monitor.windows_seen

    inject_fault(db)
    fd.run(make_trace(FAULT_SECONDS))
    # Close the trailing window the last completion left open.
    fd.monitor.tick(END_SECONDS + WINDOW_SECONDS)

    return {
        "db": db,
        "fd": fd,
        "healthy_anomalies": healthy_anomalies,
        "healthy_windows": healthy_windows,
        "anomalies": list(fd.monitor.anomalies),
    }


def _by_detector(scenario):
    by = {}
    for anomaly in scenario["anomalies"]:
        by.setdefault(anomaly.detector, []).append(anomaly)
    return by


def test_e24_healthy_prefix_is_quiet(e24_scenario):
    """Zero false positives: 8 healthy windows, not one firing."""
    assert e24_scenario["healthy_anomalies"] == 0
    assert e24_scenario["healthy_windows"] >= 3  # past warmup, so the
    # quiet prefix is a real negative, not a not-armed-yet artifact.
    assert all(
        a.window_start >= FAULT_SECONDS for a in e24_scenario["anomalies"]
    )


def test_e24_detection_within_budget(e24_scenario):
    """Something fires within DETECT_WITHIN_WINDOWS of the fault."""
    anomalies = e24_scenario["anomalies"]
    assert anomalies, "the injected fault was never detected"
    first = min(a.window_end for a in anomalies)
    assert first <= FAULT_SECONDS + DETECT_WITHIN_WINDOWS * WINDOW_SECONDS


def test_e24_plan_cache_collapse_names_planning_and_prod(e24_scenario):
    """The disabled cache is seen despite emitting no probe counters,
    and journey attribution pins the planning phase on the tenant whose
    journeys actually contain planning time."""
    firings = _by_detector(e24_scenario).get("plan_cache_collapse")
    assert firings, "plan_cache_collapse never fired"
    first = min(firings, key=lambda a: a.window_end)
    assert first.window_end <= FAULT_SECONDS + DETECT_WITHIN_WINDOWS
    assert first.phase == "planning"
    assert first.tenant == "prod"
    assert first.value == 0.0  # zero probes while plans kept selecting


def test_e24_recall_drift_names_index_scan(e24_scenario):
    """The doctored nprobe is invisible to latency (scans got faster);
    only the audit series catches it — attributed to the index scan."""
    firings = _by_detector(e24_scenario).get("recall_drift")
    assert firings, "recall_drift never fired"
    first = min(firings, key=lambda a: a.window_end)
    assert first.window_end <= FAULT_SECONDS + DETECT_WITHIN_WINDOWS
    assert first.phase == "index_scan"
    assert first.value < first.baseline - 0.05


def test_e24_p99_inflation_names_the_affected_tenant(e24_scenario):
    """Re-planning every batch inflates prod's tail; replay rides its
    result cache and must not be blamed."""
    firings = _by_detector(e24_scenario).get("p99_inflation")
    assert firings, "p99_inflation never fired"
    tenants = {a.tenant for a in firings}
    assert "prod" in tenants
    assert "replay" not in tenants


def test_e24_exemplars_resolve_to_journeys(e24_scenario):
    """Every anomaly carries trace ids that resolve to full journeys of
    the blamed tenant — the report is one hop from the evidence."""
    fd = e24_scenario["fd"]
    for anomaly in e24_scenario["anomalies"]:
        assert anomaly.trace_ids, f"no exemplars on {anomaly!r}"
        journeys = [fd.journeys.get(t) for t in anomaly.trace_ids]
        assert all(j is not None for j in journeys)
        if anomaly.tenant is not None:
            assert any(j.tenant == anomaly.tenant for j in journeys)


def test_e24_span_links_well_formed(e24_scenario):
    """Coalescer fan-in: member roots and batch spans cross-link, and
    every link resolves both ways (validate_span_links is clean)."""
    tracer = e24_scenario["db"].observability.tracer
    assert validate_span_links(tracer.spans) == []
    batches = [s for s in tracer.spans if s.name == "serve_batch"]
    assert batches
    members = sum(len(s.links) for s in batches)
    assert members == sum(s.attributes["members"] for s in batches)


def test_e24_attribution_residual_is_zero(e24_scenario):
    """The explain-analyze invariant holds across the serving spans:
    each serve_request trace's stats partition exactly."""
    tracer = e24_scenario["db"].observability.tracer
    roots = [
        node
        for node in build_profile_tree(tracer.spans)
        if node.name == "serve_request"
    ]
    executed = [r for r in roots if r.stats_total is not None]
    assert executed, "no executed serve_request traces profiled"
    for root in executed:
        residual = QueryProfile(result=None, root=root).attribution_residual()
        assert all(v == 0 for v in residual.values()), (root, residual)


def test_e24_artifacts(e24_scenario):
    fd = e24_scenario["fd"]
    anomalies = e24_scenario["anomalies"]
    exemplars = []
    for anomaly in anomalies:
        for trace_id in anomaly.trace_ids:
            journey = fd.journeys.get(trace_id)
            if journey is not None and journey not in exemplars:
                exemplars.append(journey)
    data = {
        "health": fd.health().to_dict(),
        "windows": [w.to_dict() for w in fd.telemetry.last(8)],
        "journeys": [j.to_dict() for j in exemplars[:6]],
        "anomalies": fd.monitor.summary(),
    }
    (RESULTS_DIR / "e24_journey.json").write_text(json.dumps(data, indent=2))
    dashboard = render_report(data)
    detected = min(a.window_end for a in anomalies) - FAULT_SECONDS
    lines = [
        dashboard,
        "",
        f"fault injected at t={FAULT_SECONDS:g}s"
        f" (plan cache disabled + ivf nprobe {HEALTHY_NPROBE}->1);"
        f" first detection {detected:g}s later"
        f" (budget {DETECT_WITHIN_WINDOWS:g} windows)",
        f"healthy prefix: {e24_scenario['healthy_windows']} windows,"
        f" {e24_scenario['healthy_anomalies']} false positives",
    ]
    emit("e24_journey", "\n".join(lines))
    assert (RESULTS_DIR / "e24_journey.txt").exists()
    assert not math.isnan(detected)


def test_e24_telemetry_throughput(benchmark):
    """pytest-benchmark timing: wall cost of one fully-instrumented
    serving second (tracing + journeys + windowed scraping + detectors
    all on)."""
    rng = np.random.default_rng(1)
    db = VectorDatabase(
        dim=DIM, observability=Observability(audit_fraction=0.1, audit_seed=0)
    )
    db.insert_many(rng.standard_normal((2000, DIM)).astype(np.float32))
    db.create_index("ivf", "ivf_flat", nlist=32, nprobe=8, seed=0)
    trace = TrafficGenerator(
        ["prod"], DIM, rate=300.0, seed=5, k=K
    ).generate(1.0)

    def serve():
        fd = ServingFrontDoor(
            db, tenant_specs(), workers=2, coalesce_max=8,
            service_model=SERVICE, telemetry=True,
            window_seconds=WINDOW_SECONDS,
        )
        answered = len(fd.run(trace))
        fd.monitor.tick(2.0)
        db.observability.tracer.clear()
        return answered

    answered = benchmark(serve)
    assert answered == len(trace)
