"""Bench-session fixtures: one shared workload per size class."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.bench.datasets import gaussian_mixture, hybrid_workload
from repro.bench.metrics import exact_ground_truth
from repro.scores import EuclideanScore


@pytest.fixture(scope="session")
def workload():
    """The standard bench workload: 4000 x 32-d clustered vectors."""
    return gaussian_mixture(n=4000, dim=32, num_clusters=24, num_queries=30,
                            seed=11)


@pytest.fixture(scope="session")
def truth10(workload):
    return exact_ground_truth(workload.train, workload.queries, 10,
                              EuclideanScore())


@pytest.fixture(scope="session")
def hybrid_bench_dataset():
    return hybrid_workload(n=4000, dim=32, num_queries=20, num_categories=10,
                           seed=5)
