"""E6 (§2.2 graph-based): construction cost, recall/ef sweeps, hop counts.

Regenerates:

* NN-Descent builds an approximate KNNG with far fewer distance
  computations than the O(N^2) brute force, at >0.9 graph recall [36];
* recall@10 vs ef_search for every graph index (the Pareto-dominating
  family per §2.5 benchmarks);
* HNSW nodes-visited grows sublinearly (~log N) with collection size
  [58].
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.datasets import gaussian_mixture
from repro.bench.reporting import format_table
from repro.core.types import SearchStats
from repro.index import (
    FanngIndex,
    HnswIndex,
    NsgIndex,
    NswIndex,
    VamanaIndex,
    brute_force_knng,
    knng_recall,
    nn_descent,
)
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def e6_construction_table():
    rows = []
    score = EuclideanScore()
    for n in (1000, 3000):
        data = gaussian_mixture(n=n, dim=32, seed=2).train
        exact = brute_force_knng(data, 10, score)
        for init in ("random", "forest"):
            result = nn_descent(data, 10, score, max_iterations=8, init=init,
                                seed=0)
            rows.append(
                {
                    "N": n,
                    "init": init,
                    "dist_comps": result.distance_computations,
                    "vs_brute(N^2)": round(result.distance_computations / n**2, 3),
                    "graph_recall": round(
                        knng_recall(result.neighbor_ids, exact), 3
                    ),
                    "iters": result.iterations,
                }
            )
    emit("e6_construction", format_table(
        rows, "E6a: NN-Descent (KGraph/EFANNA) vs brute-force KNNG build"
    ))
    return rows


@pytest.fixture(scope="module")
def graph_indexes(workload):
    return {
        "nsw": NswIndex(connections=12, seed=0).build(workload.train),
        "hnsw": HnswIndex(m=12, ef_construction=80, seed=0).build(workload.train),
        "nsg": NsgIndex(max_degree=16, knng_k=12, seed=0).build(workload.train),
        "vamana": VamanaIndex(max_degree=24, beam_width=64, seed=0).build(
            workload.train
        ),
        "fanng": FanngIndex(num_trials=6000, init_knng_k=8, seed=0).build(
            workload.train
        ),
    }


@pytest.fixture(scope="module")
def e6_ef_table(graph_indexes, workload, truth10):
    rows = []
    for ef in (10, 32, 96):
        row = {"ef_search": ef}
        for name, index in graph_indexes.items():
            stats = SearchStats()
            recalls = [
                recall_of(index.search(q, 10, ef_search=ef, stats=stats),
                          truth10[i])
                for i, q in enumerate(workload.queries)
            ]
            row[name] = round(float(np.mean(recalls)), 3)
        rows.append(row)
    emit("e6_ef_sweep", format_table(
        rows, "E6b: graph-index recall@10 vs ef_search"
    ))
    return rows


@pytest.fixture(scope="module")
def e6_hops_table():
    rows = []
    for n in (500, 2000, 8000):
        ds = gaussian_mixture(n=n, dim=32, num_queries=15, seed=3)
        index = HnswIndex(m=12, ef_construction=64, seed=0).build(ds.train)
        stats = SearchStats()
        for q in ds.queries:
            index.search(q, 10, ef_search=32, stats=stats)
        rows.append(
            {
                "N": n,
                "layers": index.num_layers,
                "nodes_visited/query": round(
                    stats.nodes_visited / len(ds.queries), 1
                ),
                "visited/N": round(
                    stats.nodes_visited / len(ds.queries) / n, 4
                ),
            }
        )
    emit("e6_hops", format_table(
        rows, "E6c: HNSW traversal cost vs N (sublinear growth)"
    ))
    return rows


def test_e6_nndescent_beats_brute_force(e6_construction_table):
    for row in e6_construction_table:
        if row["N"] >= 3000:
            assert row["vs_brute(N^2)"] < 1.0
        assert row["graph_recall"] > 0.9


def test_e6_recall_rises_with_ef(e6_ef_table):
    for name in ("hnsw", "nsg", "vamana", "nsw"):
        series = [row[name] for row in e6_ef_table]
        assert all(b >= a - 0.02 for a, b in zip(series, series[1:])), name
        assert series[-1] >= 0.9, name


def test_e6_traversal_sublinear(e6_hops_table):
    fractions = [row["visited/N"] for row in e6_hops_table]
    assert fractions[-1] < fractions[0]  # visited share shrinks with N


def test_bench_e6_hnsw_search(benchmark, graph_indexes, workload,
                              e6_construction_table, e6_ef_table, e6_hops_table):
    index = graph_indexes["hnsw"]
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10, ef_search=32))


@pytest.mark.parametrize("name", ["nsw", "nsg", "vamana", "fanng"])
def test_bench_e6_graph_search(benchmark, graph_indexes, workload, name):
    index = graph_indexes[name]
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10, ef_search=32))
