"""E14 (§2.1, §2.6): multi-vector queries via aggregate scores.

Regenerates the tutorial's multi-vector observations:

* aggregate scores answer multi-vector queries correctly (recall vs a
  brute-force aggregate oracle), but cost scales with the number of
  query vectors;
* the index-accelerated decomposition (per-vector candidate union +
  exact aggregate re-rank) recovers most of the oracle's quality far
  cheaper — and is exactly the technique [79] describes;
* different aggregators rank differently (mean vs min vs weighted).
"""

import time

import numpy as np
import pytest

from _util import emit
from repro.bench.datasets import multi_vector_entities
from repro.bench.reporting import format_table
from repro.core.database import VectorDatabase
from repro.core.planner import QueryPlan


@pytest.fixture(scope="module")
def mv_db():
    entities, queries = multi_vector_entities(
        num_entities=1500, vectors_per_entity=1, dim=32, num_queries=15,
        query_vectors=3, seed=4,
    )
    vectors = np.vstack(entities)
    db = VectorDatabase(dim=32)
    db.insert_many(vectors)
    db.create_index("g", "hnsw", m=12, ef_construction=64, seed=0)
    return db, queries


@pytest.fixture(scope="module")
def e14_cost_table(mv_db):
    db, queries = mv_db
    rows = []
    for num_vectors in (1, 2, 3):
        start = time.perf_counter()
        dists = 0
        for group in queries:
            result = db.multi_vector_search(
                group[:num_vectors], k=10, plan=QueryPlan("brute_force")
            )
            dists += result.stats.distance_computations
        elapsed = (time.perf_counter() - start) / len(queries)
        rows.append(
            {
                "query_vectors": num_vectors,
                "bruteforce_ms": round(elapsed * 1e3, 2),
                "dists/query": round(dists / len(queries), 1),
            }
        )
    emit("e14_cost", format_table(
        rows, "E14a: multi-vector aggregate cost vs #query vectors"
    ))
    return rows


@pytest.fixture(scope="module")
def e14_accel_table(mv_db):
    db, queries = mv_db
    rows = []
    for plan, label in (
        (QueryPlan("brute_force"), "exact aggregate (oracle)"),
        (QueryPlan("index_scan", "g"), "index union + rerank [79]"),
    ):
        start = time.perf_counter()
        results = [
            db.multi_vector_search(group, k=10, plan=plan) for group in queries
        ]
        elapsed = (time.perf_counter() - start) / len(queries)
        candidates = float(np.mean([r.stats.candidates_examined for r in results]))
        rows.append(
            {
                "method": label,
                "vectors_aggregated": round(candidates, 1),
                "ms/query": round(elapsed * 1e3, 2),
                "_results": results,
            }
        )
    oracle = rows[0].pop("_results")
    accel = rows[1].pop("_results")
    overlaps = [
        len(set(a.ids) & set(b.ids)) / 10 for a, b in zip(oracle, accel)
    ]
    rows[0]["recall_vs_oracle"] = 1.0
    rows[1]["recall_vs_oracle"] = round(float(np.mean(overlaps)), 3)
    emit("e14_accel", format_table(
        rows,
        "E14b: exact vs index-accelerated multi-vector search"
        " (acceleration = far fewer vectors aggregated; wall-clock in this"
        " substrate favors the vectorized full scan at laptop scale)",
    ))
    return rows


@pytest.fixture(scope="module")
def e14_aggregator_table(mv_db):
    db, queries = mv_db
    base = {agg: [] for agg in ("mean", "min", "max")}
    for group in queries[:8]:
        for agg in base:
            result = db.multi_vector_search(
                group, k=10, aggregator=agg, plan=QueryPlan("brute_force")
            )
            base[agg].append(set(result.ids))
    rows = []
    for a in base:
        row = {"aggregator": a}
        for b in base:
            row[b] = round(
                float(np.mean([
                    len(x & y) / 10 for x, y in zip(base[a], base[b])
                ])), 2,
            )
        rows.append(row)
    emit("e14_aggregators", format_table(
        rows, "E14c: top-10 overlap between aggregators"
    ))
    return rows


@pytest.fixture(scope="module")
def e14_entity_table():
    """Entity-side multi-vector search (§2.6(6)): exact vs decomposed."""
    from repro.core.multivector import MultiVectorEntityCollection
    from repro.index import HnswIndex

    entities, queries = multi_vector_entities(
        num_entities=1000, vectors_per_entity=4, dim=32, num_queries=12,
        query_vectors=2, seed=9,
    )
    coll = MultiVectorEntityCollection(
        dim=32, index_factory=lambda: HnswIndex(m=12, ef_construction=64, seed=0)
    )
    coll.insert_many(entities)
    coll.build_index()
    rows = []
    exact_results = [coll.search_exact(group, k=10) for group in queries]
    accel_results = [coll.search(group, k=10) for group in queries]
    overlap = float(np.mean([
        len(set(a.ids) & set(b.ids)) / 10
        for a, b in zip(exact_results, accel_results)
    ]))
    rows.append({
        "method": "exact aggregate over all entities",
        "entities_aggregated": len(coll),
        "recall_vs_oracle": 1.0,
    })
    rows.append({
        "method": "facet-index union + entity rerank",
        "entities_aggregated": round(float(np.mean([
            r.stats.candidates_examined for r in accel_results
        ])), 1),
        "recall_vs_oracle": round(overlap, 3),
    })
    emit("e14_entities", format_table(
        rows, "E14d: entity-side multi-vector search (4 facets/entity)"
    ))
    return rows


def test_e14_entity_decomposition_works(e14_entity_table):
    accel = e14_entity_table[1]
    assert accel["recall_vs_oracle"] >= 0.85
    assert accel["entities_aggregated"] < e14_entity_table[0][
        "entities_aggregated"
    ] / 2


def test_e14_cost_scales_with_vectors(e14_cost_table):
    """The §2.6 complaint: aggregate scores 'require significant
    computations' — work grows linearly with the number of query
    vectors."""
    dists = [r["dists/query"] for r in e14_cost_table]
    assert dists[1] == pytest.approx(2 * dists[0], rel=0.01)
    assert dists[2] == pytest.approx(3 * dists[0], rel=0.01)


def test_e14_acceleration_works(e14_accel_table):
    oracle, accel = e14_accel_table
    assert accel["recall_vs_oracle"] >= 0.8
    # The decomposition's win: only a small candidate union is scored
    # with the (expensive) aggregate, instead of the whole collection.
    assert accel["vectors_aggregated"] < oracle["vectors_aggregated"] / 5


def test_e14_aggregators_differ(e14_aggregator_table):
    mean_row = next(r for r in e14_aggregator_table if r["aggregator"] == "mean")
    assert mean_row["max"] < 1.0 or mean_row["min"] < 1.0


def test_bench_e14_multivector_indexed(benchmark, mv_db, e14_cost_table,
                                       e14_accel_table, e14_aggregator_table,
                                       e14_entity_table):
    db, queries = mv_db
    plan = QueryPlan("index_scan", "g")
    benchmark(lambda: db.multi_vector_search(queries[0], k=10, plan=plan))


def test_bench_e14_multivector_bruteforce(benchmark, mv_db):
    db, queries = mv_db
    plan = QueryPlan("brute_force")
    benchmark(lambda: db.multi_vector_search(queries[0], k=10, plan=plan))
