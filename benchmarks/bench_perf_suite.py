#!/usr/bin/env python
"""Perf suite for the vectorized search kernels (PR: vectorized kernels).

Times the kernels this PR rewrote against their pre-PR implementations,
which are kept in-tree as references:

* graph beam search (10k / 50k vectors) — vectorized CSR + bitmap
  kernel vs :func:`repro.index._graph.beam_search_reference`;
* flat / IVF top-k selection — :func:`repro.index._kernels.topk_indices`
  (argpartition + partial sort) vs the full stable ``np.argsort`` the
  replaced call sites used;
* IVF-ADC posting scan end-to-end with each selection kernel;
* batched graph search (shared routes) vs a per-query search loop;
* observability overhead — the disabled (no-op singleton) query path vs
  raw operator dispatch (no span plumbing at all) and vs fully-enabled
  tracing+metrics; the disabled path must be within noise of raw.

Writes a machine-readable ``BENCH_PERF.json`` at the repo root.  Every
timed pair is also checked for result identity — a mismatch exits
non-zero, so CI's quick mode doubles as a smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.core.batched import batched_graph_search
from repro.index._graph import beam_search, beam_search_reference
from repro.index._kernels import CSRAdjacency, topk_indices
from repro.index.graph_base import GraphIndex
from repro.quantization.ivfadc import IvfAdc
from repro.scores import EuclideanScore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def best_of(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds) — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def clustered_vectors(n: int, dim: int, rng, clusters: int = 32) -> np.ndarray:
    centers = rng.standard_normal((clusters, dim)) * 4.0
    assign = rng.integers(0, clusters, size=n)
    return (centers[assign] + rng.standard_normal((n, dim))).astype(np.float32)


def random_regular_adjacency(n: int, degree: int, rng) -> list[np.ndarray]:
    """Random out-degree-``degree`` digraph in the builders' list form.

    Models the traversal shape of a high-degree pruned graph (HNSW
    layer 0 at M=48 has degree 96; DiskANN ships R up to ~100):
    diverse neighborhoods, high fresh-neighbor ratio per expansion.
    Kernel cost depends only on this shape, not on recall, so the bench
    skips the O(n log n) proximity-graph build.
    """
    targets = rng.integers(0, n, size=(n, degree))
    return [row.astype(np.int64) for row in targets]


def approx_knn_adjacency(
    vectors: np.ndarray, degree: int, rng
) -> list[np.ndarray]:
    """Cheap locality-preserving graph: cluster, exact KNN inside cells.

    Building a real NSW/Vamana at bench sizes would time the *builder*;
    this gives beam search a realistic proximity graph (long descents,
    locality for shared routes) in a few vectorized passes.  One random
    long-range edge per node keeps the graph connected across cells.
    """
    n = vectors.shape[0]
    cells = max(8, n // 400)
    centers = vectors[rng.choice(n, size=cells, replace=False)]
    center_sq = np.einsum("ij,ij->i", centers, centers)
    assign = np.empty(n, dtype=np.int64)
    for start in range(0, n, 4096):
        block = vectors[start : start + 4096]
        d = center_sq[None, :] - 2.0 * (block @ centers.T)
        assign[start : start + 4096] = d.argmin(axis=1)

    adjacency: list[np.ndarray | None] = [None] * n
    long_range = rng.integers(0, n, size=n)
    for cell in range(cells):
        members = np.flatnonzero(assign == cell)
        if members.size == 0:
            continue
        sub = vectors[members].astype(np.float64)
        sq = np.einsum("ij,ij->i", sub, sub)
        d = sq[:, None] + sq[None, :] - 2.0 * (sub @ sub.T)
        kk = min(degree, members.size - 1)
        order = np.argsort(d, axis=1)[:, 1 : kk + 1]  # column 0 is self
        for row, member in enumerate(members):
            adjacency[member] = np.append(
                members[order[row]], long_range[member]
            ).astype(np.int64)
    return adjacency


class PresetGraphIndex(GraphIndex):
    """GraphIndex with a preset adjacency, for kernel-level timing.

    Building a real proximity graph at bench sizes dominates runtime and
    measures the *builder*, not the search kernels; the traversal cost
    only depends on the adjacency shape, which we control directly.
    """

    name = "bench_preset_graph"

    def __init__(self, adjacency: list[np.ndarray], **kwargs):
        super().__init__(**kwargs)
        self._preset = adjacency

    def _build_graph(self) -> list[np.ndarray]:
        return self._preset


def check_identical(got, want, label: str) -> None:
    ok = [p for _, p in got] == [p for _, p in want] and np.allclose(
        [d for d, _ in got], [d for d, _ in want], atol=1e-5
    )
    if not ok:
        print(f"IDENTITY FAIL: {label}", file=sys.stderr)
        sys.exit(1)


def bench_beam_search(n: int, queries: int, rng) -> dict:
    dim, degree, ef = 64, 96, 128
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    adjacency = random_regular_adjacency(n, degree, rng)
    csr = CSRAdjacency.from_lists(adjacency)
    score = EuclideanScore()
    qs = rng.standard_normal((queries, dim)).astype(np.float32)
    entries = [0]

    check_identical(
        beam_search(qs[0], vectors, csr, entries, ef, score),
        beam_search_reference(qs[0], vectors, adjacency, entries, ef, score),
        f"beam_search n={n}",
    )

    def run_reference():
        for q in qs:
            beam_search_reference(q, vectors, adjacency, entries, ef, score)

    def run_vectorized():
        for q in qs:
            beam_search(q, vectors, csr, entries, ef, score)

    ref = best_of(run_reference, 3)
    vec = best_of(run_vectorized, 3)
    return {
        "name": "beam_search",
        "n": n,
        "queries": queries,
        "degree": degree,
        "ef": ef,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_selection_topk(name: str, n: int, k: int, repeats: int, rng) -> dict:
    """argpartition kernel vs the full stable argsort it replaced."""
    dists = rng.random(n)

    got = topk_indices(dists, k)
    want = np.argsort(dists, kind="stable")[:k]
    if not np.array_equal(got, want):
        print(f"IDENTITY FAIL: {name}", file=sys.stderr)
        sys.exit(1)

    ref = best_of(lambda: np.argsort(dists, kind="stable")[:k], repeats)
    vec = best_of(lambda: topk_indices(dists, k), repeats)
    return {
        "name": name,
        "n": n,
        "k": k,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_ivfadc_scan(n: int, rng) -> dict:
    """End-to-end ADC scan with each selection kernel on its tail."""
    dim, k, nprobe = 32, 10, 8
    nlist = min(64, n // 8)
    data = clustered_vectors(n, dim, rng).astype(np.float64)
    core = IvfAdc(nlist=nlist, m=8, seed=0).train(data)
    core.add(np.arange(n), data)
    query = data[0]

    def scan(select):
        ids, dists, _ = core.search(query, n, nprobe=nprobe)  # full scan order
        return ids[select(dists, k)]

    # Reference tail: full stable argsort over the concatenated postings.
    ref_sel = lambda d, kk: np.argsort(d, kind="stable")[:kk]  # noqa: E731
    vec_sel = lambda d, kk: topk_indices(d, kk)  # noqa: E731
    if not np.array_equal(scan(ref_sel), scan(vec_sel)):
        print("IDENTITY FAIL: ivfadc_scan", file=sys.stderr)
        sys.exit(1)

    ref = best_of(lambda: scan(ref_sel), 3)
    vec = best_of(lambda: core.search(query, k, nprobe=nprobe), 3)
    return {
        "name": "ivfadc_scan",
        "n": n,
        "k": k,
        "nprobe": nprobe,
        "nlist": nlist,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_batched_graph_search(n: int, batch: int, group_size: int, rng) -> dict:
    """Shared-route batched search vs a per-query loop (same kernel).

    The batch is drawn as tight clusters of near-duplicate queries —
    the §2.3 scenario batched search targets — so routes genuinely
    overlap and the shared descent is exercised.
    """
    dim, degree, k, bases = 32, 16, 10, 8
    vectors = clustered_vectors(n, dim, rng)
    adjacency = approx_knn_adjacency(vectors, degree, rng)
    index = PresetGraphIndex(adjacency, ef_search=32).build(vectors)
    base = vectors[rng.integers(0, n, size=bases)]
    queries = base[rng.integers(0, bases, size=batch)] + 0.02 * rng.standard_normal(
        (batch, dim)
    ).astype(np.float32)

    def per_query():
        return [index.search(q, k) for q in queries]

    def batched():
        return batched_graph_search(index, queries, k, group_size=group_size)

    ref = best_of(per_query, 3)
    vec = best_of(batched, 3)
    return {
        "name": "batched_graph_search",
        "n": n,
        "batch": batch,
        "group_size": group_size,
        "k": k,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_observability_overhead(n: int, queries: int, rng) -> dict:
    """Disabled-observability execute() vs raw dispatch vs enabled tracing.

    ``raw`` calls ``QueryExecutor._dispatch`` directly — the executor
    body with no span or metric plumbing at all; ``disabled`` is the
    full ``execute()`` path against the DISABLED no-op singletons;
    ``enabled`` runs with a live tracer + metrics registry (cleared
    between reps so span accumulation doesn't skew timing).
    """
    from repro import Field, Observability, VectorDatabase
    from repro.core.query import SearchQuery
    from repro.core.types import SearchStats

    dim, k = 32, 10
    db = VectorDatabase(dim=dim)
    db.insert_many(
        clustered_vectors(n, dim, rng),
        [{"category": i % 8} for i in range(n)],
    )
    db.create_index("g", "hnsw", m=8)
    qs = rng.standard_normal((queries, dim)).astype(np.float32)
    predicate = Field("category") == 3
    probe = SearchQuery(qs[0], k, predicate=predicate, params={})
    plan = db.plan(probe)[0]
    executor = db._executor

    def raw():
        for q in qs:
            query = SearchQuery(q, k, predicate=predicate, params={})
            executor._dispatch(
                query, plan, SearchStats(plan_name=plan.describe())
            )

    def full_path_with_plan():
        for q in qs:
            executor.execute(
                SearchQuery(q, k, predicate=predicate, params={}), plan
            )

    raw_s = best_of(raw, 5)
    disabled_s = best_of(full_path_with_plan, 5)
    obs = Observability()

    def enabled_run():
        obs.tracer.clear()
        full_path_with_plan()

    db.set_observability(obs)
    enabled_s = best_of(enabled_run, 5)
    db.set_observability(None)
    return {
        "name": "observability_overhead",
        "n": n,
        "queries": queries,
        "strategy": plan.strategy,
        "raw_dispatch_s": raw_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead_pct": 100.0 * (disabled_s / raw_s - 1.0),
        "enabled_overhead_pct": 100.0 * (enabled_s / raw_s - 1.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_PERF.json",
        help="output path for the machine-readable results",
    )
    args = parser.parse_args(argv)
    rng = np.random.default_rng(0)

    if args.quick:
        beam_sizes = [(5_000, 3)]
        flat_n, ivf_n, sel_repeats = 100_000, 32_000, 5
        adc_n, batch_n, batch_q, batch_gs = 4_000, 5_000, 32, 8
    else:
        beam_sizes = [(10_000, 8), (50_000, 8)]
        flat_n, ivf_n, sel_repeats = 500_000, 64_000, 10
        adc_n, batch_n, batch_q, batch_gs = 20_000, 20_000, 128, 16

    entries = []
    for n, queries in beam_sizes:
        entry = bench_beam_search(n, queries, rng)
        entries.append(entry)
        print(f"beam_search          n={n:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
              f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    for name, n in (("flat_topk", flat_n), ("ivf_topk", ivf_n)):
        entry = bench_selection_topk(name, n, 10, sel_repeats, rng)
        entries.append(entry)
        print(f"{name:<20} n={n:>7,}  ref {entry['reference_s']*1e6:8.1f} us  "
              f"vec {entry['vectorized_s']*1e6:8.1f} us  {entry['speedup']:5.1f}x")
    entry = bench_ivfadc_scan(adc_n, rng)
    entries.append(entry)
    print(f"ivfadc_scan          n={entry['n']:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
          f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    entry = bench_batched_graph_search(batch_n, batch_q, batch_gs, rng)
    entries.append(entry)
    print(f"batched_graph_search n={entry['n']:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
          f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    obs_n, obs_q = (3_000, 100) if args.quick else (10_000, 200)
    entry = bench_observability_overhead(obs_n, obs_q, rng)
    entries.append(entry)
    print(f"observability        n={entry['n']:>7,}  raw {entry['raw_dispatch_s']*1e3:8.1f} ms  "
          f"off {entry['disabled_s']*1e3:8.1f} ms ({entry['disabled_overhead_pct']:+5.1f}%)  "
          f"on {entry['enabled_s']*1e3:8.1f} ms ({entry['enabled_overhead_pct']:+5.1f}%)")

    payload = {
        "schema": 1,
        "suite": "vectorized-kernels",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "entries": entries,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {args.out}]")

    # Acceptance targets (full mode): >=3x beam @ 50k, >=2x flat/IVF top-k.
    failures = []
    for e in entries:
        if e["name"] == "beam_search" and e["n"] >= 50_000 and e["speedup"] < 3:
            failures.append(f"{e['name']}@{e['n']}: {e['speedup']:.1f}x < 3x")
        if e["name"] in ("flat_topk", "ivf_topk") and e["speedup"] < 2:
            failures.append(f"{e['name']}: {e['speedup']:.1f}x < 2x")
    if failures and not args.quick:
        print("TARGETS MISSED: " + "; ".join(failures), file=sys.stderr)
        return 1
    # The no-op observability path must cost nothing measurable; checked
    # in quick mode too (CI smoke).  The 15% gate is generous to absorb
    # scheduler noise — the real overhead is a handful of no-op calls.
    for e in entries:
        if (e["name"] == "observability_overhead"
                and e["disabled_overhead_pct"] > 15.0):
            print(
                f"NO-OP OVERHEAD TOO HIGH: disabled path"
                f" {e['disabled_overhead_pct']:.1f}% over raw dispatch (>15%)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
