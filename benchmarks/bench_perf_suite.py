#!/usr/bin/env python
"""Perf suite for the vectorized search kernels (PR: vectorized kernels).

Times the kernels this PR rewrote against their pre-PR implementations,
which are kept in-tree as references:

* graph beam search (10k / 50k vectors) — vectorized CSR + bitmap
  kernel vs :func:`repro.index._graph.beam_search_reference`;
* flat / IVF top-k selection — :func:`repro.index._kernels.topk_indices`
  (argpartition + partial sort) vs the full stable ``np.argsort`` the
  replaced call sites used;
* IVF-ADC scan — the register-blocked FastScan layout (quantized LUT
  stack + exact rerank) vs :meth:`IvfAdc.search_reference`, the
  per-cell float-table scan, with a recall-floor fidelity gate;
* batched graph search — the merged-frontier group kernel vs a
  per-query search loop, recall-gated against exact ground truth;
* plan-cache dispatch — ``VectorDatabase.plan`` with a warm prepared-
  query cache vs the cache-disabled full planning pass;
* serving coalescing — the front door's coalesced dispatch (one plan +
  one batched kernel call for 64 concurrent same-shape queries) vs the
  per-request ``db.search`` loop, recall-gated like batched search;
* observability overhead — the disabled (no-op singleton) query path vs
  raw operator dispatch (no span plumbing at all) and vs fully-enabled
  tracing+metrics; the disabled path must be within noise of raw;
* recall probes — fully deterministic recall@10 of a fixed-seed HNSW
  and a fixed-seed IVF (low nprobe) build against exact ground truth,
  so quality regressions gate CI alongside latency regressions.

Writes a machine-readable ``BENCH_PERF.json`` at the repo root.  Every
timed pair is also checked for result identity — a mismatch exits
non-zero, so CI's quick mode doubles as a smoke test.

Regression gate (``--check``): compares the current run against the
committed ``BENCH_PERF.json`` baseline, matching entries by
``(name, n)`` and comparing only scale-free quantities so the gate
works across machines of different absolute speed:

* speedup ratios must stay >= ``0.5 x`` baseline (a true kernel
  regression halves the ratio on any machine; scheduler noise does not);
* recall must stay within ``0.05`` of baseline (the probes are seeded
  and deterministic, so this is pure safety margin);
* the disabled-observability overhead must stay under
  ``max(15%, baseline + 15%)``.

Each real run (not ``--replay``) is appended to ``BENCH_TRAJECTORY.json``
— a compact per-run history of every scale-free number, so performance
drift is visible across commits, not just vs. one baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py [--quick] [--out PATH]
        [--check] [--baseline PATH] [--replay PATH] [--trajectory PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

import numpy as np

from repro.bench.metrics import exact_ground_truth, mean_recall, recall_at_k
from repro.core.batched import batched_graph_search
from repro.index._graph import beam_search, beam_search_reference
from repro.index._kernels import CSRAdjacency, topk_indices
from repro.index.graph_base import GraphIndex
from repro.index.hnsw import HnswIndex
from repro.index.ivf import IvfFlatIndex
from repro.quantization.ivfadc import IvfAdc
from repro.scores import EuclideanScore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def best_of(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds) — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def clustered_vectors(n: int, dim: int, rng, clusters: int = 32) -> np.ndarray:
    centers = rng.standard_normal((clusters, dim)) * 4.0
    assign = rng.integers(0, clusters, size=n)
    return (centers[assign] + rng.standard_normal((n, dim))).astype(np.float32)


def random_regular_adjacency(n: int, degree: int, rng) -> list[np.ndarray]:
    """Random out-degree-``degree`` digraph in the builders' list form.

    Models the traversal shape of a high-degree pruned graph (HNSW
    layer 0 at M=48 has degree 96; DiskANN ships R up to ~100):
    diverse neighborhoods, high fresh-neighbor ratio per expansion.
    Kernel cost depends only on this shape, not on recall, so the bench
    skips the O(n log n) proximity-graph build.
    """
    targets = rng.integers(0, n, size=(n, degree))
    return [row.astype(np.int64) for row in targets]


def approx_knn_adjacency(
    vectors: np.ndarray, degree: int, rng
) -> list[np.ndarray]:
    """Cheap locality-preserving graph: cluster, exact KNN inside cells.

    Building a real NSW/Vamana at bench sizes would time the *builder*;
    this gives beam search a realistic proximity graph (long descents,
    locality for shared routes) in a few vectorized passes.  One random
    long-range edge per node keeps the graph connected across cells.
    """
    n = vectors.shape[0]
    cells = max(8, n // 400)
    centers = vectors[rng.choice(n, size=cells, replace=False)]
    center_sq = np.einsum("ij,ij->i", centers, centers)
    assign = np.empty(n, dtype=np.int64)
    for start in range(0, n, 4096):
        block = vectors[start : start + 4096]
        d = center_sq[None, :] - 2.0 * (block @ centers.T)
        assign[start : start + 4096] = d.argmin(axis=1)

    adjacency: list[np.ndarray | None] = [None] * n
    long_range = rng.integers(0, n, size=n)
    for cell in range(cells):
        members = np.flatnonzero(assign == cell)
        if members.size == 0:
            continue
        sub = vectors[members].astype(np.float64)
        sq = np.einsum("ij,ij->i", sub, sub)
        d = sq[:, None] + sq[None, :] - 2.0 * (sub @ sub.T)
        kk = min(degree, members.size - 1)
        order = np.argsort(d, axis=1)[:, 1 : kk + 1]  # column 0 is self
        for row, member in enumerate(members):
            adjacency[member] = np.append(
                members[order[row]], long_range[member]
            ).astype(np.int64)
    return adjacency


class PresetGraphIndex(GraphIndex):
    """GraphIndex with a preset adjacency, for kernel-level timing.

    Building a real proximity graph at bench sizes dominates runtime and
    measures the *builder*, not the search kernels; the traversal cost
    only depends on the adjacency shape, which we control directly.
    """

    name = "bench_preset_graph"

    def __init__(self, adjacency: list[np.ndarray], **kwargs):
        super().__init__(**kwargs)
        self._preset = adjacency

    def _build_graph(self) -> list[np.ndarray]:
        return self._preset


def check_identical(got, want, label: str) -> None:
    ok = [p for _, p in got] == [p for _, p in want] and np.allclose(
        [d for d, _ in got], [d for d, _ in want], atol=1e-5
    )
    if not ok:
        print(f"IDENTITY FAIL: {label}", file=sys.stderr)
        sys.exit(1)


def bench_beam_search(n: int, queries: int, rng) -> dict:
    dim, degree, ef = 64, 96, 128
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    adjacency = random_regular_adjacency(n, degree, rng)
    csr = CSRAdjacency.from_lists(adjacency)
    score = EuclideanScore()
    qs = rng.standard_normal((queries, dim)).astype(np.float32)
    entries = [0]

    check_identical(
        beam_search(qs[0], vectors, csr, entries, ef, score),
        beam_search_reference(qs[0], vectors, adjacency, entries, ef, score),
        f"beam_search n={n}",
    )

    def run_reference():
        for q in qs:
            beam_search_reference(q, vectors, adjacency, entries, ef, score)

    def run_vectorized():
        for q in qs:
            beam_search(q, vectors, csr, entries, ef, score)

    ref = best_of(run_reference, 3)
    vec = best_of(run_vectorized, 3)
    return {
        "name": "beam_search",
        "n": n,
        "queries": queries,
        "degree": degree,
        "ef": ef,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_selection_topk(name: str, n: int, k: int, repeats: int, rng) -> dict:
    """argpartition kernel vs the full stable argsort it replaced."""
    dists = rng.random(n)

    got = topk_indices(dists, k)
    want = np.argsort(dists, kind="stable")[:k]
    if not np.array_equal(got, want):
        print(f"IDENTITY FAIL: {name}", file=sys.stderr)
        sys.exit(1)

    ref = best_of(lambda: np.argsort(dists, kind="stable")[:k], repeats)
    vec = best_of(lambda: topk_indices(dists, k), repeats)
    return {
        "name": name,
        "n": n,
        "k": k,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_ivfadc_scan(n: int, rng) -> dict:
    """Blocked FastScan ADC vs the per-cell float-table reference scan.

    One trained quantizer (m=16 4-bit subspaces, so codes are the
    classic FastScan nibble layout) serves both sides: the reference is
    :meth:`IvfAdc.search_reference` — one float ADC table build and one
    row-gather per probed cell — and the vectorized side is the
    register-blocked one-pass scan (quantized LUT stack + exact-rerank
    tail).  Fidelity is a recall comparison against exact ground truth,
    not id identity: duplicate PQ codes tie, and the quantized LUT may
    break ties differently than the float tables.
    """
    dim, k, nprobe, nq = 32, 10, 16, 8
    nlist = min(64, n // 8)
    data = clustered_vectors(n, dim, rng).astype(np.float64)
    core = IvfAdc(nlist=nlist, m=16, ks=16, seed=0, layout="blocked").train(data)
    core.add(np.arange(n), data)
    base = data[rng.integers(0, n, size=nq)]
    queries = base + 0.05 * rng.standard_normal((nq, dim))

    truth = exact_ground_truth(
        data.astype(np.float32), queries.astype(np.float32), k, EuclideanScore()
    )
    ref_recall = np.mean([
        recall_at_k(core.search_reference(q, k, nprobe=nprobe)[0].tolist(),
                    truth[i])
        for i, q in enumerate(queries)
    ])
    vec_recall = np.mean([
        recall_at_k(core.search(q, k, nprobe=nprobe)[0].tolist(), truth[i])
        for i, q in enumerate(queries)
    ])
    if vec_recall < ref_recall - 0.05:
        print(
            f"FIDELITY FAIL: ivfadc_scan blocked recall {vec_recall:.4f} <"
            f" reference {ref_recall:.4f} - 0.05",
            file=sys.stderr,
        )
        sys.exit(1)

    def reference():
        for q in queries:
            core.search_reference(q, k, nprobe=nprobe)

    def blocked():
        for q in queries:
            core.search(q, k, nprobe=nprobe)

    ref = best_of(reference, 3)
    vec = best_of(blocked, 3)
    return {
        "name": "ivfadc_scan",
        "n": n,
        "k": k,
        "nprobe": nprobe,
        "nlist": nlist,
        "m": core.pq.m,
        "ks": core.pq.ks,
        "queries": nq,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
        "recall": float(vec_recall),
        "reference_recall": float(ref_recall),
    }


def bench_batched_graph_search(n: int, batch: int, group_size: int, rng) -> dict:
    """Merged-frontier batched search vs a per-query search loop.

    The batch is drawn as tight clusters of near-duplicate queries —
    the §2.3 scenario batched search targets — so routes genuinely
    overlap and each group expands one shared frontier.  The merged
    traversal is not bitwise-identical to per-query beams (its bound is
    the loosest member's), so fidelity is gated as recall against exact
    ground truth: the batched side must not trail the per-query loop by
    more than 0.05.
    """
    dim, degree, k, bases = 32, 16, 10, 8
    vectors = clustered_vectors(n, dim, rng)
    adjacency = approx_knn_adjacency(vectors, degree, rng)
    index = PresetGraphIndex(adjacency, ef_search=32).build(vectors)
    base = vectors[rng.integers(0, n, size=bases)]
    queries = base[rng.integers(0, bases, size=batch)] + 0.02 * rng.standard_normal(
        (batch, dim)
    ).astype(np.float32)

    def per_query():
        return [index.search(q, k) for q in queries]

    def batched():
        return batched_graph_search(index, queries, k, group_size=group_size)

    truth = exact_ground_truth(vectors, queries, k, index.score)
    ref_recall = mean_recall(per_query(), truth)
    vec_recall = mean_recall(batched(), truth)
    if vec_recall < ref_recall - 0.05:
        print(
            f"FIDELITY FAIL: batched_graph_search recall {vec_recall:.4f} <"
            f" per-query loop {ref_recall:.4f} - 0.05",
            file=sys.stderr,
        )
        sys.exit(1)

    ref = best_of(per_query, 3)
    vec = best_of(batched, 3)
    return {
        "name": "batched_graph_search",
        "n": n,
        "batch": batch,
        "group_size": group_size,
        "k": k,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
        "recall": float(vec_recall),
        "reference_recall": float(ref_recall),
    }


def bench_observability_overhead(n: int, queries: int, rng) -> dict:
    """Disabled-observability execute() vs raw dispatch vs enabled tracing.

    ``raw`` calls ``QueryExecutor._dispatch`` directly — the executor
    body with no span or metric plumbing at all; ``disabled`` is the
    full ``execute()`` path against the DISABLED no-op singletons;
    ``enabled`` runs with a live tracer + metrics registry (cleared
    between reps so span accumulation doesn't skew timing).
    """
    from repro import Field, Observability, VectorDatabase
    from repro.core.query import SearchQuery
    from repro.core.types import SearchStats

    dim, k = 32, 10
    db = VectorDatabase(dim=dim)
    db.insert_many(
        clustered_vectors(n, dim, rng),
        [{"category": i % 8} for i in range(n)],
    )
    db.create_index("g", "hnsw", m=8)
    qs = rng.standard_normal((queries, dim)).astype(np.float32)
    predicate = Field("category") == 3
    probe = SearchQuery(qs[0], k, predicate=predicate, params={})
    plan = db.plan(probe)[0]
    executor = db._executor

    def raw():
        for q in qs:
            query = SearchQuery(q, k, predicate=predicate, params={})
            executor._dispatch(
                query, plan, SearchStats(plan_name=plan.describe())
            )

    def full_path_with_plan():
        for q in qs:
            executor.execute(
                SearchQuery(q, k, predicate=predicate, params={}), plan
            )

    raw_s = best_of(raw, 5)
    disabled_s = best_of(full_path_with_plan, 5)
    obs = Observability()

    def enabled_run():
        obs.tracer.clear()
        full_path_with_plan()

    db.set_observability(obs)
    enabled_s = best_of(enabled_run, 5)
    db.set_observability(None)
    return {
        "name": "observability_overhead",
        "n": n,
        "queries": queries,
        "strategy": plan.strategy,
        "raw_dispatch_s": raw_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead_pct": 100.0 * (disabled_s / raw_s - 1.0),
        "enabled_overhead_pct": 100.0 * (enabled_s / raw_s - 1.0),
    }


def bench_plan_cache(n: int, queries: int, rng) -> dict:
    """Prepared-query plan cache: cold planner vs warm cache replay.

    Times ``VectorDatabase.plan`` alone for one repeated hybrid query
    shape.  The reference side runs with the cache disabled, so every
    call pays the full planning pass (candidate enumeration,
    selectivity estimation, cost ranking); the cached side replays the
    prepared plan after one warming miss.  Both databases hold the same
    data and indexes, and the replayed choice is checked to be the
    plan the cold planner picks.
    """
    from repro import Field, VectorDatabase
    from repro.core.query import SearchQuery

    dim, k = 32, 10
    data = clustered_vectors(n, dim, rng)
    attrs = [{"category": i % 8} for i in range(n)]
    dbs = {}
    for mode in (False, True):
        db = VectorDatabase(dim=dim, plan_cache=mode)
        db.insert_many(data, attrs)
        db.create_index("g", "hnsw", m=8)
        dbs[mode] = db
    predicate = Field("category") == 3
    q = rng.standard_normal(dim).astype(np.float32)

    def make_query():
        return SearchQuery(q, k, predicate=predicate, params={})

    cold, _ = dbs[False].plan(make_query())
    dbs[True].plan(make_query())  # warming miss
    warm, _ = dbs[True].plan(make_query())
    if warm.describe() != cold.describe():
        print(
            f"IDENTITY FAIL: plan_cache replayed {warm.describe()!r},"
            f" cold planner chose {cold.describe()!r}",
            file=sys.stderr,
        )
        sys.exit(1)

    def planning(db):
        def run():
            for _ in range(queries):
                db.plan(make_query())
        return run

    ref = best_of(planning(dbs[False]), 5)
    vec = best_of(planning(dbs[True]), 5)
    return {
        "name": "plan_cache_dispatch",
        "n": n,
        "queries": queries,
        "strategy": warm.strategy,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
    }


def bench_recall_probe(
    name: str, n: int, seed: int, make_index_fn
) -> dict:
    """Deterministic recall@10 of a seeded index vs exact ground truth.

    Everything is seeded — data, queries, and the index build — so the
    number is reproducible bit-for-bit on any machine: a change means a
    code change, not noise.  Queries are perturbed database points
    (clustered workload), which keeps recall meaningfully below 1.0 for
    the IVF probe so regressions are visible in both directions.
    """
    dim, k, nq = 32, 10, 50
    rng = np.random.default_rng(seed)
    vectors = clustered_vectors(n, dim, rng)
    base = vectors[rng.integers(0, n, size=nq)]
    queries = (base + 0.05 * rng.standard_normal((nq, dim))).astype(np.float32)
    score = EuclideanScore()
    truth = exact_ground_truth(vectors, queries, k, score)
    index = make_index_fn(score).build(vectors)
    results = [index.search(q, k) for q in queries]
    return {
        "name": name,
        "n": n,
        "k": k,
        "seed": seed,
        "recall": float(mean_recall(results, truth)),
    }


# ---------------------------------------------------------------------------
# Regression gate: compare scale-free quantities against a committed baseline.

#: (metric key, kind) per comparable quantity.  Only scale-free numbers
#: are gated — absolute times differ across machines, ratios don't.
_GATE_SPEEDUP_FLOOR = 0.5       # current speedup >= 0.5 x baseline speedup
_GATE_RECALL_SLACK = 0.05       # current recall >= baseline - 0.05
_GATE_OVERHEAD_SLACK = 15.0     # overhead <= max(15%, baseline + 15%)


def bench_serving_coalesce(n: int, batch: int, rng) -> dict:
    """Front-door coalescing: one batched dispatch vs per-request serving.

    ``batch`` concurrent single-vector queries of the same shape (same
    tenant, k, no predicate) are exactly what the serving tier's
    coalescer merges.  The reference side is what a front door without
    coalescing would do — ``batch`` independent ``db.search`` calls,
    each paying planning + executor dispatch; the coalesced side is one
    ``execute_coalesced`` call that plans once and runs the whole group
    through the merged-frontier batched kernel.  Queries are drawn as
    near-duplicates around a few bases so frontiers genuinely overlap
    (the serving hot-query scenario).  Fidelity gate: coalesced recall
    must not trail the per-request loop by more than 0.05.
    """
    from repro.core.database import VectorDatabase
    from repro.serving.coalescer import execute_coalesced
    from repro.serving.request import ServingRequest

    dim, k, bases = 32, 10, 8
    db = VectorDatabase(dim=dim)
    vectors = clustered_vectors(n, dim, rng)
    db.insert_many(vectors)
    db.create_index("g", "hnsw", m=8)
    base = vectors[rng.integers(0, n, size=bases)]
    queries = base[rng.integers(0, bases, size=batch)] + 0.02 * rng.standard_normal(
        (batch, dim)
    ).astype(np.float32)
    requests = [ServingRequest("bench", q, k=k) for q in queries]

    def per_request():
        return [db.search(vector=q, k=k).hits for q in queries]

    def coalesced():
        return execute_coalesced(db, requests)[0]

    strategy = execute_coalesced(db, requests)[3]
    truth = exact_ground_truth(vectors, queries, k, db.score)
    ref_recall = mean_recall(per_request(), truth)
    vec_recall = mean_recall(coalesced(), truth)
    if vec_recall < ref_recall - 0.05:
        print(
            f"FIDELITY FAIL: serving_coalesce recall {vec_recall:.4f} <"
            f" per-request loop {ref_recall:.4f} - 0.05",
            file=sys.stderr,
        )
        sys.exit(1)

    ref = best_of(per_request, 5)
    vec = best_of(coalesced, 5)
    return {
        "name": "serving_coalesce",
        "n": n,
        "batch": batch,
        "k": k,
        "strategy": strategy,
        "reference_s": ref,
        "vectorized_s": vec,
        "speedup": ref / vec,
        "recall": float(vec_recall),
        "reference_recall": float(ref_recall),
    }


def compare_to_baseline(entries: list[dict], baseline: dict) -> tuple[list[str], int]:
    """Noise-tolerant comparison; returns (failures, entries compared)."""
    by_key = {(e["name"], e["n"]): e for e in baseline.get("entries", [])}
    failures: list[str] = []
    compared = 0
    for entry in entries:
        key = (entry["name"], entry["n"])
        base = by_key.get(key)
        if base is None:
            print(f"  [check] {key[0]}@{key[1]:,}: no baseline entry, skipped")
            continue
        label = f"{key[0]}@{key[1]:,}"
        if "speedup" in entry and "speedup" in base:
            compared += 1
            floor = _GATE_SPEEDUP_FLOOR * base["speedup"]
            status = "ok" if entry["speedup"] >= floor else "FAIL"
            print(
                f"  [check] {label}: speedup {entry['speedup']:.2f}x vs"
                f" baseline {base['speedup']:.2f}x (floor {floor:.2f}x) {status}"
            )
            if entry["speedup"] < floor:
                failures.append(
                    f"{label}: speedup {entry['speedup']:.2f}x <"
                    f" {floor:.2f}x (0.5 x baseline {base['speedup']:.2f}x)"
                )
        if "recall" in entry and "recall" in base:
            compared += 1
            floor = base["recall"] - _GATE_RECALL_SLACK
            status = "ok" if entry["recall"] >= floor else "FAIL"
            print(
                f"  [check] {label}: recall {entry['recall']:.4f} vs"
                f" baseline {base['recall']:.4f} (floor {floor:.4f}) {status}"
            )
            if entry["recall"] < floor:
                failures.append(
                    f"{label}: recall {entry['recall']:.4f} <"
                    f" {floor:.4f} (baseline {base['recall']:.4f} - "
                    f"{_GATE_RECALL_SLACK})"
                )
        if "disabled_overhead_pct" in entry and "disabled_overhead_pct" in base:
            compared += 1
            ceiling = max(
                _GATE_OVERHEAD_SLACK,
                base["disabled_overhead_pct"] + _GATE_OVERHEAD_SLACK,
            )
            current = entry["disabled_overhead_pct"]
            status = "ok" if current <= ceiling else "FAIL"
            print(
                f"  [check] {label}: disabled overhead {current:+.1f}% vs"
                f" baseline {base['disabled_overhead_pct']:+.1f}%"
                f" (ceiling {ceiling:.1f}%) {status}"
            )
            if current > ceiling:
                failures.append(
                    f"{label}: disabled overhead {current:.1f}% >"
                    f" {ceiling:.1f}%"
                )
    return failures, compared


def _scale_free(entry: dict) -> dict:
    """The gate-relevant scalars of one entry, for trajectory history."""
    keep = {"name": entry["name"], "n": entry["n"]}
    for field in ("speedup", "recall", "disabled_overhead_pct",
                  "enabled_overhead_pct"):
        if field in entry:
            keep[field] = round(entry[field], 4)
    return keep


def append_trajectory(payload: dict, path: pathlib.Path) -> int:
    """Append this run's scale-free summary to the history file."""
    history = {"schema": 1, "runs": []}
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            print(f"[trajectory at {path} unreadable; starting fresh]",
                  file=sys.stderr)
    history.setdefault("runs", []).append({
        "unix_time": int(time.time()),
        "quick": payload["quick"],
        "python": payload["python"],
        "numpy": payload["numpy"],
        "machine": payload["machine"],
        "entries": [_scale_free(e) for e in payload["entries"]],
    })
    path.write_text(json.dumps(history, indent=2) + "\n")
    return len(history["runs"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="output path for the machine-readable results (default:"
             " BENCH_PERF.json, or BENCH_PERF.current.json under --check"
             " so the baseline being compared against is never clobbered)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare this run against the committed baseline and exit"
             " non-zero on a latency/recall regression",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=REPO_ROOT / "BENCH_PERF.json",
        help="baseline file for --check (default: committed BENCH_PERF.json)",
    )
    parser.add_argument(
        "--replay", type=pathlib.Path, default=None,
        help="re-compare a previous run's results file instead of"
             " re-running the benchmarks (no output/trajectory writes)",
    )
    parser.add_argument(
        "--trajectory", type=pathlib.Path,
        default=REPO_ROOT / "BENCH_TRAJECTORY.json",
        help="per-run history file appended to after each real run",
    )
    args = parser.parse_args(argv)
    rng = np.random.default_rng(0)

    if args.replay is not None:
        payload = json.loads(args.replay.read_text())
        print(f"[replaying {len(payload['entries'])} entries from {args.replay}]")
        if not args.check:
            print("--replay without --check has nothing to do", file=sys.stderr)
            return 2
        baseline = json.loads(args.baseline.read_text())
        failures, compared = compare_to_baseline(payload["entries"], baseline)
        if compared == 0:
            print("CHECK FAILED: baseline has no comparable entries",
                  file=sys.stderr)
            return 1
        if failures:
            print("REGRESSIONS: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(f"[check ok: {compared} comparisons, no regressions]")
        return 0

    if args.quick:
        beam_sizes = [(5_000, 3)]
        flat_n, ivf_n, sel_repeats = 100_000, 32_000, 5
        adc_n, batch_n, batch_q, batch_gs = 4_000, 5_000, 32, 8
        recall_n = 4_000
    else:
        beam_sizes = [(10_000, 8), (50_000, 8)]
        flat_n, ivf_n, sel_repeats = 500_000, 64_000, 10
        adc_n, batch_n, batch_q, batch_gs = 20_000, 20_000, 128, 16
        recall_n = 16_000

    entries = []
    for n, queries in beam_sizes:
        entry = bench_beam_search(n, queries, rng)
        entries.append(entry)
        print(f"beam_search          n={n:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
              f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    for name, n in (("flat_topk", flat_n), ("ivf_topk", ivf_n)):
        entry = bench_selection_topk(name, n, 10, sel_repeats, rng)
        entries.append(entry)
        print(f"{name:<20} n={n:>7,}  ref {entry['reference_s']*1e6:8.1f} us  "
              f"vec {entry['vectorized_s']*1e6:8.1f} us  {entry['speedup']:5.1f}x")
    entry = bench_ivfadc_scan(adc_n, rng)
    entries.append(entry)
    print(f"ivfadc_scan          n={entry['n']:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
          f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    entry = bench_batched_graph_search(batch_n, batch_q, batch_gs, rng)
    entries.append(entry)
    print(f"batched_graph_search n={entry['n']:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
          f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    obs_n, obs_q = (3_000, 100) if args.quick else (10_000, 200)
    entry = bench_observability_overhead(obs_n, obs_q, rng)
    entries.append(entry)
    print(f"observability        n={entry['n']:>7,}  raw {entry['raw_dispatch_s']*1e3:8.1f} ms  "
          f"off {entry['disabled_s']*1e3:8.1f} ms ({entry['disabled_overhead_pct']:+5.1f}%)  "
          f"on {entry['enabled_s']*1e3:8.1f} ms ({entry['enabled_overhead_pct']:+5.1f}%)")
    plan_n, plan_q = (3_000, 50) if args.quick else (10_000, 200)
    entry = bench_plan_cache(plan_n, plan_q, rng)
    entries.append(entry)
    print(f"plan_cache_dispatch  n={entry['n']:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
          f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    # Same sizes in quick and full mode on purpose: one committed
    # baseline entry gates CI's quick runs too.
    entry = bench_serving_coalesce(8_000, 64, rng)
    entries.append(entry)
    print(f"serving_coalesce     n={entry['n']:>7,}  ref {entry['reference_s']*1e3:8.1f} ms  "
          f"vec {entry['vectorized_s']*1e3:8.1f} ms  {entry['speedup']:5.1f}x")
    # Quality probes: deterministic, so any delta past float noise is a
    # code change.  Dedicated seeds keep them decoupled from the timing
    # benches above.
    for name, seed, factory in (
        ("recall_hnsw", 101,
         lambda score: HnswIndex(score, m=16, ef_search=48, seed=7)),
        ("recall_ivf", 202,
         lambda score: IvfFlatIndex(score, nlist=64, nprobe=4, seed=3)),
    ):
        entry = bench_recall_probe(name, recall_n, seed, factory)
        entries.append(entry)
        print(f"{name:<20} n={entry['n']:>7,}  recall@{entry['k']} ="
              f" {entry['recall']:.4f}")

    payload = {
        "schema": 2,
        "suite": "vectorized-kernels",
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "entries": entries,
    }
    out = args.out or (
        REPO_ROOT / ("BENCH_PERF.current.json" if args.check else "BENCH_PERF.json")
    )
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[written to {out}]")
    runs = append_trajectory(payload, args.trajectory)
    print(f"[trajectory: run {runs} appended to {args.trajectory}]")

    if args.check:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError) as exc:
            print(f"CHECK FAILED: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 1
        failures, compared = compare_to_baseline(entries, baseline)
        if compared == 0:
            print("CHECK FAILED: baseline has no comparable entries",
                  file=sys.stderr)
            return 1
        if failures:
            print("REGRESSIONS: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(f"[check ok: {compared} comparisons, no regressions]")

    # Acceptance targets (full mode): >=3x beam @ 50k, >=2x flat/IVF
    # top-k, >=3x blocked FastScan over the per-cell float-table scan,
    # >=2.5x merged-frontier batching over the per-query loop.
    failures = []
    for e in entries:
        if e["name"] == "beam_search" and e["n"] >= 50_000 and e["speedup"] < 3:
            failures.append(f"{e['name']}@{e['n']}: {e['speedup']:.1f}x < 3x")
        if e["name"] in ("flat_topk", "ivf_topk") and e["speedup"] < 2:
            failures.append(f"{e['name']}: {e['speedup']:.1f}x < 2x")
        if e["name"] == "ivfadc_scan" and e["speedup"] < 3:
            failures.append(f"{e['name']}: {e['speedup']:.1f}x < 3x")
        if e["name"] == "batched_graph_search" and e["speedup"] < 2.5:
            failures.append(f"{e['name']}: {e['speedup']:.1f}x < 2.5x")
        if e["name"] == "serving_coalesce" and e["speedup"] < 2:
            failures.append(f"{e['name']}: {e['speedup']:.1f}x < 2x")
    if failures and not args.quick:
        print("TARGETS MISSED: " + "; ".join(failures), file=sys.stderr)
        return 1
    # The no-op observability path must cost nothing measurable; checked
    # in quick mode too (CI smoke).  The 15% gate is generous to absorb
    # scheduler noise — the real overhead is a handful of no-op calls.
    for e in entries:
        if (e["name"] == "observability_overhead"
                and e["disabled_overhead_pct"] > 15.0):
            print(
                "NO-OP OVERHEAD TOO HIGH: disabled path"
                f" {e['disabled_overhead_pct']:.1f}% over raw dispatch (>15%)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
