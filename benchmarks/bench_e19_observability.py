"""E19 (observability): per-operator attribution across the query path.

Two traced scenarios, both exported as CI artifacts:

1. **Hybrid crossover anatomy** — EXPLAIN ANALYZE the same hybrid query
   under pre-filter and post-filter at low and high predicate
   selectivity, and regenerate ``results/e19_attribution.txt``: the
   per-operator distance/predicate splits that *cause* the E8 crossover
   (pre-filter's cost lives in the table scan and scales with s·n;
   post-filter's lives in the index scan plus filter retries).  Every
   profile's self-stats must partition the query totals exactly.
2. **Degraded distributed query** — one scatter-gather search under an
   injected replica crash + a flaky replica, non-strict; the trace must
   carry ``retry`` and ``failover`` events tagged with the fault reason.
   The span trace (``results/e19_trace.jsonl``) and the Prometheus dump
   (``results/e19_metrics.txt``) are the artifacts CI uploads.
"""

import warnings

import pytest

from _util import emit
from repro import (
    Field,
    Observability,
    VectorDatabase,
    validate_span_tree,
    write_metrics_text,
    write_trace_jsonl,
)
from repro.bench.reporting import format_table
from repro.core.errors import PartialResultWarning
from repro.core.planner import QueryPlan
from repro.distributed import DistributedSearchCluster
from repro.observability import STAT_FIELDS
from repro.reliability import FaultPlan
from repro.reliability.faults import CRASH, FLAKY, FaultSpec

RESULTS = __import__("pathlib").Path(__file__).parent / "results"


# ----------------------------------------------------- hybrid attribution


@pytest.fixture(scope="module")
def traced_db(hybrid_bench_dataset):
    ds = hybrid_bench_dataset
    db = VectorDatabase(dim=ds.dim, observability=Observability())
    db.insert_many(ds.train, ds.attributes)
    db.create_index("g", "hnsw", m=12)
    return db, ds


def _profile_row(db, query, predicate, selectivity_label, strategy):
    plan = QueryPlan(
        strategy, None if strategy == "pre_filter" else "g",
        oversample=None,
    )
    profile = db.explain_analyze(vector=query, k=10, predicate=predicate,
                                 plan=plan)
    assert profile.attribution_residual() == {f: 0 for f in STAT_FIELDS}
    # Per-operator self-attribution: where the distance work actually is.
    split = {
        node.name: node.stats_self["distance_computations"]
        for node in profile.root.walk()
        if node.stats_self and node.stats_self["distance_computations"]
    }
    totals = profile.root.stats_total
    return {
        "selectivity": selectivity_label,
        "strategy": strategy,
        "dist_total": totals["distance_computations"],
        "pred_evals": totals["predicate_evaluations"],
        "dist_by_operator": "; ".join(
            f"{name}={count}" for name, count in sorted(split.items())
        ),
    }, profile


@pytest.fixture(scope="module")
def e19_attribution(traced_db):
    db, ds = traced_db
    query = ds.queries[0]
    cases = [
        ("low s", Field("category") == 0),            # ~1/num_categories
        ("high s", Field("rating") >= 2),             # most rows pass
    ]
    rows, profiles = [], []
    for label, predicate in cases:
        for strategy in ("pre_filter", "post_filter"):
            row, profile = _profile_row(db, query, predicate, label, strategy)
            rows.append(row)
            profiles.append(profile)
    table = format_table(
        rows, "E19: per-operator distance attribution, pre- vs post-filter"
    )
    sample = profiles[0].render()
    emit("e19_attribution", table + "\n\nSample profile (low s, pre_filter):\n"
         + sample)
    return rows


def test_e19_attribution_is_exact_partition(e19_attribution):
    # attribution_residual() == 0 is asserted per-profile in the fixture;
    # here: the rows exist for both strategies at both selectivities.
    assert len(e19_attribution) == 4
    assert {r["strategy"] for r in e19_attribution} == {
        "pre_filter", "post_filter"
    }


def test_e19_attribution_locates_the_crossover_cause(e19_attribution):
    """Pre-filter's distance work lives in the table scan and tracks
    selectivity; post-filter's lives in the index scan and does not."""
    by_key = {(r["selectivity"], r["strategy"]): r for r in e19_attribution}
    pre_low = by_key[("low s", "pre_filter")]
    pre_high = by_key[("high s", "pre_filter")]
    assert "table_scan" in pre_low["dist_by_operator"]
    assert pre_high["dist_total"] > 2 * pre_low["dist_total"]
    post_low = by_key[("low s", "post_filter")]
    post_high = by_key[("high s", "post_filter")]
    assert "index:hnsw" in post_low["dist_by_operator"]
    ratio = post_high["dist_total"] / max(1, post_low["dist_total"])
    assert ratio < 2  # index scan cost is selectivity-insensitive


def test_e19_hybrid_trace_artifact(traced_db):
    """One traced hybrid query -> the JSONL artifact CI uploads."""
    db, ds = traced_db
    db.observability.tracer.clear()
    result = db.search(ds.queries[1], k=10, predicate=Field("category") == 1)
    assert result.stats.elapsed_seconds > 0
    spans = db.observability.tracer.spans
    assert validate_span_tree(spans) == []
    RESULTS.mkdir(exist_ok=True)
    n = write_trace_jsonl(spans, RESULTS / "e19_trace.jsonl")
    assert n == len(spans) >= 3  # plan + query root + operator spans


# ------------------------------------------------- degraded distributed


def test_e19_degraded_distributed_trace(hybrid_bench_dataset):
    """Replica crash + flaky replica: trace carries retry/failover
    events (tagged with the injected-fault reason) and the degraded
    query is counted; appends spans + metrics to the CI artifacts."""
    ds = hybrid_bench_dataset
    obs = Observability(slow_query_seconds=0.0)
    # The coordinator's round-robin starts at replica 1 for the first
    # query, so fault replica 1: shard0 both replicas (degrades), shard1
    # transiently flaky (retries then succeeds).
    plan = FaultPlan(faults=(
        FaultSpec(CRASH, target="shard0-replica*", at_op=0),
        FaultSpec(FLAKY, target="shard1-replica1", at_op=0, duration_ops=1),
    ))
    cluster = DistributedSearchCluster(
        num_shards=4, replication_factor=2, index_type="flat",
        strict=False, injector=plan.injector(), observability=obs,
    )
    cluster.load(ds.train)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialResultWarning)
        result, dstats = cluster.search(ds.queries[0], 10)

    assert result.stats.partial and dstats.shards_failed == 1
    assert dstats.retries >= 1 and dstats.failovers >= 1
    events = [e for s in obs.tracer.spans for e in s.events]
    reasons = {e.name: e.attributes.get("reason") for e in events}
    assert reasons.get("failover") == "crashed (injected)"
    assert reasons.get("retry") == "request dropped (injected)"
    assert validate_span_tree(obs.tracer.spans) == []

    RESULTS.mkdir(exist_ok=True)
    with open(RESULTS / "e19_trace.jsonl", "a") as fh:
        from repro.observability import spans_to_jsonl

        fh.write(spans_to_jsonl(obs.tracer.spans))
    write_metrics_text(obs.metrics, RESULTS / "e19_metrics.txt")
    text = (RESULTS / "e19_metrics.txt").read_text()
    assert "vdbms_failovers_total" in text
    assert "vdbms_degraded_queries_total" in text
    assert "vdbms_coverage_fraction_bucket" in text


def test_e19_latency_p99_through_sketch(traced_db):
    """Tail latency reporting routes through the streaming sketch.

    The fixed-bucket histogram quantile is only bucket-resolution (its
    p99 snaps to a grid bound — see ``Histogram.quantile``'s documented
    error bound), so E19's latency report now uses
    ``Observability.latency_quantile``: grid-free, and bracketed by the
    true observed latency range.  The artifact records both so the
    difference is visible.
    """
    db, ds = traced_db
    obs = db.observability
    for q in ds.queries:
        db.search(q, k=10, predicate=Field("category") == 1)
    sketch = obs.sketch("search")
    assert sketch.count >= len(ds.queries)
    p99_sketch = obs.latency_quantile(0.99, kind="search")
    hist = obs.metrics.get("vdbms_query_seconds")
    p99_bucket = hist.quantile(0.99, kind="search")
    # The sketch estimate is a real latency, inside the observed range;
    # the bucket estimate is one of the fixed grid bounds.
    assert sketch.min <= p99_sketch <= sketch.max
    assert p99_bucket in hist.buckets
    lines = [
        "E19: p99 latency, streaming sketch vs fixed-bucket histogram",
        f"queries observed      {sketch.count}",
        "sketch p50/p95/p99    "
        + "  ".join(f"{sketch.quantile(q) * 1e3:.3f}ms"
                    for q in (0.5, 0.95, 0.99)),
        f"bucket-grid p99       {p99_bucket * 1e3:.3f}ms"
        "  (snapped to histogram bound)",
        f"observed min/max      {sketch.min * 1e3:.3f}ms /"
        f" {sketch.max * 1e3:.3f}ms",
    ]
    emit("e19_latency_quantiles", "\n".join(lines))


def test_e19_query_overhead(benchmark, hybrid_bench_dataset):
    """pytest-benchmark timing: a traced hybrid query (spans + metrics)."""
    ds = hybrid_bench_dataset
    db = VectorDatabase(dim=ds.dim, observability=Observability())
    db.insert_many(ds.train, ds.attributes)
    db.create_index("g", "hnsw", m=12)
    q = ds.queries[0]
    pred = Field("category") == 1

    def run():
        db.observability.tracer.clear()
        return db.search(q, k=10, predicate=pred)

    result = benchmark(run)
    assert len(result.hits) == 10
