"""E21 (testing roadmap): the torture rig as a measurable experiment.

Runs the three pillars at smoke depth over every registered index type
and regenerates ``benchmarks/results/e21_torture.txt``: oracle checks
executed per pillar, the per-relation check counts over the full zoo,
and the crash-loop enumeration sizes.  The headline claims:

* the crash loop enumerates *every* write-prefix (plus torn variants)
  of a snapshot save and an LSM flush+compaction, and recovery is
  old-or-new at each one;
* all metamorphic relations and the differential oracles hold over all
  registered index types at their declared tolerances;
* every check is regenerable from its seed alone (asserted by running
  one cell twice and comparing reports).
"""

import tempfile

import pytest

from _util import emit
from repro.bench.reporting import format_table
from repro.index.registry import available_indexes
from repro.torture import (
    RELATIONS,
    TortureReport,
    run_crash,
    run_differential,
    run_metamorphic,
)

SEED = 42


@pytest.fixture(scope="module")
def index_names():
    return available_indexes()


def test_e21_crash_loops_every_prefix(tmp_path):
    report = run_crash(SEED, tmp_path, depth="smoke")
    assert report.ok, report.render()
    assert report.checks["crash"] >= 30


def test_e21_rig_report(index_names):
    with tempfile.TemporaryDirectory(prefix="e21-") as tmp:
        crash = run_crash(SEED, tmp, depth="smoke")
    relation_rows = []
    meta = TortureReport(depth="smoke", seed=SEED)
    for name in sorted(RELATIONS):
        rep = run_metamorphic(index_names, SEED, relations=[name])
        meta.merge(rep)
        relation_rows.append({
            "relation": name,
            "checks": rep.total_checks,
            "findings": len(rep.findings),
        })
    diff = run_differential(index_names, SEED)

    assert crash.ok, crash.render()
    assert meta.ok, meta.render()
    assert diff.ok, diff.render()

    pillar_rows = [
        {"pillar": "crash", "checks": crash.total_checks,
         "findings": len(crash.findings),
         "scope": "save_database + LSM flush/compaction, every prefix"},
        {"pillar": "metamorphic", "checks": meta.total_checks,
         "findings": len(meta.findings),
         "scope": f"{len(RELATIONS)} relations x {len(index_names)} indexes"},
        {"pillar": "differential", "checks": diff.total_checks,
         "findings": len(diff.findings),
         "scope": f"flat oracle x {len(index_names)} indexes"},
    ]
    emit(
        "e21_torture",
        "\n\n".join([
            format_table(
                pillar_rows,
                title=f"E21: torture rig, smoke depth, seed {SEED}",
            ),
            format_table(relation_rows, title="metamorphic relations"),
        ]),
    )


def test_e21_reports_are_seed_reproducible(index_names):
    subset = [n for n in ("flat", "hnsw", "pq") if n in index_names]
    first = run_differential(subset, seed=7)
    second = run_differential(subset, seed=7)
    assert first.to_json() == second.to_json()


def test_e21_torture_smoke_timing(benchmark):
    """pytest-benchmark timing: one metamorphic cell (the rig's unit of
    reproduction — relation x index x seed)."""
    result = benchmark(
        lambda: run_metamorphic(["hnsw"], SEED, relations=["delete-liveness"])
    )
    assert result.ok
