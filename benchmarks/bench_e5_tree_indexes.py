"""E5 (§2.2 tree-based): logarithmic depth, forests, randomization at
high dimension.

Regenerates:

* tree depth grows ~log2(N) (k-d tree N sweep);
* recall vs leaf budget for each tree index — forests (ANNOY/RP/rand-kd)
  dominate a single deterministic tree at the same budget;
* the high-d failure of bounded-backtrack deterministic k-d search that
  motivated randomized trees.
"""

import math

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.datasets import gaussian_mixture
from repro.bench.metrics import exact_ground_truth
from repro.bench.reporting import format_table
from repro.index import (
    AnnoyIndex,
    KdTreeIndex,
    PcaTreeIndex,
    RandomizedKdForestIndex,
    RpTreeIndex,
)
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def e5_depth_table():
    rows = []
    for n in (500, 2000, 8000):
        ds = gaussian_mixture(n=n, dim=16, seed=0)
        index = KdTreeIndex(leaf_size=8).build(ds.train)
        stats = index.stats()
        rows.append(
            {
                "N": n,
                "max_depth": int(stats["max_depth"]),
                "log2(N/leaf)": round(math.log2(n / 8), 1),
                "num_leaves": int(stats["num_leaves"]),
            }
        )
    emit("e5_depth", format_table(rows, "E5a: k-d tree depth vs N (log growth)"))
    return rows


@pytest.fixture(scope="module")
def e5_budget_table(workload, truth10):
    indexes = {
        "kdtree": (KdTreeIndex(leaf_size=16).build(workload.train), "max_leaves"),
        "pca_tree": (PcaTreeIndex(leaf_size=16, seed=0).build(workload.train),
                     "max_leaves"),
        "rp_tree(x4)": (RpTreeIndex(num_trees=4, seed=0).build(workload.train),
                        "max_leaves"),
        "randkd(x4)": (
            RandomizedKdForestIndex(num_trees=4, seed=0).build(workload.train),
            "max_leaves",
        ),
        "annoy(x8)": (AnnoyIndex(num_trees=8, seed=0).build(workload.train),
                      "search_k"),
    }
    rows = []
    for budget in (4, 16, 64):
        row = {"leaf_budget": budget}
        for name, (index, kw) in indexes.items():
            recalls = [
                recall_of(index.search(q, 10, **{kw: budget}), truth10[i])
                for i, q in enumerate(workload.queries)
            ]
            row[name] = round(float(np.mean(recalls)), 3)
        rows.append(row)
    emit("e5_budget", format_table(
        rows, "E5b: tree-index recall@10 vs leaf budget"
    ))
    return rows


@pytest.fixture(scope="module")
def e5_highdim_table():
    rows = []
    for dim in (8, 64, 256):
        ds = gaussian_mixture(n=2000, dim=dim, num_queries=15, seed=1)
        truth = exact_ground_truth(ds.train, ds.queries, 10, EuclideanScore())
        kd = KdTreeIndex(leaf_size=16).build(ds.train)
        annoy = AnnoyIndex(num_trees=8, seed=0).build(ds.train)
        kd_recall = float(np.mean([
            recall_of(kd.search(q, 10, max_leaves=16), truth[i])
            for i, q in enumerate(ds.queries)
        ]))
        annoy_recall = float(np.mean([
            recall_of(annoy.search(q, 10, search_k=16), truth[i])
            for i, q in enumerate(ds.queries)
        ]))
        rows.append(
            {
                "dim": dim,
                "kdtree@16 leaves": round(kd_recall, 3),
                "annoy@16 leaves": round(annoy_recall, 3),
            }
        )
    emit("e5_highdim", format_table(
        rows, "E5c: deterministic vs randomized trees as dimension grows"
    ))
    return rows


def test_e5_depth_logarithmic(e5_depth_table):
    for row in e5_depth_table:
        assert row["max_depth"] <= 2 * row["log2(N/leaf)"] + 4


def test_e5_budget_monotonic(e5_budget_table):
    for name in ("kdtree", "annoy(x8)", "rp_tree(x4)"):
        series = [row[name] for row in e5_budget_table]
        assert all(b >= a - 0.03 for a, b in zip(series, series[1:])), name


def test_e5_forest_beats_single_tree_at_budget(e5_budget_table):
    mid = e5_budget_table[1]  # budget 16
    forest_best = max(mid["rp_tree(x4)"], mid["randkd(x4)"], mid["annoy(x8)"])
    assert forest_best >= mid["kdtree"] - 0.05


def test_bench_e5_kdtree_exact(benchmark, workload, e5_depth_table,
                               e5_budget_table, e5_highdim_table):
    index = KdTreeIndex(leaf_size=16).build(workload.train)
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10))


def test_bench_e5_annoy_search(benchmark, workload):
    index = AnnoyIndex(num_trees=8, seed=0).build(workload.train)
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10, search_k=32))
