"""E13 (§2.5): the ANN-Benchmarks-style master comparison [29, 55].

Runs every index family at several operating points on one workload
and regenerates the recall@10 / QPS / build-time / memory table plus
its recall-QPS Pareto frontier — the headline artifact of both
benchmarks the tutorial covers.
"""

import pytest

from _util import emit
from repro.bench.datasets import gaussian_mixture
from repro.bench.metrics import exact_ground_truth, pareto_frontier
from repro.bench.reporting import format_table
from repro.bench.runner import default_suite, measure
from repro.index import make_index
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def e13_workload():
    """Harder than the shared workload: overlapping clusters, so coarse
    partitioning alone cannot reach high recall (as on real embeddings)."""
    return gaussian_mixture(n=4000, dim=32, num_clusters=64, cluster_std=1.0,
                            num_queries=30, seed=17)


@pytest.fixture(scope="module")
def e13_truth(e13_workload):
    return exact_ground_truth(
        e13_workload.train, e13_workload.queries, 10, EuclideanScore()
    )


@pytest.fixture(scope="module")
def e13_measurements(e13_workload, e13_truth):
    out = []
    for spec in default_suite():
        out.extend(measure(spec, e13_workload, e13_truth, k=10))
    return out


@pytest.fixture(scope="module")
def e13_table(e13_measurements):
    rows = [m.row() for m in e13_measurements]
    emit("e13_master", format_table(
        rows, "E13: master comparison (n=4000, d=32, overlapping clusters)"
    ))
    frontier = pareto_frontier(e13_measurements)
    emit("e13_pareto", format_table(
        [m.row() for m in frontier],
        "E13: recall/QPS Pareto frontier (QPS carries Python traversal"
        " overhead; see dists/query for the hardware-independent view)",
    ))
    return e13_measurements


def test_e13_flat_is_exact_baseline(e13_table):
    flat = next(m for m in e13_table if m.algorithm == "flat")
    assert flat.recall == pytest.approx(1.0)


def test_e13_graphs_most_distance_efficient_at_high_recall(e13_table):
    """§2.5's consistent finding, in the hardware-independent measure
    [55]: at high recall, graph indexes touch the fewest vectors.
    (Wall-clock QPS in this substrate additionally pays per-hop Python
    overhead that compiled implementations do not — see EXPERIMENTS.md.)
    """
    high_recall = [
        m for m in e13_table if m.recall >= 0.9 and m.algorithm != "flat"
    ]
    assert high_recall
    cheapest = min(high_recall, key=lambda m: m.mean_distance_computations)
    assert cheapest.algorithm in ("hnsw", "nsg", "vamana", "ngt"), (
        cheapest.algorithm,
        [(m.algorithm, m.parameters, round(m.mean_distance_computations))
         for m in high_recall],
    )


def test_e13_every_family_represented(e13_table):
    algorithms = {m.algorithm for m in e13_table}
    assert {"flat", "lsh", "ivf_flat", "ivf_adc", "annoy", "kdtree", "hnsw",
            "nsg", "vamana"} <= algorithms


def test_e13_quantized_memory_advantage(e13_table):
    ivf_adc = [m for m in e13_table if m.algorithm == "ivf_adc"]
    hnsw = [m for m in e13_table if m.algorithm == "hnsw"]
    assert min(m.memory_bytes for m in ivf_adc) < min(
        m.memory_bytes for m in hnsw
    )


def test_bench_e13_best_graph_operating_point(benchmark, e13_workload, e13_table):
    index = make_index("hnsw", m=16, ef_construction=100, seed=0)
    index.build(e13_workload.train)
    q = e13_workload.queries[0]
    benchmark(lambda: index.search(q, 10, ef_search=64))


def test_bench_e13_best_table_operating_point(benchmark, e13_workload):
    index = make_index("ivf_adc", nlist=64, m=8, rerank=50, seed=0)
    index.build(e13_workload.train)
    q = e13_workload.queries[0]
    benchmark(lambda: index.search(q, 10, nprobe=16))
