"""E11 (§2.3 distributed search): shard scaling and routing.

Regenerates:

* simulated latency and aggregate-QPS bound vs shard count under
  scatter-gather (equal partitioning);
* index-guided vs uniform sharding: nodes contacted per query and
  throughput at matched recall;
* replica failover continuity.
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.distributed import (
    DistributedSearchCluster,
    IndexGuidedSharding,
    NodeLatencyModel,
    UniformSharding,
)

LATENCY = NodeLatencyModel(network_seconds=0.0005, per_distance_seconds=2e-7)


@pytest.fixture(scope="module")
def e11_scaling_table(workload, truth10):
    rows = []
    for shards in (1, 2, 4, 8, 16):
        cluster = DistributedSearchCluster(
            sharding=UniformSharding(shards), index_type="flat", latency=LATENCY
        )
        cluster.load(workload.train)
        latencies, recalls, qps = [], [], []
        for i, q in enumerate(workload.queries):
            result, dstats = cluster.search(q, 10)
            latencies.append(dstats.simulated_latency_seconds)
            recalls.append(recall_of(result.hits, truth10[i]))
            qps.append(cluster.throughput_estimate(dstats))
        rows.append(
            {
                "shards": shards,
                "recall@10": round(float(np.mean(recalls)), 3),
                "sim_latency_ms": round(float(np.mean(latencies)) * 1e3, 3),
                "qps_bound": round(float(np.mean(qps)), 0),
            }
        )
    emit("e11_scaling", format_table(
        rows, "E11a: scatter-gather scaling with shard count (flat shards)"
    ))
    return rows


@pytest.fixture(scope="module")
def e11_routing_table(workload, truth10):
    rows = []
    uniform = DistributedSearchCluster(
        sharding=UniformSharding(8), index_type="flat", latency=LATENCY
    )
    uniform.load(workload.train)
    guided = DistributedSearchCluster(
        sharding=IndexGuidedSharding(8, cells_per_shard=4, seed=0),
        index_type="flat", latency=LATENCY,
    )
    guided.load(workload.train)
    for name, cluster, nprobe in (
        ("uniform", uniform, 8),
        ("index_guided(np=2)", guided, 2),
        ("index_guided(np=4)", guided, 4),
    ):
        contacted, recalls, qps = [], [], []
        for i, q in enumerate(workload.queries):
            result, dstats = cluster.search(q, 10, route_nprobe=nprobe)
            contacted.append(dstats.shards_contacted)
            recalls.append(recall_of(result.hits, truth10[i]))
            qps.append(cluster.throughput_estimate(dstats))
        rows.append(
            {
                "sharding": name,
                "shards_contacted": round(float(np.mean(contacted)), 2),
                "recall@10": round(float(np.mean(recalls)), 3),
                "qps_bound": round(float(np.mean(qps)), 0),
            }
        )
    emit("e11_routing", format_table(
        rows, "E11b: uniform vs index-guided sharding (8 shards)"
    ))
    return rows


@pytest.fixture(scope="module")
def e11_elastic_table(workload):
    """Elasticity: scale-out cost and benefit (§2.3 disaggregation)."""
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(2), replication_factor=1, index_type="flat",
        latency=LATENCY,
    )
    cluster.load(workload.train)
    rows = []
    for target in (2, 4, 8):
        if target > cluster.num_shards:
            moved = cluster.scale_out(target)
        else:
            moved = 0
        latencies = []
        for q in workload.queries[:10]:
            _, dstats = cluster.search(q, 10)
            latencies.append(dstats.simulated_latency_seconds)
        rows.append(
            {
                "shards": target,
                "vectors_moved": moved,
                "sim_latency_ms": round(float(np.mean(latencies)) * 1e3, 3),
            }
        )
    emit("e11_elastic", format_table(
        rows, "E11c: elastic scale-out (uniform resharding)"
    ))
    return rows


def test_e11_scale_out_reduces_latency(e11_elastic_table):
    latencies = [r["sim_latency_ms"] for r in e11_elastic_table]
    assert latencies[-1] < latencies[0]


def test_e11_scale_out_moves_bounded_fraction(e11_elastic_table):
    for row in e11_elastic_table:
        assert row["vectors_moved"] <= 4000


def test_e11_latency_drops_with_shards(e11_scaling_table):
    lat = [r["sim_latency_ms"] for r in e11_scaling_table]
    assert lat[-1] < lat[0]
    assert all(r["recall@10"] == 1.0 for r in e11_scaling_table)  # exact merge


def test_e11_qps_improves_with_shards(e11_scaling_table):
    """Full-scatter sharding buys throughput only via lower per-node
    work (latency), bounded below by the network RTT — the reason
    index-guided routing (E11b) matters."""
    qps = [r["qps_bound"] for r in e11_scaling_table]
    assert qps[-1] > 1.5 * qps[0]


def test_e11_guided_contacts_fewer(e11_routing_table):
    by_name = {r["sharding"]: r for r in e11_routing_table}
    assert (
        by_name["index_guided(np=2)"]["shards_contacted"]
        < by_name["uniform"]["shards_contacted"]
    )
    assert by_name["index_guided(np=4)"]["recall@10"] >= 0.9


def test_e11_failover_preserves_results(workload):
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(4), replication_factor=2, index_type="flat",
        latency=LATENCY,
    )
    cluster.load(workload.train)
    q = workload.queries[0]
    before, _ = cluster.search(q, 10)
    cluster.fail_node(0, 0)
    cluster.fail_node(2, 0)
    after, dstats = cluster.search(q, 10)
    assert after.ids == before.ids


def test_bench_e11_scatter_gather(benchmark, workload, e11_scaling_table,
                                  e11_routing_table, e11_elastic_table):
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(8), index_type="flat", latency=LATENCY
    )
    cluster.load(workload.train)
    q = workload.queries[0]
    benchmark(lambda: cluster.search(q, 10))


def test_bench_e11_guided_routing(benchmark, workload):
    cluster = DistributedSearchCluster(
        sharding=IndexGuidedSharding(8, cells_per_shard=4, seed=0),
        index_type="flat", latency=LATENCY,
    )
    cluster.load(workload.train)
    q = workload.queries[0]
    benchmark(lambda: cluster.search(q, 10, route_nprobe=2))
