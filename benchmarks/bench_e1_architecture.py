"""E1 (Figure 1): the full VDBMS pipeline, across system design points.

The paper's only figure is the architecture of a generic VDBMS.  This
bench drives a query through every stage — interface, planner,
optimizer, executor, index scan, storage — for each §2.4 system
category preset, and reports which plan each design point picks and
what it costs.
"""

import numpy as np
import pytest

from _util import emit
from repro.bench.reporting import format_table
from repro.hybrid.predicates import Field
from repro.systems import build_preset_index, mostly_mixed, mostly_vector, relational


@pytest.fixture(scope="module")
def systems(hybrid_bench_dataset):
    ds = hybrid_bench_dataset
    out = {}
    for name, maker in (
        ("mostly_vector", mostly_vector),
        ("mostly_mixed", mostly_mixed),
        ("relational", relational),
    ):
        db = maker(ds.dim)
        db.insert_many(ds.train, ds.attributes)
        build_preset_index(db)
        out[name] = db
    return out


@pytest.fixture(scope="module")
def e1_table(systems, hybrid_bench_dataset, truth10=None):
    ds = hybrid_bench_dataset
    predicate = Field("category") == 3
    rows = []
    for name, db in systems.items():
        latencies, plans, counts = [], set(), []
        for q in ds.queries:
            result = db.search(q, k=10, predicate=predicate)
            latencies.append(result.stats.elapsed_seconds)
            plans.add(result.stats.plan_name.split(" (")[0])
            counts.append(len(result))
        rows.append(
            {
                "system_preset": name,
                "plan(s) chosen": "; ".join(sorted(plans)),
                "mean_latency_ms": round(float(np.mean(latencies)) * 1e3, 3),
                "mean_results": round(float(np.mean(counts)), 1),
            }
        )
    emit("e1_architecture", format_table(
        rows, "E1 (Fig.1): query pipeline across system design points"
    ))
    return rows


def test_e1_postfilter_can_underfill(e1_table):
    """Mostly-vector's fixed post-filter plan may return < k (§2.3)."""
    by_name = {r["system_preset"]: r for r in e1_table}
    assert by_name["mostly_vector"]["mean_results"] <= 10.0
    assert by_name["mostly_mixed"]["mean_results"] == 10.0  # optimizer avoids it


def test_bench_e1_full_pipeline_query(benchmark, systems, hybrid_bench_dataset,
                                      e1_table):
    db = systems["mostly_mixed"]
    q = hybrid_bench_dataset.queries[0]
    predicate = Field("category") == 3
    result = benchmark(lambda: db.search(q, k=10, predicate=predicate))
    assert len(result) == 10


def test_bench_e1_plain_search(benchmark, systems, hybrid_bench_dataset):
    db = systems["mostly_vector"]
    q = hybrid_bench_dataset.queries[1]
    result = benchmark(lambda: db.search(q, k=10))
    assert len(result) == 10
