"""E20 (quality observatory): audited recall drift under index degradation.

The silent-failure mode this experiment reproduces: an IVF index keeps
answering quickly while deletes empty exactly the cells the workload
probes — the centroids do not move, so the planner keeps routing to the
same (now hollow) inverted lists and recall collapses with **no error,
no latency change, and no stale-index flag**.  Latency monitoring alone
cannot see it; the online recall auditor can.

Three phases over one database, all through the public query path:

1. **Healthy** — every query audited (fraction 1.0, fixed seed); the
   audited recall@10 window sits at ~1.0 and ``Database.health()`` is OK.
2. **Degrade** — tombstone every vector in the cells the workload
   probes (`delete`, no rebuild).  Nothing is flagged stale.
3. **Drifted** — the same queries re-run; audited recall collapses, the
   ``recall@10 >= 0.9`` SLO burns through its budget, the multi-window
   burn-rate alert fires, and the breach is visible both in
   ``Database.health()`` and as an ``slo_alert`` trace span.

Fidelity gate (mirrors the tier-1 test): the *online* audited recall
must match the *offline* bench-path recall (exact ground truth over the
live rows) within +/-0.05 in both phases.

Artifacts: ``results/e20_quality_slo.txt`` (phase table + fidelity
numbers) and ``results/e20_health.txt`` (the rendered health report CI
uploads).
"""

import numpy as np
import pytest

from _util import RESULTS_DIR, emit
from repro import SLO, Field, Observability, VectorDatabase
from repro.bench.metrics import exact_ground_truth, recall_at_k
from repro.bench.reporting import format_table
from repro.core.planner import QueryPlan
from repro.scores import EuclideanScore

K = 10
PLAN = QueryPlan("index_scan", "ivf")


def _offline_recall(db, queries, results):
    """Bench-path recall: exact truth over live rows, per-query overlap.

    Deliberately independent of the auditor's implementation — this is
    the yardstick the auditor is being graded against.
    """
    live = np.flatnonzero(db.collection.alive)
    truth = live[
        exact_ground_truth(db.collection.vectors[live], queries, K,
                           EuclideanScore())
    ]
    return float(np.mean([
        recall_at_k([h.id for h in r.hits], truth[i])
        for i, r in enumerate(results)
    ]))


@pytest.fixture(scope="module")
def e20_scenario(workload):
    db = VectorDatabase(
        dim=workload.dim,
        observability=Observability(
            audit_fraction=1.0, audit_k=K, audit_seed=7,
            slos=[SLO("recall@10", "recall", 0.9, budget=0.05,
                      description="audited top-10 overlap vs exact scan")],
        ),
    )
    db.insert_many(workload.train)
    db.create_index("ivf", "ivf_flat", nlist=32, nprobe=2, seed=0)
    queries = workload.queries
    auditor = db.observability.auditor

    # Phase 1: healthy serving.
    healthy_results = [db.search(q, k=K, plan=PLAN) for q in queries]
    healthy = {
        "audited": auditor.window_mean_recall(),
        "offline": _offline_recall(db, queries, healthy_results),
        "health_ok": db.health().ok,
    }

    # Phase 2: empty the probed cells — delete, never rebuild.
    index = db.indexes["ivf"]
    victim_cells = set()
    for q in queries:
        victim_cells.update(int(c) for c in index._probe_cells(q, 2))
    victims = np.unique(np.concatenate(
        [index._ids[index._cells[c]] for c in sorted(victim_cells)]
    ))
    for vid in victims:
        db.delete(int(vid))

    # Phase 3: the same workload against the hollowed index.
    drifted_results = [db.search(q, k=K, plan=PLAN) for q in queries]
    drifted_records = list(auditor.recent)[-len(queries):]
    drifted = {
        "audited": float(np.mean([r.recall for r in drifted_records])),
        "offline": _offline_recall(db, queries, drifted_results),
        "health_ok": db.health().ok,
    }
    return {
        "db": db,
        "queries": queries,
        "healthy": healthy,
        "drifted": drifted,
        "deleted": int(victims.size),
        "cells_emptied": len(victim_cells),
    }


def test_e20_degradation_is_silent_without_auditing(e20_scenario):
    """The failure the auditor exists for: nothing else complains."""
    db = e20_scenario["db"]
    assert not db.has_stale_indexes
    log = db.observability.slow_log
    assert log is None or log.recorded == 0
    assert e20_scenario["drifted"]["offline"] < 0.5  # yet recall collapsed


def test_e20_audited_recall_matches_offline(e20_scenario):
    """Fidelity gate: online auditor == offline bench path, +/-0.05."""
    for phase in ("healthy", "drifted"):
        audited = e20_scenario[phase]["audited"]
        offline = e20_scenario[phase]["offline"]
        assert abs(audited - offline) <= 0.05, (
            f"{phase}: audited {audited:.4f} vs offline {offline:.4f}"
        )
    assert e20_scenario["healthy"]["audited"] >= 0.9
    assert e20_scenario["drifted"]["audited"] < 0.5


def test_e20_burn_rate_alert_reaches_health_and_trace(e20_scenario):
    db = e20_scenario["db"]
    assert e20_scenario["healthy"]["health_ok"]
    report = db.health()
    assert not report.ok
    alerts = [a for a in report.alerts if a.active]
    assert any(a.slo == "recall@10" for a in alerts)
    spans = [s for s in db.observability.tracer.spans if s.name == "slo_alert"]
    assert any(
        e.name == "burn_rate_alert" for s in spans for e in s.events
    )


def test_e20_audit_cost_is_segregated(e20_scenario):
    """Every audit scan is charged to audit_*; the query path's own
    distance accounting is untouched by the re-execution."""
    db = e20_scenario["db"]
    metrics = db.observability.metrics
    n_queries = 2 * len(e20_scenario["queries"])
    assert metrics.get("vdbms_audit_queries_total").total() == n_queries
    assert metrics.get("vdbms_audit_distance_computations_total").total() > 0
    audit_recall = metrics.get("vdbms_audit_recall")
    assert audit_recall.count(
        collection="default", strategy="index_scan", index="ivf"
    ) == n_queries
    # The query-path counter only saw the (cheap) nprobe-limited scans.
    assert (metrics.get("vdbms_distance_computations_total").total()
            < metrics.get("vdbms_audit_distance_computations_total").total())


def test_e20_artifacts(e20_scenario):
    db = e20_scenario["db"]
    rows = []
    for phase in ("healthy", "drifted"):
        data = e20_scenario[phase]
        rows.append({
            "phase": phase,
            "audited_recall@10": f"{data['audited']:.4f}",
            "offline_recall@10": f"{data['offline']:.4f}",
            "delta": f"{abs(data['audited'] - data['offline']):.4f}",
            "health": "OK" if data["health_ok"] else "ALERTING",
        })
    table = format_table(
        rows,
        "E20: audited recall drift under silent IVF degradation "
        f"({e20_scenario['deleted']} deletes emptied "
        f"{e20_scenario['cells_emptied']} probed cells, no rebuild)",
    )
    summary = db.observability.auditor.summary()
    lines = [
        table,
        "",
        f"auditor: fraction={summary['fraction']} seed={summary['seed']} "
        f"considered={summary['considered']} audited={summary['audited']}",
    ]
    emit("e20_quality_slo", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "e20_health.txt").write_text(db.health().render() + "\n")
    assert "ALERTING" in (RESULTS_DIR / "e20_health.txt").read_text()


def test_e20_audited_query_overhead(benchmark, workload):
    """pytest-benchmark timing: a fully-audited filtered query (the
    worst case — every query pays one exact re-scan)."""
    db = VectorDatabase(
        dim=workload.dim,
        observability=Observability(audit_fraction=1.0, audit_k=K),
    )
    attributes = [{"category": i % 8} for i in range(len(workload.train))]
    db.insert_many(workload.train, attributes)
    db.create_index("ivf", "ivf_flat", nlist=32, nprobe=4, seed=0)
    q = workload.queries[0]
    pred = Field("category") == 1

    result = benchmark(lambda: db.search(q, k=K, predicate=pred, plan=PLAN))
    assert result.stats.elapsed_seconds > 0
