"""E16 (§2.2 / §2.6(4) extensions): RQ, anisotropic VQ, secure k-NN.

Three more ablations of surveyed-but-uncommon techniques:

* **Residual quantization** [89] vs PQ at equal code budget:
  reconstruction error and recall (RQ quantizes the full space level by
  level instead of splitting dimensions).
* **Anisotropic (ScaNN) quantization** [46] vs plain k-means codebooks
  for MIPS recall at equal codebook size, across eta.
* **Secure k-NN via DCPE** (§2.6(4)): recall and overhead vs plaintext
  search across noise radii — the privacy/accuracy dial.
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.quantization import (
    AnisotropicQuantizer,
    ProductQuantizer,
    ResidualQuantizer,
)
from repro.security import DcpeKey, SecureKnnClient, SecureSearchServer


@pytest.fixture(scope="module")
def e16_rq_table(workload, truth10):
    data = workload.train.astype(np.float64)
    rows = []
    for label, quantizer in (
        ("pq(m=4,ks=64)", ProductQuantizer(m=4, ks=64, seed=0)),
        ("rq(levels=4,ks=64)", ResidualQuantizer(levels=4, ks=64, seed=0)),
        ("pq(m=8,ks=64)", ProductQuantizer(m=8, ks=64, seed=0)),
        ("rq(levels=8,ks=64)", ResidualQuantizer(levels=8, ks=64, seed=0)),
    ):
        quantizer.train(data)
        codes = quantizer.encode(data)
        recalls = []
        for i, q in enumerate(workload.queries):
            dists = quantizer.adc_distances(q.astype(np.float64), codes)
            top = np.argsort(dists)[:10]
            recalls.append(recall_of(
                [type("H", (), {"id": int(t)})() for t in top], truth10[i]
            ))
        rows.append(
            {
                "quantizer": label,
                "bytes/vec": quantizer.code_size_bytes(),
                "mse": round(quantizer.quantization_error(data[:800]), 3),
                "recall@10(adc)": round(float(np.mean(recalls)), 3),
            }
        )
    emit("e16_rq", format_table(
        rows, "E16a: residual vs product quantization at equal code budget"
    ))
    return rows


@pytest.fixture(scope="module")
def e16_aniso_table(workload):
    data = workload.train.astype(np.float64)
    rng = np.random.default_rng(1)
    queries = rng.standard_normal((25, data.shape[1]))
    true_top = np.argsort(-(queries @ data.T), axis=1)[:, :10]
    rows = []
    for eta, iterations in ((1.0, 0), (2.0, 6), (4.0, 6), (8.0, 6)):
        aq = AnisotropicQuantizer(
            num_centroids=128, eta=eta, iterations=iterations, seed=0
        ).train(data)
        codes = aq.encode(data)
        hits = 0
        for qi, q in enumerate(queries):
            approx = aq.mips_scores(q, codes)
            got = set(np.argsort(-approx)[:10].tolist())
            hits += len(got & set(true_top[qi].tolist()))
        rows.append(
            {
                "eta": eta,
                "trained": iterations > 0,
                "mips_recall@10": round(hits / (10 * len(queries)), 3),
                "aniso_loss": round(aq.score_aware_error(data[:800]), 3),
            }
        )
    emit("e16_aniso", format_table(
        rows, "E16b: anisotropic (ScaNN) vs k-means codebooks for MIPS [46]"
    ))
    return rows


@pytest.fixture(scope="module")
def e16_secure_table(workload, truth10):
    dim = workload.dim
    rows = []
    for noise in (0.0, 0.1, 0.5, 2.0):
        key = DcpeKey.generate(dim, scale=3.0, noise_radius=noise, seed=2)
        client = SecureKnnClient(key, seed=3)
        server = SecureSearchServer("flat").load(client.encrypt(workload.train))
        recalls = []
        for i, q in enumerate(workload.queries):
            hits = server.search(client.encrypt(q)[0], 10)
            recalls.append(recall_of(hits, truth10[i]))
        rows.append(
            {
                "noise_radius": noise,
                "recall@10": round(float(np.mean(recalls)), 3),
                "comparison_slack": round(client.comparison_slack(), 3),
            }
        )
    emit("e16_secure", format_table(
        rows, "E16c: DCPE secure k-NN — privacy noise vs recall (§2.6(4))"
    ))
    return rows


def test_e16_rq_beats_pq_at_same_bytes(e16_rq_table):
    by_name = {r["quantizer"]: r for r in e16_rq_table}
    # Same 4-byte budget: RQ's full-space cascade should match or beat
    # PQ's dimension split on clustered data.
    assert by_name["rq(levels=4,ks=64)"]["mse"] <= by_name["pq(m=4,ks=64)"][
        "mse"
    ] * 1.2


def test_e16_rq_more_levels_better(e16_rq_table):
    by_name = {r["quantizer"]: r for r in e16_rq_table}
    assert by_name["rq(levels=8,ks=64)"]["mse"] < by_name["rq(levels=4,ks=64)"]["mse"]


def test_e16_anisotropic_helps_mips(e16_aniso_table):
    baseline = e16_aniso_table[0]["mips_recall@10"]  # eta=1, untrained
    best = max(r["mips_recall@10"] for r in e16_aniso_table[1:])
    assert best >= baseline - 0.02


def test_e16_secure_noiseless_is_exact(e16_secure_table):
    assert e16_secure_table[0]["recall@10"] == pytest.approx(1.0)


def test_e16_secure_noise_recall_tradeoff(e16_secure_table):
    recalls = [r["recall@10"] for r in e16_secure_table]
    assert all(b <= a + 0.01 for a, b in zip(recalls, recalls[1:]))


def test_bench_e16_encrypt(benchmark, workload, e16_rq_table, e16_aniso_table,
                           e16_secure_table):
    key = DcpeKey.generate(workload.dim, seed=2)
    client = SecureKnnClient(key, seed=3)
    benchmark(lambda: client.encrypt(workload.queries))


def test_bench_e16_rq_adc(benchmark, workload):
    rq = ResidualQuantizer(levels=4, ks=64, seed=0).train(
        workload.train.astype(np.float64)
    )
    codes = rq.encode(workload.train)
    norms = rq.reconstruction_norms_sq(codes)
    q = workload.queries[0].astype(np.float64)
    benchmark(lambda: rq.adc_distances(q, codes, norms_sq=norms))
