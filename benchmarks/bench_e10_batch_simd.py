"""E10 (§2.3 hardware acceleration): blocked ADC and batched execution.

Regenerates the two acceleration claims:

* Quick-ADC-style register-blocked, 8-bit-quantized table scans beat
  the scalar gather baseline [26, 27] — in our substrate, the blocked
  contiguous numpy gather vs the per-row Python loop — at negligible
  ranking loss;
* batched queries amortize memory traffic: one (b, n) kernel beats b
  independent scans [50, 79].
"""

import time

import numpy as np
import pytest

from _util import emit
from repro.bench.reporting import format_table
from repro.core.operators import batched_table_scan
from repro.quantization import (
    ProductQuantizer,
    blocked_adc_scan,
    naive_adc_scan,
    transpose_codes,
)
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def adc_setup(workload):
    pq = ProductQuantizer(m=8, ks=256, seed=0).train(
        workload.train.astype(np.float64)
    )
    codes = pq.encode(workload.train)
    return pq, codes, transpose_codes(codes)


@pytest.fixture(scope="module")
def e10_adc_table(adc_setup, workload):
    pq, codes, codes_t = adc_setup
    table = pq.adc_table(workload.queries[0].astype(np.float64))
    rows = []

    def timed(fn, repeats=5):
        start = time.perf_counter()
        for _ in range(repeats):
            out = fn()
        return (time.perf_counter() - start) / repeats, out

    t_naive, d_naive = timed(lambda: naive_adc_scan(table, codes), repeats=2)
    t_exact, d_exact = timed(lambda: blocked_adc_scan(table, codes_t, exact=True))
    t_quant, d_quant = timed(lambda: blocked_adc_scan(table, codes_t, exact=False))

    top_naive = set(np.argsort(d_naive)[:10])
    for name, t, d in (
        ("naive scalar gather", t_naive, d_naive),
        ("blocked (exact table)", t_exact, d_exact),
        ("blocked + uint8 table", t_quant, d_quant),
    ):
        top = set(np.argsort(d)[:10])
        rows.append(
            {
                "scan": name,
                "time_ms": round(t * 1e3, 3),
                "speedup": round(t_naive / t, 1),
                "top10_overlap": round(len(top & top_naive) / 10, 2),
            }
        )
    emit("e10_adc", format_table(
        rows, "E10a: ADC scan layouts (Quick-ADC analogue [26, 27])"
    ))
    return rows


@pytest.fixture(scope="module")
def e10_batch_table(workload):
    score = EuclideanScore()
    ids = np.arange(len(workload.train), dtype=np.int64)
    rows = []
    for batch_size in (1, 8, 32):
        queries = np.repeat(workload.queries, 2, axis=0)[:batch_size]
        start = time.perf_counter()
        for q in queries:
            batched_table_scan(q[None, :], workload.train, ids, score, 10)
        independent = time.perf_counter() - start
        start = time.perf_counter()
        batched_table_scan(queries, workload.train, ids, score, 10)
        batched = time.perf_counter() - start
        rows.append(
            {
                "batch": batch_size,
                "independent_ms": round(independent * 1e3, 2),
                "batched_ms": round(batched * 1e3, 2),
                "speedup": round(independent / batched, 2),
            }
        )
    emit("e10_batch", format_table(
        rows, "E10b: batched vs independent brute-force execution"
    ))
    return rows


@pytest.fixture(scope="module")
def e10_shared_traversal_table(workload):
    """Shared-route batched graph search vs independent searches [50, 79]."""
    from repro.core.batched import batched_graph_search
    from repro.core.types import SearchStats
    from repro.index import HnswIndex

    index = HnswIndex(m=12, ef_construction=64, seed=0).build(workload.train)
    rng = np.random.default_rng(2)
    rows = []
    for spread, label in ((0.05, "near-duplicate batch"),
                          (1.0, "diverse batch")):
        base = workload.queries[:4]
        batch = np.vstack([
            b + spread * rng.standard_normal((8, workload.dim)) for b in base
        ]).astype(np.float32)
        shared = SearchStats()
        batched_graph_search(index, batch, 10, ef_search=48, stats=shared)
        independent = SearchStats()
        for q in batch:
            index.search(q, 10, ef_search=48, stats=independent)
        rows.append(
            {
                "batch": label,
                "shared_dists": shared.distance_computations,
                "independent_dists": independent.distance_computations,
                "savings": round(
                    independent.distance_computations
                    / max(1, shared.distance_computations), 2,
                ),
            }
        )
    emit("e10_shared", format_table(
        rows, "E10c: shared-route batched graph search"
    ))
    return rows


def test_e10_shared_traversal_helps_similar_batches(e10_shared_traversal_table):
    near = e10_shared_traversal_table[0]
    assert near["savings"] >= 0.9  # never much worse; usually better
    # Sharing helps near-duplicates at least as much as diverse batches.
    assert near["savings"] >= e10_shared_traversal_table[1]["savings"] - 0.1


def test_e10_blocked_beats_naive(e10_adc_table):
    blocked = [r for r in e10_adc_table if r["scan"].startswith("blocked")]
    assert all(r["speedup"] > 2.0 for r in blocked)


def test_e10_quantized_table_preserves_ranking(e10_adc_table):
    quant = next(r for r in e10_adc_table if "uint8" in r["scan"])
    assert quant["top10_overlap"] >= 0.8


def test_e10_batching_amortizes(e10_batch_table):
    by_batch = {r["batch"]: r["speedup"] for r in e10_batch_table}
    assert by_batch[32] > by_batch[1] * 0.9
    assert by_batch[32] > 1.2


def test_bench_e10_blocked_scan(benchmark, adc_setup, workload, e10_adc_table,
                                e10_batch_table, e10_shared_traversal_table):
    pq, codes, codes_t = adc_setup
    table = pq.adc_table(workload.queries[0].astype(np.float64))
    benchmark(lambda: blocked_adc_scan(table, codes_t, exact=False))


def test_bench_e10_naive_scan(benchmark, adc_setup, workload):
    pq, codes, codes_t = adc_setup
    table = pq.adc_table(workload.queries[0].astype(np.float64))
    benchmark.pedantic(lambda: naive_adc_scan(table, codes), rounds=3,
                       iterations=1)


def test_bench_e10_batched_kernel(benchmark, workload):
    score = EuclideanScore()
    ids = np.arange(len(workload.train), dtype=np.int64)
    benchmark(
        lambda: batched_table_scan(
            workload.queries, workload.train, ids, score, 10
        )
    )
