"""E3 (§2.2 table-based): LSH L/K sweep, bucket-size tradeoff, L2H.

Regenerates the table-index claims:

* LSH recall rises with L (more tables) and falls with K (longer
  concatenations -> smaller buckets), with candidate counts moving the
  opposite way — the bucket-size tradeoff.
* IVF recall/cost vs nprobe.
* Learned hashes (ITQ/spectral) beat random LSH at matched candidate
  budgets on clustered data; but degrade on out-of-distribution
  inserts (the L2H update caveat).
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.core.types import SearchStats
from repro.index import ItqHashIndex, IvfFlatIndex, LshIndex, SpectralHashIndex


def _mean_recall(index, queries, truth, k=10, **params):
    stats = SearchStats()
    recalls = [
        recall_of(index.search(q, k, stats=stats, **params), truth[i])
        for i, q in enumerate(queries)
    ]
    return float(np.mean(recalls)), stats


@pytest.fixture(scope="module")
def e3_lsh_table(workload, truth10):
    rows = []
    for L in (2, 8, 24):
        for K in (4, 8, 14):
            index = LshIndex(num_tables=L, hashes_per_table=K, seed=0)
            index.build(workload.train)
            recall, stats = _mean_recall(index, workload.queries, truth10)
            rows.append(
                {
                    "L": L,
                    "K": K,
                    "recall@10": round(recall, 3),
                    "cands/query": round(
                        stats.candidates_examined / len(workload.queries), 1
                    ),
                    "mean_bucket": round(float(np.mean(index.bucket_sizes())), 1),
                }
            )
    emit("e3_lsh", format_table(rows, "E3a: LSH recall/cost vs L and K"))
    return rows


@pytest.fixture(scope="module")
def e3_ivf_table(workload, truth10):
    index = IvfFlatIndex(nlist=48, seed=0).build(workload.train)
    rows = []
    for nprobe in (1, 2, 4, 8, 16, 48):
        recall, stats = _mean_recall(
            index, workload.queries, truth10, nprobe=nprobe
        )
        rows.append(
            {
                "nprobe": nprobe,
                "recall@10": round(recall, 3),
                "dists/query": round(
                    stats.distance_computations / len(workload.queries), 1
                ),
            }
        )
    emit("e3_ivf", format_table(rows, "E3b: IVF-Flat recall vs nprobe"))
    return rows


@pytest.fixture(scope="module")
def e3_multiprobe_table(workload, truth10):
    """Multi-probe LSH: recall recovered without adding tables."""
    index = LshIndex(num_tables=6, hashes_per_table=10, seed=0)
    index.build(workload.train)
    rows = []
    for probes in (1, 2, 4, 8):
        recall, stats = _mean_recall(
            index, workload.queries, truth10, num_probes=probes
        )
        rows.append(
            {
                "num_probes": probes,
                "recall@10": round(recall, 3),
                "cands/query": round(
                    stats.candidates_examined / len(workload.queries), 1
                ),
            }
        )
    emit("e3_multiprobe", format_table(
        rows, "E3d: multi-probe LSH (L=6, K=10 fixed)"
    ))
    return rows


def test_e3_multiprobe_recall_monotonic(e3_multiprobe_table):
    recalls = [r["recall@10"] for r in e3_multiprobe_table]
    assert all(b >= a - 0.01 for a, b in zip(recalls, recalls[1:]))
    assert recalls[-1] > recalls[0]


@pytest.fixture(scope="module")
def e3_l2h_table(workload, truth10):
    rows = []
    budget = 200
    for name, index in (
        ("lsh(L=8,K=8)", LshIndex(num_tables=8, hashes_per_table=8, seed=0)),
        ("spectral_hash(32b)", SpectralHashIndex(nbits=32, rerank=budget)),
        ("itq_hash(32b)", ItqHashIndex(nbits=32, rerank=budget)),
    ):
        index.build(workload.train)
        recall, _ = _mean_recall(index, workload.queries, truth10)
        rows.append({"index": name, "recall@10": round(recall, 3)})
    emit("e3_l2h", format_table(
        rows, f"E3c: learned vs random hashing (rerank budget {budget})"
    ))
    return rows


def test_e3_lsh_recall_rises_with_l(e3_lsh_table):
    by_k = {}
    for row in e3_lsh_table:
        by_k.setdefault(row["K"], []).append((row["L"], row["recall@10"]))
    for k, series in by_k.items():
        series.sort()
        assert series[-1][1] >= series[0][1] - 0.02, f"K={k}"


def test_e3_lsh_buckets_shrink_with_k(e3_lsh_table):
    by_l = {}
    for row in e3_lsh_table:
        by_l.setdefault(row["L"], []).append((row["K"], row["mean_bucket"]))
    for series in by_l.values():
        series.sort()
        assert series[-1][1] <= series[0][1]


def test_e3_ivf_recall_monotonic_in_nprobe(e3_ivf_table):
    recalls = [r["recall@10"] for r in e3_ivf_table]
    assert all(b >= a - 0.01 for a, b in zip(recalls, recalls[1:]))
    assert recalls[-1] >= 0.999  # full probe = exact


def test_e3_learned_beats_random_hashing(e3_l2h_table):
    by_name = {r["index"].split("(")[0]: r["recall@10"] for r in e3_l2h_table}
    assert by_name["itq_hash"] >= by_name["lsh"]


def test_bench_e3_lsh_search(benchmark, workload, e3_lsh_table, e3_ivf_table,
                             e3_l2h_table, e3_multiprobe_table):
    index = LshIndex(num_tables=8, hashes_per_table=8, seed=0).build(workload.train)
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10))


def test_bench_e3_ivf_search(benchmark, workload):
    index = IvfFlatIndex(nlist=48, seed=0).build(workload.train)
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10, nprobe=8))
