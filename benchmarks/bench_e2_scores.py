"""E2 (§2.1): score behaviour and the curse of dimensionality.

Regenerates two tables the tutorial argues from:

* different scores produce different top-k results on the same data
  (pairwise result-set overlap between L2 / cosine / IP / L1);
* relative contrast collapses toward 1 as dimensionality grows on
  uniform data [30], while clustered data retains contrast — the
  reason score selection matters.
"""

import numpy as np
import pytest

from _util import emit
from repro.bench.datasets import gaussian_mixture, uniform_hypercube
from repro.bench.reporting import format_table
from repro.index.flat import FlatIndex
from repro.scores import get_score, relative_contrast

SCORES = ["l2", "cosine", "ip", "l1"]


@pytest.fixture(scope="module")
def e2_overlap_table(workload):
    indexes = {
        name: FlatIndex(get_score(name)).build(workload.train) for name in SCORES
    }
    results = {
        name: [set(h.id for h in idx.search(q, 10)) for q in workload.queries]
        for name, idx in indexes.items()
    }
    rows = []
    for a in SCORES:
        row = {"score": a}
        for b in SCORES:
            overlaps = [
                len(ra & rb) / 10 for ra, rb in zip(results[a], results[b])
            ]
            row[b] = round(float(np.mean(overlaps)), 3)
        rows.append(row)
    emit("e2_score_overlap", format_table(
        rows, "E2a: mean top-10 overlap between similarity scores"
    ))
    return rows


@pytest.fixture(scope="module")
def e2_contrast_table():
    rows = []
    for dim in (2, 8, 32, 128, 512):
        uniform = uniform_hypercube(n=1000, dim=dim, seed=0).train
        clustered = gaussian_mixture(n=1000, dim=dim, cluster_std=0.2, seed=0).train
        rows.append(
            {
                "dim": dim,
                "uniform_contrast": round(relative_contrast(uniform), 3),
                "clustered_contrast": round(relative_contrast(clustered), 3),
            }
        )
    emit("e2_contrast", format_table(
        rows, "E2b: relative contrast (Dmax/Dmin) vs dimension [30]"
    ))
    return rows


def test_e2_scores_disagree(e2_overlap_table):
    """Different scores must give different result sets (off-diagonal
    overlap < 1), the §2.1 motivation for score selection."""
    for row in e2_overlap_table:
        for other in ("l2", "cosine", "ip", "l1"):
            if other != row["score"]:
                assert row[other] < 1.0


def test_e2_contrast_collapses_with_dim(e2_contrast_table):
    uniform = [r["uniform_contrast"] for r in e2_contrast_table]
    assert uniform[0] > uniform[-1]
    assert uniform[-1] < 2.0  # concentrated
    # Clustered data keeps contrast better at high d.
    assert e2_contrast_table[-1]["clustered_contrast"] > uniform[-1]


def test_bench_e2_similarity_projection(benchmark, workload, e2_overlap_table,
                                        e2_contrast_table):
    score = get_score("l2")
    q = workload.queries[0]
    benchmark(lambda: score.distances(q, workload.train))


@pytest.mark.parametrize("name", SCORES)
def test_bench_e2_score_kernels(benchmark, workload, name):
    score = get_score(name)
    q = workload.queries[0]
    benchmark(lambda: score.distances(q, workload.train))
