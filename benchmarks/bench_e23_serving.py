"""E23 (serving front door): tenant isolation under burst overload.

The claim this experiment demonstrates numerically: with admission
control (priority dispatch, per-tenant in-flight caps, token buckets,
bounded queues), a low-priority tenant flooding the front door **keeps
its overload to itself** — the well-behaved interactive tenant's tail
latency stays where it was when it had the system alone.

Three runs over the same database, same seeds, same service model:

1. **alone** — the interactive tenant's trace by itself: the baseline
   tail latency the tenant "paid for".
2. **isolated** — the same interactive trace merged with an analytics
   tenant that bursts to ~6x the backend's capacity, through a front
   door where analytics has low priority (dispatched last) and a tight
   in-flight cap.  The flood queues, sheds, and gets throttled; the
   interactive p99 must stay within a small multiple of *alone*.
3. **unprotected** — the identical merged trace, but analytics gets the
   same priority and caps as everyone else (admission control in name
   only).  The interactive p99 collapses into the flood's queue — the
   before/after pair that makes run 2's number meaningful.

Everything is on the simulated clock (service time is a deterministic
function of the work counters each batch incurs), so the latency table
below is reproducible bit-for-bit.

Also demonstrated along the way: request coalescing under backlog
(mean batch size > 1 during the burst), per-tenant exact-result caching
(the interactive tenant's hot queries repeat), and the per-tenant p99
SLO burning through its budget for the abuser but not the victim.

Artifacts: ``results/e23_serving.txt`` (per-run latency table +
disposition counts; CI uploads it and sanity-checks the p999 ceiling).
"""

import numpy as np
import pytest

from _util import RESULTS_DIR, emit
from repro.bench.reporting import format_table
from repro.core.database import VectorDatabase
from repro.serving import (
    Burst,
    DiurnalSchedule,
    ServiceModel,
    ServingFrontDoor,
    TenantSpec,
    TrafficGenerator,
)

K = 10
DIM = 32
#: Interactive tenant's p999 must stay under this (simulated seconds)
#: in the isolated run — the CI sanity ceiling.
P999_CEILING = 0.25
#: Backend: 2 workers, ~2ms dispatch -> ~1k solo batches/second.
SERVICE = ServiceModel(base_seconds=2e-3)


def interactive_spec(priority=1, max_inflight=8):
    return TenantSpec(
        "interactive", qps=200.0, burst=20.0, max_inflight=max_inflight,
        max_queue=64, priority=priority, slo_p99_seconds=0.05,
        slo_budget=0.01,
    )


def analytics_spec(priority, max_inflight):
    return TenantSpec(
        "analytics", qps=5000.0, burst=500.0, max_inflight=max_inflight,
        max_queue=400, priority=priority, cache_capacity=16,
        slo_p99_seconds=0.05, slo_budget=0.01,
    )


def make_traces():
    """One steady interactive trace + one bursting analytics flood."""
    steady = TrafficGenerator(
        ["interactive"], DIM, rate=40.0, seed=11, query_pool=16,
        fresh_fraction=0.5, k=K,
    ).generate(8.0)
    flood = TrafficGenerator(
        ["analytics"], DIM, rate=800.0, seed=23, query_pool=64,
        fresh_fraction=0.5, k=K,
        schedule=DiurnalSchedule(
            period_seconds=8.0, amplitude=0.0,
            bursts=(Burst(2.0, 3.0, 8.0),),
        ),
    ).generate(8.0)
    return steady, flood


@pytest.fixture(scope="module")
def e23_scenario():
    rng = np.random.default_rng(0)
    db = VectorDatabase(dim=DIM)
    db.insert_many(rng.standard_normal((4000, DIM)).astype(np.float32))
    db.create_index("hnsw", "hnsw", m=8, ef_construction=48, seed=0)
    steady, flood = make_traces()
    merged = sorted(steady + flood, key=lambda r: r.arrival_seconds)

    runs = {}
    # 1. The interactive tenant alone: its entitled tail latency.
    fd = ServingFrontDoor(
        db, [interactive_spec()], workers=2, coalesce_max=8,
        service_model=SERVICE,
    )
    fd.run(steady)
    runs["alone"] = fd.report()

    # 2. Flood behind real admission control: low priority, tight cap.
    fd = ServingFrontDoor(
        db, [interactive_spec(), analytics_spec(priority=5, max_inflight=2)],
        workers=2, coalesce_max=8, service_model=SERVICE,
    )
    fd.run(merged)
    runs["isolated"] = fd.report()
    runs["isolated_frontdoor"] = fd

    # 3. Same flood, no isolation: equal priority, generous cap.
    fd = ServingFrontDoor(
        db, [interactive_spec(), analytics_spec(priority=1, max_inflight=64)],
        workers=2, coalesce_max=8, service_model=SERVICE,
    )
    fd.run(merged)
    runs["unprotected"] = fd.report()
    return runs


def _row(run_name, report, tenant):
    t = report.tenants[tenant]
    lat = t["latency_seconds"]
    return {
        "run": run_name,
        "tenant": tenant,
        "submitted": t["submitted"],
        "ok": t["executed"],
        "cached": t["cache_hits"],
        "rejected": sum(t["rejected"].values()),
        "shed": t["shed"],
        "p50_ms": f"{lat['p50'] * 1e3:.2f}",
        "p99_ms": f"{lat['p99'] * 1e3:.2f}",
        "p999_ms": f"{lat['p99.9'] * 1e3:.2f}",
    }


def test_e23_isolation_holds_the_interactive_tail(e23_scenario):
    """The headline number: the flood cannot buy the victim's p99."""
    alone = e23_scenario["alone"].tenants["interactive"]["latency_seconds"]
    isolated = e23_scenario["isolated"].tenants["interactive"][
        "latency_seconds"
    ]
    abuser = e23_scenario["isolated"].tenants["analytics"]["latency_seconds"]
    # The protected tenant's p99 stays within 3x of having the system
    # to itself, while the abuser's p99 is at least 10x worse than the
    # victim's — the overload stayed where it was created.
    assert isolated["p99"] <= 3.0 * alone["p99"]
    assert abuser["p99"] >= 10.0 * isolated["p99"]


def test_e23_unprotected_contrast(e23_scenario):
    """Without priorities/caps the same flood destroys the same tenant."""
    isolated = e23_scenario["isolated"].tenants["interactive"][
        "latency_seconds"
    ]
    unprotected = e23_scenario["unprotected"].tenants["interactive"][
        "latency_seconds"
    ]
    assert unprotected["p99"] >= 5.0 * isolated["p99"]


def test_e23_p999_sanity_ceiling(e23_scenario):
    """CI gate: the protected tenant's extreme tail stays bounded."""
    isolated = e23_scenario["isolated"].tenants["interactive"][
        "latency_seconds"
    ]
    p999 = isolated["p99.9"]
    assert p999 == p999  # sketch has data (not NaN)
    assert p999 <= P999_CEILING


def test_e23_overload_is_absorbed_by_backpressure(e23_scenario):
    """The flood is throttled/queued/shed, not silently served."""
    analytics = e23_scenario["isolated"].tenants["analytics"]
    refused = sum(analytics["rejected"].values()) + analytics["shed"]
    assert refused > 0.25 * analytics["submitted"]
    # Backpressure carried actionable retry-after signals.
    fd = e23_scenario["isolated_frontdoor"]
    rejected = [r for r in fd.responses if r.status == "rejected"]
    assert rejected and all(r.retry_after_seconds >= 0 for r in rejected)


def test_e23_coalescing_kicks_in_under_backlog(e23_scenario):
    totals = e23_scenario["isolated"].totals
    assert totals["mean_batch_size"] > 1.1
    assert totals["coalesced_fraction"] > 0.1


def test_e23_caches_absorb_hot_queries(e23_scenario):
    interactive = e23_scenario["isolated"].tenants["interactive"]
    assert interactive["cache_hits"] > 0
    assert interactive["cache"]["hit_ratio"] > 0.05


def test_e23_slo_burns_for_abuser_not_victim(e23_scenario):
    statuses = {s["name"]: s for s in e23_scenario["isolated"].slos}
    victim = statuses["serving:interactive:latency"]
    abuser = statuses["serving:analytics:latency"]
    assert victim["good_fraction"] >= abuser["good_fraction"]
    # The burn-rate alert fired for the abuser during the flood (it may
    # have cleared once the burst drained) and never for the victim.
    fd = e23_scenario["isolated_frontdoor"]
    fired = {a.slo for a in fd.slo.alerts}
    assert "serving:analytics:latency" in fired
    assert "serving:interactive:latency" not in fired


def test_e23_artifacts(e23_scenario):
    rows = []
    rows.append(_row("alone", e23_scenario["alone"], "interactive"))
    for tenant in ("interactive", "analytics"):
        rows.append(_row("isolated", e23_scenario["isolated"], tenant))
    for tenant in ("interactive", "analytics"):
        rows.append(_row("unprotected", e23_scenario["unprotected"], tenant))
    table = format_table(
        rows, title="E23: per-tenant latency under a low-priority flood"
    )
    totals = e23_scenario["isolated"].totals
    lines = [
        table,
        "",
        f"isolated run totals: batches={totals['batches']}"
        f" mean_batch_size={totals['mean_batch_size']:.2f}"
        f" coalesced_fraction={totals['coalesced_fraction']:.2f}"
        f" modes={totals['modes']}",
        f"p999 ceiling (interactive, isolated): {P999_CEILING * 1e3:.0f}ms",
    ]
    emit("e23_serving", "\n".join(lines))
    assert (RESULTS_DIR / "e23_serving.txt").exists()


def test_e23_frontdoor_throughput(benchmark):
    """pytest-benchmark timing: wall cost of serving one burst second
    (the event loop + coalesced execution, everything else simulated)."""
    rng = np.random.default_rng(1)
    db = VectorDatabase(dim=DIM)
    db.insert_many(rng.standard_normal((2000, DIM)).astype(np.float32))
    db.create_index("hnsw", "hnsw", m=8, ef_construction=48, seed=0)
    trace = TrafficGenerator(
        ["interactive"], DIM, rate=300.0, seed=5, k=K
    ).generate(1.0)

    def serve():
        fd = ServingFrontDoor(
            db, [interactive_spec()], workers=2, coalesce_max=8,
            service_model=SERVICE,
        )
        return len(fd.run(trace))

    answered = benchmark(serve)
    assert answered == len(trace)
