"""E12 (§2.3 out-of-place updates): LSM buffering vs in-place rebuilds.

Regenerates the update-handling claim: buffering writes out-of-place
(LSM memtable + bulk merge) sustains orders-of-magnitude higher write
throughput than rebuilding the graph per insert, while search recall
stays high because queries merge the buffer exactly.
"""

import time

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.datasets import gaussian_mixture
from repro.bench.metrics import exact_ground_truth
from repro.bench.reporting import format_table
from repro.core.updates import BufferedVectorIndex
from repro.index import HnswIndex
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def update_workload():
    return gaussian_mixture(n=2500, dim=32, num_queries=15, seed=13)


def _fresh_index():
    return HnswIndex(m=12, ef_construction=48, seed=0)


@pytest.fixture(scope="module")
def e12_table(update_workload):
    ds = update_workload
    base, updates = ds.train[:1500], ds.train[1500:]
    rows = []

    # Policy 1: out-of-place buffered, at two merge intervals — a larger
    # interval amortizes the rebuild over more writes (§2.3's "apply in
    # bulk at a more appropriate time").
    buffered_rates = {}
    buffered_by_interval = {}
    for interval in (500, 1000):
        buffered = BufferedVectorIndex(
            _fresh_index, dim=32, merge_threshold=interval
        )
        for v in base:
            buffered.insert(v)
        buffered.merge()
        start = time.perf_counter()
        for v in updates:
            buffered.insert(v)
        buffered_rates[interval] = len(updates) / (time.perf_counter() - start)
        buffered_by_interval[interval] = buffered
    buffered = buffered_by_interval[500]
    buffered_write = buffered_rates[500]

    # Policy 2: periodic full rebuild (every 100 inserts), no buffer search.
    rebuild_index = _fresh_index().build(base)
    stored = [base]
    start = time.perf_counter()
    pending = []
    for i, v in enumerate(updates):
        pending.append(v)
        if len(pending) == 100:
            stored.append(np.vstack(pending))
            rebuild_index = _fresh_index().build(np.vstack(stored))
            pending = []
    if pending:
        stored.append(np.vstack(pending))
        rebuild_index = _fresh_index().build(np.vstack(stored))
    rebuild_write = len(updates) / (time.perf_counter() - start)

    # Search quality after all updates (ground truth over the full set).
    truth = exact_ground_truth(ds.train, ds.queries, 10, EuclideanScore())
    buffered_recall = float(np.mean([
        recall_of(buffered.search(q, 10), truth[i])
        for i, q in enumerate(ds.queries)
    ]))
    rebuilt_recall = float(np.mean([
        recall_of(rebuild_index.search(q, 10), truth[i])
        for i, q in enumerate(ds.queries)
    ]))

    rows.append(
        {
            "policy": "out-of-place (LSM buffer, merge@500)",
            "writes/s": round(buffered_write, 0),
            "recall@10_after": round(buffered_recall, 3),
            "merges": buffered.merges,
        }
    )
    rows.append(
        {
            "policy": "out-of-place (LSM buffer, merge@1000)",
            "writes/s": round(buffered_rates[1000], 0),
            "recall@10_after": "(same path)",
            "merges": buffered_by_interval[1000].merges,
        }
    )
    rows.append(
        {
            "policy": "in-place (full rebuild every 100)",
            "writes/s": round(rebuild_write, 0),
            "recall@10_after": round(rebuilt_recall, 3),
            "merges": "-",
        }
    )
    emit("e12_updates", format_table(
        rows, "E12: write throughput, out-of-place vs rebuild (1000 inserts)"
    ))
    return rows


def test_e12_buffered_writes_much_faster(e12_table):
    rebuild = e12_table[-1]["writes/s"]
    assert e12_table[0]["writes/s"] > 3 * rebuild  # merge@500
    assert e12_table[1]["writes/s"] > 6 * rebuild  # merge@1000 amortizes more


def test_e12_throughput_grows_with_merge_interval(e12_table):
    assert e12_table[1]["writes/s"] >= e12_table[0]["writes/s"]


def test_e12_recall_not_sacrificed(e12_table):
    assert e12_table[0]["recall@10_after"] >= e12_table[-1]["recall@10_after"] - 0.05
    assert e12_table[0]["recall@10_after"] >= 0.85


def test_bench_e12_buffered_insert(benchmark, update_workload, e12_table):
    buffered = BufferedVectorIndex(_fresh_index, dim=32, merge_threshold=None)
    for v in update_workload.train[:500]:
        buffered.insert(v)
    buffered.merge()
    vectors = iter(np.tile(update_workload.train[500:], (50, 1)))
    benchmark(lambda: buffered.insert(next(vectors)))


def test_bench_e12_buffered_search(benchmark, update_workload):
    buffered = BufferedVectorIndex(_fresh_index, dim=32, merge_threshold=None)
    for v in update_workload.train[:1000]:
        buffered.insert(v)
    buffered.merge()
    for v in update_workload.train[1000:1200]:
        buffered.insert(v)  # leave a live buffer
    q = update_workload.queries[0]
    benchmark(lambda: buffered.search(q, 10))
