"""E7 (§2.2 disk-resident): DiskANN and SPANN I/O economics.

Regenerates:

* I/Os (page reads) per query at matched recall for DiskANN, SPANN,
  and the naive baseline of IVF posting lists on disk (SPANN with
  closure disabled) — graph beams read far fewer pages than posting
  scans;
* SPANN closure-assignment ablation: replication buys recall at fixed
  nprobe at a bounded storage overhead [32];
* RAM footprint: both disk indexes keep a small fraction of the raw
  vectors resident (DiskANN: PQ codes; SPANN: centroids).
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.core.types import SearchStats
from repro.index import DiskAnnIndex, SpannIndex


@pytest.fixture(scope="module")
def disk_indexes(workload):
    return {
        "diskann": DiskAnnIndex(
            max_degree=24, build_beam_width=64, pq_m=16, pq_ks=64,
            beam_width=32, seed=0,
        ).build(workload.train),
        "spann(closure)": SpannIndex(
            num_postings=64, closure_epsilon=0.25, max_replicas=3, nprobe=8,
            seed=0,
        ).build(workload.train),
        "spann(no closure)": SpannIndex(
            num_postings=64, closure_epsilon=0.0, max_replicas=1, nprobe=8,
            seed=0,
        ).build(workload.train),
    }


@pytest.fixture(scope="module")
def e7_io_table(disk_indexes, workload, truth10):
    raw = workload.train.nbytes
    rows = []
    for name, index in disk_indexes.items():
        stats = SearchStats()
        recalls = [
            recall_of(index.search(q, 10, stats=stats), truth10[i])
            for i, q in enumerate(workload.queries)
        ]
        rows.append(
            {
                "index": name,
                "recall@10": round(float(np.mean(recalls)), 3),
                "pages/query": round(stats.page_reads / len(workload.queries), 1),
                "ram_frac_of_raw": round(index.memory_bytes() / raw, 3),
            }
        )
    emit("e7_io", format_table(
        rows, "E7a: disk-resident index I/O per query at default settings"
    ))
    return rows


@pytest.fixture(scope="module")
def e7_closure_table(workload, truth10):
    rows = []
    for eps, replicas in ((0.0, 1), (0.15, 2), (0.3, 3), (0.5, 4)):
        index = SpannIndex(
            num_postings=64, closure_epsilon=eps, max_replicas=replicas, seed=0
        ).build(workload.train)
        stats = SearchStats()
        recalls = [
            recall_of(index.search(q, 10, nprobe=4, stats=stats), truth10[i])
            for i, q in enumerate(workload.queries)
        ]
        rows.append(
            {
                "closure_eps": eps,
                "max_replicas": replicas,
                "replication": round(index.replication_factor, 2),
                "recall@10(nprobe=4)": round(float(np.mean(recalls)), 3),
                "pages/query": round(stats.page_reads / len(workload.queries), 1),
            }
        )
    emit("e7_closure", format_table(
        rows, "E7b: SPANN closure-assignment ablation [32]"
    ))
    return rows


def test_e7_diskann_reads_fewer_pages_than_posting_scan(e7_io_table):
    by_name = {r["index"]: r for r in e7_io_table}
    assert by_name["diskann"]["pages/query"] < by_name["spann(no closure)"][
        "pages/query"
    ] * 2  # beams, not full postings (postings pack many vectors per page)
    assert by_name["diskann"]["recall@10"] >= 0.8


def test_e7_ram_fraction_small(e7_io_table):
    for row in e7_io_table:
        assert row["ram_frac_of_raw"] < 0.8


def test_e7_closure_buys_recall(e7_closure_table):
    recalls = [r["recall@10(nprobe=4)"] for r in e7_closure_table]
    assert recalls[-1] >= recalls[0] - 0.01
    replications = [r["replication"] for r in e7_closure_table]
    assert replications[-1] > replications[0]


def test_bench_e7_diskann_search(benchmark, disk_indexes, workload,
                                 e7_io_table, e7_closure_table):
    index = disk_indexes["diskann"]
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10))


def test_bench_e7_spann_search(benchmark, disk_indexes, workload):
    index = disk_indexes["spann(closure)"]
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10))
