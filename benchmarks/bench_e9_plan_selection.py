"""E9 (§2.3 plan enumeration/selection): does the optimizer pick well?

Regenerates the comparison the tutorial frames qualitatively: across a
selectivity sweep, measure the *executed work* of every enumerated
plan, then score each selection policy (cost-based, rule-based, and the
two predefined single-plan systems) by how close its chosen plan's
work is to the per-query optimum ("regret").

Work is measured in the cost model's units — distance computations,
predicate evaluations, page reads, priced by calibrated weights —
rather than wall-clock, because in a pure-Python substrate the
vectorized brute-force kernel beats per-node index traversal on raw
latency at any scale a laptop holds (a constant-factor artifact of the
interpreter, not of the plans; see DESIGN.md "Substitutions").  The
papers' own optimizers [79, 84] compare plans on exactly these
operator-work aggregates.
"""

import numpy as np
import pytest

from _util import emit
from repro.bench.reporting import format_table
from repro.core.cost import CostModel
from repro.core.database import VectorDatabase
from repro.core.optimizer import CostBasedSelector, RuleBasedSelector
from repro.core.planner import QueryPlan
from repro.core.query import SearchQuery
from repro.hybrid.predicates import Field

SELECTIVITIES = (0.01, 0.1, 0.3, 0.7)


@pytest.fixture(scope="module")
def planned_db(hybrid_bench_dataset):
    ds = hybrid_bench_dataset
    n = len(ds.train)
    rank = np.random.default_rng(0).permutation(n) / n
    attrs = [{**a, "rank": float(rank[i])} for i, a in enumerate(ds.attributes)]
    db = VectorDatabase(dim=ds.dim, selector="cost")
    db.insert_many(ds.train, attrs)
    db.create_index("graph", "hnsw", m=12, ef_construction=80, seed=0)
    return db, ds


#: Abstract unit prices used both to score executed plans and inside
#: the cost-based selector — one distance = 1 unit, predicates cheap,
#: page reads expensive, as in the papers' linear models [79, 84].
WORK_MODEL = CostModel()


def _plan_work(db, ds, predicate):
    """Measured mean executed work (model units) of every candidate plan."""
    candidates = [
        QueryPlan("pre_filter"),
        QueryPlan("block_first", "graph"),
        QueryPlan("post_filter", "graph"),
        QueryPlan("visit_first", "graph"),
    ]
    out = {}
    for plan in candidates:
        total = 0.0
        for q in ds.queries:
            result = db.search(q, k=10, predicate=predicate, plan=plan)
            total += WORK_MODEL.measured_cost(result.stats)
        out[plan.strategy] = total / len(ds.queries)
    return out


@pytest.fixture(scope="module")
def e9_table(planned_db):
    db, ds = planned_db
    rows = []
    selector_cost = CostBasedSelector(WORK_MODEL)
    selector_rule = RuleBasedSelector()
    for s in SELECTIVITIES:
        predicate = Field("rank") < s
        work = _plan_work(db, ds, predicate)
        best_strategy = min(work, key=work.get)
        best_units = work[best_strategy]

        enumerated = db.planner.enumerate(True, db.indexes, {}, predicate)
        n = len(db.collection)
        choices = {
            "cost_based": selector_cost.select(enumerated, db.indexes, n, 10, s),
            "rule_based": selector_rule.select(
                [QueryPlan(p.strategy, p.index_name) for p in enumerated],
                db.indexes, n, 10, s,
            ),
            "predef_postfilter": QueryPlan("post_filter", "graph"),
            "predef_prefilter": QueryPlan("pre_filter"),
        }
        row = {"selectivity": s, "best_plan": best_strategy,
               "best_work": round(best_units, 1)}
        for name, plan in choices.items():
            row[f"{name}_regret"] = round(work[plan.strategy] / best_units, 2)
        rows.append(row)
    emit("e9_selection", format_table(
        rows, "E9: plan-selection regret (chosen work / best work, model units)"
    ))
    return rows


def test_e9_crossover_exists(e9_table):
    """The best plan changes across the selectivity sweep — the premise
    of having an optimizer at all (§2.3)."""
    assert len({r["best_plan"] for r in e9_table}) >= 2


def test_e9_cost_based_tracks_best(e9_table):
    """Cost-based selection stays near optimal everywhere; each fixed
    single plan has a regime where it loses badly."""
    worst_cost = max(r["cost_based_regret"] for r in e9_table)
    worst_fixed = min(  # the better of the two fixed plans, at its worst
        max(r["predef_postfilter_regret"] for r in e9_table),
        max(r["predef_prefilter_regret"] for r in e9_table),
    )
    assert worst_cost <= worst_fixed


def test_e9_predefined_loses_somewhere(e9_table):
    assert max(r["predef_prefilter_regret"] for r in e9_table) > 1.5
    assert max(r["predef_postfilter_regret"] for r in e9_table) > 1.5


def test_e9_rule_based_reasonable(e9_table):
    assert max(r["rule_based_regret"] for r in e9_table) <= max(
        max(r["predef_postfilter_regret"] for r in e9_table),
        max(r["predef_prefilter_regret"] for r in e9_table),
    )


def test_bench_e9_optimize_and_execute(benchmark, planned_db, e9_table):
    db, ds = planned_db
    predicate = Field("rank") < 0.3
    q = ds.queries[0]
    benchmark(lambda: db.search(q, k=10, predicate=predicate))


def test_bench_e9_planning_overhead(benchmark, planned_db):
    db, ds = planned_db
    predicate = Field("rank") < 0.3
    query = SearchQuery(ds.queries[0], 10, predicate=predicate)
    benchmark(lambda: db.plan(query))
