"""E8 (§2.3 hybrid operators): strategy crossover vs selectivity.

The central hybrid-query claim: pre-filtering wins at low selectivity,
post-filtering at high selectivity, single-stage (visit-first) /
block-first in between — and unoversampled post-filtering starves the
result set, fixed by a*k retrieval (§2.6(3)).

The sweep uses a numeric predicate whose threshold controls
selectivity exactly.
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.core.collection import VectorCollection
from repro.core.types import SearchStats
from repro.hybrid import (
    adaptive_postfilter_scan,
    blocked_index_scan,
    postfilter_scan,
    prefilter_scan,
    visit_first_scan,
)
from repro.hybrid.predicates import Field
from repro.index import HnswIndex
from repro.index.flat import FlatIndex
from repro.scores import EuclideanScore

SELECTIVITIES = (0.01, 0.05, 0.2, 0.5, 0.9)


@pytest.fixture(scope="module")
def hybrid_setup(hybrid_bench_dataset):
    ds = hybrid_bench_dataset
    # Replace prices with a uniform rank column so that a threshold t
    # yields selectivity exactly t.
    n = len(ds.train)
    rank = np.random.default_rng(0).permutation(n) / n
    attrs = [
        {**a, "rank": float(rank[i])} for i, a in enumerate(ds.attributes)
    ]
    coll = VectorCollection(ds.dim)
    coll.insert_many(ds.train, attrs)
    graph = HnswIndex(m=12, ef_construction=80, seed=0).build(ds.train)
    flat = FlatIndex(EuclideanScore()).build(ds.train)
    return coll, graph, flat, ds


def _filtered_truth(coll, flat, query, predicate, k=10):
    mask = coll.predicate_mask(predicate)
    return [h.id for h in flat.search(query, k, allowed=mask)]


@pytest.fixture(scope="module")
def e8_crossover_table(hybrid_setup):
    coll, graph, flat, ds = hybrid_setup
    score = EuclideanScore()
    rows = []
    for s in SELECTIVITIES:
        predicate = Field("rank") < s
        per_strategy = {}
        for strategy in ("pre_filter", "block_first", "visit_first",
                         "post_filter(a=1/s)"):
            stats = SearchStats()
            recalls, counts = [], []
            for q in ds.queries:
                truth = _filtered_truth(coll, flat, q, predicate)
                if strategy == "pre_filter":
                    hits = prefilter_scan(coll, q, 10, predicate, score,
                                          stats=stats)
                elif strategy == "block_first":
                    hits = blocked_index_scan(graph, coll, q, 10, predicate,
                                              stats=stats, ef_search=64)
                elif strategy == "visit_first":
                    hits = visit_first_scan(graph, coll, q, 10, predicate,
                                            ef=64, stats=stats)
                else:
                    hits = postfilter_scan(
                        graph, coll, q, 10, predicate,
                        oversample=1.0 / s, stats=stats, ef_search=64,
                    )
                recalls.append(recall_of(hits, truth) if truth else 1.0)
                counts.append(len(hits))
            per_strategy[strategy] = (
                float(np.mean(recalls)),
                stats.distance_computations / len(ds.queries),
                float(np.mean(counts)),
            )
        for strategy, (recall, dists, count) in per_strategy.items():
            rows.append(
                {
                    "selectivity": s,
                    "strategy": strategy,
                    "recall@10": round(recall, 3),
                    "dists/query": round(dists, 1),
                    "results": round(count, 1),
                }
            )
    emit("e8_crossover", format_table(
        rows, "E8a: hybrid strategy recall/cost vs predicate selectivity"
    ))
    return rows


@pytest.fixture(scope="module")
def e8_starvation_table(hybrid_setup):
    coll, graph, flat, ds = hybrid_setup
    predicate = Field("rank") < 0.1
    rows = []
    for oversample in (1.0, 2.0, 5.0, 10.0, None):
        counts, attempts = [], []
        for q in ds.queries:
            if oversample is None:
                result = adaptive_postfilter_scan(
                    graph, coll, q, 10, predicate, ef_search=128
                )
                counts.append(len(result.hits))
                attempts.append(result.attempts)
            else:
                hits = postfilter_scan(
                    graph, coll, q, 10, predicate, oversample=oversample,
                    ef_search=128,
                )
                counts.append(len(hits))
                attempts.append(1)
        rows.append(
            {
                "oversample_a": "adaptive" if oversample is None else oversample,
                "mean_results(k=10)": round(float(np.mean(counts)), 2),
                "mean_attempts": round(float(np.mean(attempts)), 2),
            }
        )
    emit("e8_starvation", format_table(
        rows, "E8b: post-filter result starvation vs a*k oversampling (s=0.1)"
    ))
    return rows


def _best_strategy(rows, selectivity):
    candidates = [r for r in rows if r["selectivity"] == selectivity]
    # Best = lowest cost among strategies achieving >= 0.85 recall.
    good = [r for r in candidates if r["recall@10"] >= 0.85]
    pool = good or candidates
    return min(pool, key=lambda r: r["dists/query"])["strategy"]


def test_e8_prefilter_wins_low_selectivity(e8_crossover_table):
    assert _best_strategy(e8_crossover_table, 0.01) == "pre_filter"


def test_e8_prefilter_loses_high_selectivity(e8_crossover_table):
    assert _best_strategy(e8_crossover_table, 0.9) != "pre_filter"


def test_e8_prefilter_cost_grows_with_selectivity(e8_crossover_table):
    costs = [
        r["dists/query"]
        for r in e8_crossover_table
        if r["strategy"] == "pre_filter"
    ]
    assert all(b > a for a, b in zip(costs, costs[1:]))


def test_e8_postfilter_starves_without_oversampling(e8_starvation_table):
    plain = e8_starvation_table[0]
    assert plain["mean_results(k=10)"] < 10
    adaptive = e8_starvation_table[-1]
    assert adaptive["mean_results(k=10)"] == pytest.approx(10.0)


def test_bench_e8_block_first(benchmark, hybrid_setup, e8_crossover_table,
                              e8_starvation_table):
    coll, graph, flat, ds = hybrid_setup
    predicate = Field("rank") < 0.2
    q = ds.queries[0]
    benchmark(lambda: blocked_index_scan(graph, coll, q, 10, predicate,
                                         ef_search=64))


def test_bench_e8_visit_first(benchmark, hybrid_setup):
    coll, graph, flat, ds = hybrid_setup
    predicate = Field("rank") < 0.2
    q = ds.queries[0]
    benchmark(lambda: visit_first_scan(graph, coll, q, 10, predicate, ef=64))


def test_bench_e8_pre_filter(benchmark, hybrid_setup):
    coll, graph, flat, ds = hybrid_setup
    predicate = Field("rank") < 0.2
    q = ds.queries[0]
    benchmark(lambda: prefilter_scan(coll, q, 10, predicate, EuclideanScore()))
