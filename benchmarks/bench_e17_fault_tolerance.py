"""E17 (§2.3 fault path): recall/latency/coverage under injected faults.

Sweeps fault rate x replication factor with seeded chaos plans and
regenerates ``benchmarks/results/e17_faults.txt``: per cell the mean
recall@10, simulated latency (failover + backoff cost included),
coverage fraction, and failover/retry counts.  The headline behaviors:

* at replication_factor >= 2 moderate fault rates cost latency, not
  recall — failover preserves coverage;
* at replication_factor = 1 the same faults surface as partial results
  (coverage < 1) and recall tracks coverage.
"""

import warnings

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.core.errors import PartialResultWarning
from repro.distributed import (
    DistributedSearchCluster,
    NodeLatencyModel,
    UniformSharding,
)
from repro.reliability import FaultPlan

LATENCY = NodeLatencyModel(network_seconds=0.0005, per_distance_seconds=2e-7)
SHARDS = 8
FAULT_RATES = (0.0, 0.05, 0.15, 0.30)
REPLICATION = (1, 2, 3)


def _run_cell(workload, truth10, fault_rate, replicas):
    plan = FaultPlan.random_plan(
        seed=17, crash_rate=fault_rate / 2, flaky_rate=fault_rate,
        slow_rate=fault_rate, slowdown=5.0, crash_duration_ops=6,
    )
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(SHARDS), replication_factor=replicas,
        index_type="flat", latency=LATENCY, injector=plan.injector(),
        strict=False,
    )
    cluster.load(workload.train)
    recalls, latencies, coverages = [], [], []
    failovers = retries = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialResultWarning)
        for i, q in enumerate(workload.queries):
            result, dstats = cluster.search(q, 10)
            recalls.append(recall_of(result.hits, truth10[i]))
            latencies.append(dstats.simulated_latency_seconds)
            coverages.append(dstats.coverage_fraction)
            failovers += dstats.failovers
            retries += dstats.retries
    return {
        "fault_rate": fault_rate,
        "replicas": replicas,
        "recall@10": round(float(np.mean(recalls)), 3),
        "coverage": round(float(np.mean(coverages)), 3),
        "sim_latency_ms": round(float(np.mean(latencies)) * 1e3, 3),
        "failovers": failovers,
        "retries": retries,
    }


@pytest.fixture(scope="module")
def e17_fault_table(workload, truth10):
    rows = [
        _run_cell(workload, truth10, rate, replicas)
        for rate in FAULT_RATES
        for replicas in REPLICATION
    ]
    emit("e17_faults", format_table(
        rows,
        "E17: fault rate x replication factor (seeded chaos, non-strict)",
    ))
    return rows


def test_e17_no_faults_means_full_coverage(e17_fault_table):
    for row in e17_fault_table:
        if row["fault_rate"] == 0.0:
            assert row["coverage"] == 1.0
            assert row["recall@10"] == 1.0
            assert row["failovers"] == 0


def test_e17_replication_preserves_coverage(e17_fault_table):
    """At equal fault rate, more replicas -> coverage no worse."""
    for rate in FAULT_RATES:
        cells = sorted(
            (r for r in e17_fault_table if r["fault_rate"] == rate),
            key=lambda r: r["replicas"],
        )
        coverages = [c["coverage"] for c in cells]
        assert coverages == sorted(coverages)


def test_e17_faults_trigger_failover_work(e17_fault_table):
    faulty = [r for r in e17_fault_table
              if r["fault_rate"] > 0 and r["replicas"] > 1]
    assert any(r["failovers"] > 0 for r in faulty)
    assert any(r["retries"] > 0 for r in faulty)


def test_e17_recall_tracks_coverage(e17_fault_table):
    """Uniform sharding spreads true neighbors evenly, so mean recall
    stays within a small band of mean coverage."""
    for row in e17_fault_table:
        assert abs(row["recall@10"] - row["coverage"]) <= 0.1


def test_e17_query_throughput(benchmark, workload):
    """pytest-benchmark timing: one query under chaos at rf=2."""
    plan = FaultPlan.random_plan(seed=17, crash_rate=0.05, flaky_rate=0.1,
                                 slow_rate=0.1)
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(SHARDS), replication_factor=2,
        index_type="flat", latency=LATENCY, injector=plan.injector(),
        strict=False,
    )
    cluster.load(workload.train)
    query = workload.queries[0]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialResultWarning)
        benchmark(lambda: cluster.search(query, 10))
