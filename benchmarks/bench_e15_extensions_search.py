"""E15 (§2.3 / §2.6(5) extensions): filtered graphs & incremental search.

Two ablations of the open problems the tutorial closes with:

* **Stitched (attribute-aware) graph construction** [3, 43, 87] vs
  online bitmask blocking on a plain graph, across label selectivity —
  stitching keeps per-label subgraphs connected, so filtered recall
  survives where blocking degrades and costs fewer hops.
* **Index-supported incremental search** (§2.6(5)) vs the re-query
  workaround: cumulative distance computations per page fetched.
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.core.incremental import IncrementalSearcher, RestartIncrementalSearcher
from repro.core.types import SearchStats
from repro.index import FilteredHnswIndex, HnswIndex
from repro.index.flat import FlatIndex
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def labeled_workload(workload):
    rng = np.random.default_rng(3)
    labels = {}
    # Three label granularities -> three selectivities.
    for count in (4, 20, 100):
        labels[count] = rng.integers(count, size=len(workload.train))
    return workload, labels


@pytest.fixture(scope="module")
def e15_filtered_table(labeled_workload):
    workload, labels_by_count = labeled_workload
    rows = []
    for count, labels in labels_by_count.items():
        stitched = FilteredHnswIndex(
            m=12, ef_construction=64, label_k=6, seed=0
        ).build_with_labels(workload.train, labels)
        plain = HnswIndex(m=12, ef_construction=64, seed=0).build(workload.train)

        target_labels = list(range(min(5, count)))
        per_method = {}
        for method in ("stitched", "bitmask"):
            stats = SearchStats()
            recalls = []
            for label in target_labels:
                members = np.flatnonzero(labels == label)
                oracle = FlatIndex(EuclideanScore()).build(
                    workload.train[members], ids=members.astype(np.int64)
                )
                mask = labels == label
                for q in workload.queries[:8]:
                    truth = [h.id for h in oracle.search(q, 10)]
                    if method == "stitched":
                        hits = stitched.search(q, 10, label=label,
                                               ef_search=48, stats=stats)
                    else:
                        hits = plain.search(q, 10, allowed=mask,
                                            ef_search=48, stats=stats)
                    recalls.append(recall_of(hits, np.asarray(truth)))
            per_method[method] = (
                float(np.mean(recalls)),
                stats.distance_computations / (len(target_labels) * 8),
            )
        rows.append(
            {
                "labels": count,
                "selectivity": round(1.0 / count, 3),
                "stitched_recall": round(per_method["stitched"][0], 3),
                "bitmask_recall": round(per_method["bitmask"][0], 3),
                "stitched_dists": round(per_method["stitched"][1], 1),
                "bitmask_dists": round(per_method["bitmask"][1], 1),
            }
        )
    emit("e15_filtered", format_table(
        rows, "E15a: stitched (attribute-aware) graph vs bitmask blocking"
    ))
    return rows


@pytest.fixture(scope="module")
def e15_incremental_table(workload):
    index = HnswIndex(m=12, ef_construction=80, seed=0).build(workload.train)
    rows = []
    pages = 6
    page_size = 10
    inc_cum, restart_cum = [], []
    for q in workload.queries[:10]:
        inc = IncrementalSearcher(index, q)
        restart = RestartIncrementalSearcher(index, q)
        inc_marks, restart_marks = [], []
        for _ in range(pages):
            inc.next_batch(page_size)
            restart.next_batch(page_size)
            inc_marks.append(inc.stats.distance_computations)
            restart_marks.append(restart.stats.distance_computations)
        inc_cum.append(inc_marks)
        restart_cum.append(restart_marks)
    inc_mean = np.mean(inc_cum, axis=0)
    restart_mean = np.mean(restart_cum, axis=0)
    for page in range(pages):
        rows.append(
            {
                "page": page + 1,
                "results_so_far": (page + 1) * page_size,
                "incremental_cum_dists": round(float(inc_mean[page]), 1),
                "restart_cum_dists": round(float(restart_mean[page]), 1),
                "savings": round(float(restart_mean[page] / inc_mean[page]), 2),
            }
        )
    emit("e15_incremental", format_table(
        rows, "E15b: incremental search vs re-query pagination (§2.6(5))"
    ))
    return rows


def test_e15_stitched_recall_dominates_at_low_selectivity(e15_filtered_table):
    fine = next(r for r in e15_filtered_table if r["labels"] == 100)
    assert fine["stitched_recall"] >= fine["bitmask_recall"] - 0.02
    assert fine["stitched_recall"] >= 0.9


def test_e15_stitched_cheaper_hops(e15_filtered_table):
    """Label-subgraph traversal never wastes hops on blocked nodes."""
    for row in e15_filtered_table:
        assert row["stitched_dists"] <= row["bitmask_dists"] * 1.5


def test_e15_incremental_saves_work(e15_incremental_table):
    last = e15_incremental_table[-1]
    assert last["savings"] > 1.5
    # Savings grow with page depth.
    assert last["savings"] >= e15_incremental_table[0]["savings"]


def test_e15_incremental_cost_sublinear_in_pages(e15_incremental_table):
    """Each additional page costs less than the first (shared frontier)."""
    marks = [r["incremental_cum_dists"] for r in e15_incremental_table]
    first_page = marks[0]
    increments = np.diff(marks)
    assert all(inc < first_page for inc in increments)


def test_bench_e15_filtered_search(benchmark, labeled_workload,
                                   e15_filtered_table, e15_incremental_table):
    workload, labels_by_count = labeled_workload
    labels = labels_by_count[20]
    index = FilteredHnswIndex(
        m=12, ef_construction=64, label_k=6, seed=0
    ).build_with_labels(workload.train, labels)
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10, label=3))


def test_bench_e15_incremental_page(benchmark, workload):
    index = HnswIndex(m=12, ef_construction=80, seed=0).build(workload.train)
    q = workload.queries[0]

    def paged():
        inc = IncrementalSearcher(index, q)
        inc.next_batch(10)
        return inc.next_batch(10)

    benchmark(paged)
