"""E4 (§2.2 quantization): compression ratio vs recall; IVFADC sweep.

Regenerates:

* SQ / PQ / OPQ compression ratio, reconstruction error, and recall@10
  with and without exact re-ranking;
* IVFADC recall/codes-scanned vs nprobe [49].
"""

import numpy as np
import pytest

from _util import emit, recall_of
from repro.bench.reporting import format_table
from repro.core.types import SearchStats
from repro.index import IvfAdcIndex, PqIndex, SqIndex
from repro.quantization import OptimizedProductQuantizer, ProductQuantizer, ScalarQuantizer


@pytest.fixture(scope="module")
def e4_compression_table(workload, truth10):
    data = workload.train.astype(np.float64)
    raw_bytes = workload.train.nbytes

    rows = []
    configs = [
        ("sq8", SqIndex(bits=8), ScalarQuantizer(8)),
        ("sq4", SqIndex(bits=4), ScalarQuantizer(4)),
        ("pq(m=4)", PqIndex(m=4, ks=256, seed=0), ProductQuantizer(4, 256, seed=0)),
        ("pq(m=8)", PqIndex(m=8, ks=256, seed=0), ProductQuantizer(8, 256, seed=0)),
        (
            "opq(m=4)",
            PqIndex(m=4, ks=256, optimized=True, opq_iterations=5, seed=0),
            OptimizedProductQuantizer(4, 256, opq_iterations=5, seed=0),
        ),
    ]
    for name, index, quantizer in configs:
        quantizer.train(data)
        if hasattr(quantizer, "quantization_error"):
            err = quantizer.quantization_error(data[:500])
        else:
            recon = quantizer.decode(quantizer.encode(data[:500]))
            err = float(np.mean(np.sum((data[:500] - recon) ** 2, axis=1)))
        index.build(workload.train)
        plain = float(np.mean([
            recall_of(index.search(q, 10, rerank=0), truth10[i])
            for i, q in enumerate(workload.queries)
        ]))
        rerank = float(np.mean([
            recall_of(index.search(q, 10, rerank=100), truth10[i])
            for i, q in enumerate(workload.queries)
        ]))
        rows.append(
            {
                "quantizer": name,
                "compression": f"{raw_bytes / max(1, index.memory_bytes()):.0f}x",
                "mse": round(err, 3),
                "recall@10": round(plain, 3),
                "recall@10+rerank": round(rerank, 3),
            }
        )
    emit("e4_compression", format_table(
        rows, "E4a: quantization compression vs recall"
    ))
    return rows


@pytest.fixture(scope="module")
def e4_ivfadc_table(workload, truth10):
    index = IvfAdcIndex(nlist=48, m=8, ks=256, rerank=50, seed=0)
    index.build(workload.train)
    rows = []
    for nprobe in (1, 4, 8, 16, 32):
        stats = SearchStats()
        recalls = [
            recall_of(index.search(q, 10, nprobe=nprobe, stats=stats), truth10[i])
            for i, q in enumerate(workload.queries)
        ]
        rows.append(
            {
                "nprobe": nprobe,
                "recall@10": round(float(np.mean(recalls)), 3),
                "codes/query": round(
                    stats.candidates_examined / len(workload.queries), 1
                ),
            }
        )
    emit("e4_ivfadc", format_table(rows, "E4b: IVFADC recall vs nprobe [49]"))
    return rows


def test_e4_more_compression_more_error(e4_compression_table):
    by_name = {r["quantizer"]: r for r in e4_compression_table}
    assert by_name["sq4"]["mse"] > by_name["sq8"]["mse"]
    assert by_name["pq(m=4)"]["mse"] > by_name["pq(m=8)"]["mse"]


def test_e4_rerank_recovers_recall(e4_compression_table):
    for row in e4_compression_table:
        assert row["recall@10+rerank"] >= row["recall@10"] - 0.01


def test_e4_opq_not_worse_than_pq(e4_compression_table):
    by_name = {r["quantizer"]: r for r in e4_compression_table}
    assert by_name["opq(m=4)"]["mse"] <= by_name["pq(m=4)"]["mse"] * 1.05


def test_e4_ivfadc_recall_rises_with_nprobe(e4_ivfadc_table):
    recalls = [r["recall@10"] for r in e4_ivfadc_table]
    assert all(b >= a - 0.01 for a, b in zip(recalls, recalls[1:]))


def test_bench_e4_adc_table_build(benchmark, workload, e4_compression_table,
                                  e4_ivfadc_table):
    pq = ProductQuantizer(8, 256, seed=0).train(workload.train.astype(np.float64))
    q = workload.queries[0].astype(np.float64)
    benchmark(lambda: pq.adc_table(q))


def test_bench_e4_ivfadc_search(benchmark, workload):
    index = IvfAdcIndex(nlist=48, m=8, ks=256, rerank=50, seed=0)
    index.build(workload.train)
    q = workload.queries[0]
    benchmark(lambda: index.search(q, 10, nprobe=8))
