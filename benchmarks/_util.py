"""Shared helpers for the experiment benches (E1-E14).

Each bench regenerates its experiment's table(s) once per session
(module-scoped fixtures), writes them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts, and exposes
pytest-benchmark timings for the headline operations.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(exp_id: str, text: str) -> str:
    """Print an experiment table and persist it to results/<exp_id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{exp_id}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return text


def recall_of(hits, truth_row) -> float:
    truth = set(int(t) for t in truth_row)
    if not truth:
        return 1.0
    return len(truth.intersection(h.id for h in hits)) / len(truth)
