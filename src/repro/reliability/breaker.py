"""Per-replica circuit breakers and the cluster health view.

A coordinator that keeps hammering a dead replica pays a failed-RTT tax
on every query.  The classic fix is a circuit breaker per downstream:
after ``failure_threshold`` *consecutive* failures the breaker OPENs and
the replica is skipped outright; after ``cooldown_ops`` skipped
operations it HALF-OPENs and lets one probe request through — success
re-CLOSEs it, failure re-OPENs it.  Cooldown is counted in operations
(breaker consultations), the natural unit of our simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CircuitBreaker", "ClusterHealth", "ReplicaHealth"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Failure-counting state machine for one replica."""

    failure_threshold: int = 3
    cooldown_ops: int = 8
    state: str = CLOSED
    consecutive_failures: int = 0
    _cooldown_left: int = 0
    trips: int = 0
    skips: int = 0

    def allow(self) -> bool:
        """May the coordinator contact this replica right now?

        While OPEN, each denied consultation ticks the cooldown; once it
        reaches zero the breaker HALF-OPENs and admits a single probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return True
        self._cooldown_left -= 1
        if self._cooldown_left <= 0:
            self.state = HALF_OPEN
            return True
        self.skips += 1
        return False

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._trip()
        elif (self.state == CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self._cooldown_left = self.cooldown_ops
        self.trips += 1


@dataclass(frozen=True)
class ReplicaHealth:
    """Point-in-time health of one replica, as the coordinator sees it."""

    node_id: str
    shard: int
    replica: int
    is_up: bool
    breaker_state: str
    consecutive_failures: int
    breaker_trips: int
    queries_served: int


@dataclass
class ClusterHealth:
    """Aggregated health view over every replica of every shard."""

    replicas: list[ReplicaHealth] = field(default_factory=list)

    @property
    def healthy_replicas(self) -> int:
        return sum(1 for r in self.replicas
                   if r.is_up and r.breaker_state == CLOSED)

    @property
    def tripped_replicas(self) -> int:
        return sum(1 for r in self.replicas if r.breaker_state != CLOSED)

    def shards_at_risk(self) -> list[int]:
        """Shards with no replica that is both up and breaker-closed."""
        by_shard: dict[int, bool] = {}
        for r in self.replicas:
            ok = r.is_up and r.breaker_state == CLOSED
            by_shard[r.shard] = by_shard.get(r.shard, False) or ok
        return sorted(s for s, ok in by_shard.items() if not ok)

    def summary(self) -> str:
        at_risk = self.shards_at_risk()
        return (
            f"{self.healthy_replicas}/{len(self.replicas)} replicas healthy,"
            f" {self.tripped_replicas} breakers tripped,"
            f" shards at risk: {at_risk if at_risk else 'none'}"
        )
