"""Retry, backoff, and deadline policies over the simulated clock.

Real coordinators bound failover cost with three knobs the tutorial's
§2.3 systems all expose: how many times to retry a replica, how long to
wait between attempts (exponential backoff with jitter, to avoid retry
storms), and a per-request deadline after which a partial answer beats
no answer.  Everything here is expressed in *simulated* seconds — the
same currency as :class:`~repro.distributed.node.NodeLatencyModel` — so
tests and benches stay deterministic and laptop-fast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.errors import DeadlineExceededError

__all__ = ["Deadline", "RetryPolicy"]


@dataclass
class RetryPolicy:
    """Exponential backoff with seeded full-jitter.

    ``backoff(attempt)`` returns the simulated delay to charge *before*
    retry number ``attempt`` (1-based; attempt 1 is the first retry).
    The delay grows as ``base_delay * multiplier**(attempt-1)``, capped
    at ``max_delay``, then jittered by up to ``jitter`` of itself using
    a seeded RNG so runs are reproducible.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.001
    multiplier: float = 2.0
    max_delay_seconds: float = 0.050
    jitter: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """Simulated delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        delay = min(
            self.base_delay_seconds * self.multiplier ** (attempt - 1),
            self.max_delay_seconds,
        )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def reset(self) -> None:
        """Re-seed the jitter RNG (fresh deterministic run)."""
        self._rng = random.Random(self.seed)


@dataclass
class Deadline:
    """A per-request budget on the simulated clock.

    The coordinator charges node latencies, failed-attempt RTTs, and
    backoff delays against it; once ``exceeded``, remaining work is
    abandoned (strict mode raises, non-strict mode degrades).
    """

    budget_seconds: float
    spent_seconds: float = 0.0

    def charge(self, seconds: float) -> None:
        self.spent_seconds += seconds

    @property
    def remaining_seconds(self) -> float:
        return self.budget_seconds - self.spent_seconds

    @property
    def exceeded(self) -> bool:
        return self.spent_seconds > self.budget_seconds

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` when over budget."""
        if self.exceeded:
            raise DeadlineExceededError(self.budget_seconds,
                                        self.spent_seconds)
