"""Deterministic, seedable fault injection (chaos harness).

The VDBMS testing roadmap (arXiv:2502.20812) and the VDBMS bug study
(arXiv:2506.02617) both find that the query/storage fault path — replica
failover, partial availability, crash-consistent reads — dominates
real-world VDBMS failures, yet is the least-tested layer.  This module
gives the reproduction a controllable fault model:

* :class:`FaultSpec` describes one fault: node crashes, slow replicas,
  flaky (transient) request failures, and storage page-read errors,
  scheduled either deterministically (the Nth operation on a target) or
  probabilistically (per-operation probability from a seeded RNG).
* :class:`FaultPlan` is an immutable, reusable bundle of specs + seed.
  The same plan replayed over the same operation sequence injects the
  *identical* faults — chaos tests are reproducible by construction.
* :class:`FaultInjector` is the live object components consult: nodes
  call :meth:`FaultInjector.on_request` before serving, disks call
  :meth:`FaultInjector.on_page_read` before returning a page.

Nothing here sleeps or touches wall-clock time; "slow" faults surface as
latency *multipliers* that feed the simulated clock.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass

__all__ = [
    "CRASH",
    "FLAKY",
    "PAGE_ERROR",
    "SLOW",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
]

# Fault kinds.
CRASH = "crash"            # replica stops answering (until healed)
SLOW = "slow"              # replica answers, but latency is multiplied
FLAKY = "flaky"            # one request fails; a retry may succeed
PAGE_ERROR = "page_error"  # a disk page read raises PageReadError

_KINDS = (CRASH, SLOW, FLAKY, PAGE_ERROR)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        ``"crash"``, ``"slow"``, ``"flaky"`` or ``"page_error"``.
    target:
        Which component the fault applies to, matched with shell-style
        wildcards against node ids (``"shard0-replica1"``, ``"shard*"``)
        or the pseudo-target ``"disk"`` for page faults.  ``"*"``
        matches everything of the right kind.
    at_op:
        Fire deterministically from the Nth operation (0-based) seen by
        each matching target, for ``duration_ops`` operations (``None``
        = forever).  A crash scheduled this way keeps the target down
        for exactly that operation window.
    probability:
        Alternatively fire per-operation with this probability, drawn
        from the plan's seeded RNG.  Ignored when ``at_op`` is set.
    duration_ops:
        Fault lifetime in operations.  For probabilistic crashes this is
        the heal-after counter: the target comes back up after this many
        further operations are attempted against it (``None`` = stays
        down).
    slowdown:
        For ``"slow"``: multiplier applied to the request's simulated
        latency.
    """

    kind: str
    target: str = "*"
    at_op: int | None = None
    probability: float = 0.0
    duration_ops: int | None = None
    slowdown: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches(self, target: str) -> bool:
        return fnmatch.fnmatchcase(target, self.target)


@dataclass(frozen=True)
class FaultPlan:
    """A reusable, seedable set of faults.

    Two :class:`FaultInjector`\\ s built from the same plan and driven
    through the same operation sequence make identical decisions.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    # ------------------------------------------------------------- builders

    @classmethod
    def kill_replicas(cls, num_shards: int, replica: int = 0,
                      at_op: int = 0, seed: int = 0) -> "FaultPlan":
        """Crash one replica of every shard (the acceptance scenario)."""
        return cls(
            faults=tuple(
                FaultSpec(CRASH, target=f"shard{s}-replica{replica}",
                          at_op=at_op)
                for s in range(num_shards)
            ),
            seed=seed,
        )

    @classmethod
    def random_plan(
        cls,
        seed: int,
        crash_rate: float = 0.0,
        flaky_rate: float = 0.0,
        slow_rate: float = 0.0,
        page_error_rate: float = 0.0,
        slowdown: float = 10.0,
        crash_duration_ops: int | None = 8,
    ) -> "FaultPlan":
        """A probabilistic chaos plan over every node and the disk."""
        faults: list[FaultSpec] = []
        if crash_rate > 0:
            faults.append(FaultSpec(CRASH, probability=crash_rate,
                                    duration_ops=crash_duration_ops))
        if flaky_rate > 0:
            faults.append(FaultSpec(FLAKY, probability=flaky_rate))
        if slow_rate > 0:
            faults.append(FaultSpec(SLOW, probability=slow_rate,
                                    slowdown=slowdown))
        if page_error_rate > 0:
            faults.append(FaultSpec(PAGE_ERROR, target="disk",
                                    probability=page_error_rate))
        return cls(faults=tuple(faults), seed=seed)


@dataclass
class FaultDecision:
    """The injector's verdict for one operation."""

    kind: str | None = None
    slowdown: float = 1.0

    @property
    def crashed(self) -> bool:
        return self.kind == CRASH

    @property
    def flaky(self) -> bool:
        return self.kind == FLAKY


@dataclass
class FaultInjectionStats:
    """Counters for observability in tests and benches."""

    requests_seen: int = 0
    page_reads_seen: int = 0
    crashes: int = 0
    flaky_failures: int = 0
    slow_requests: int = 0
    page_errors: int = 0

    @property
    def total_injected(self) -> int:
        return (self.crashes + self.flaky_failures + self.slow_requests
                + self.page_errors)


class FaultInjector:
    """Live fault-decision engine for one run.

    Components ask it before doing work; it answers deterministically
    given the plan seed and the per-target operation counters.  It holds
    the crash state machine (down targets, heal-after counters) so the
    simulated node objects stay stateless about faults.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._ops: dict[str, int] = {}
        # target -> ops remaining until heal (None = down forever)
        self._down: dict[str, int | None] = {}
        self.stats = FaultInjectionStats()

    # ------------------------------------------------------------- plumbing

    def _tick(self, target: str) -> int:
        op = self._ops.get(target, 0)
        self._ops[target] = op + 1
        return op

    def _fires(self, spec: FaultSpec, target: str, op: int) -> bool:
        if not spec.matches(target):
            return False
        if spec.at_op is not None:
            if op < spec.at_op:
                return False
            if spec.duration_ops is not None:
                return op < spec.at_op + spec.duration_ops
            return True
        return spec.probability > 0 and self._rng.random() < spec.probability

    def is_down(self, target: str) -> bool:
        return target in self._down

    # ---------------------------------------------------------------- hooks

    def on_request(self, node_id: str) -> FaultDecision:
        """Consulted by a node before serving one request."""
        self.stats.requests_seen += 1
        op = self._tick(node_id)
        # A crashed node stays crashed until its heal counter runs out;
        # attempts against it still advance the counter.
        if node_id in self._down:
            remaining = self._down[node_id]
            if remaining is None:
                self.stats.crashes += 1
                return FaultDecision(kind=CRASH)
            if remaining > 1:
                self._down[node_id] = remaining - 1
                self.stats.crashes += 1
                return FaultDecision(kind=CRASH)
            del self._down[node_id]  # healed; fall through to fresh checks
        decision = FaultDecision()
        for spec in self.plan.faults:
            if spec.kind == PAGE_ERROR or not self._fires(spec, node_id, op):
                continue
            if spec.kind == CRASH:
                if spec.at_op is None:
                    # Probabilistic crash: persist via the heal counter.
                    # (Deterministic crashes are governed directly by
                    # their [at_op, at_op + duration_ops) window.)
                    self._down[node_id] = spec.duration_ops
                self.stats.crashes += 1
                return FaultDecision(kind=CRASH)
            if spec.kind == FLAKY:
                self.stats.flaky_failures += 1
                return FaultDecision(kind=FLAKY)
            if spec.kind == SLOW:
                self.stats.slow_requests += 1
                decision.kind = SLOW
                decision.slowdown = max(decision.slowdown, spec.slowdown)
        return decision

    def on_page_read(self, page_id: int, target: str = "disk") -> bool:
        """Consulted by a disk before returning a page; True = fail."""
        self.stats.page_reads_seen += 1
        op = self._tick(target)
        for spec in self.plan.faults:
            if spec.kind == PAGE_ERROR and self._fires(spec, target, op):
                self.stats.page_errors += 1
                return True
        return False

    def heal_all(self) -> None:
        """Bring every crashed target back up (manual recovery)."""
        self._down.clear()
