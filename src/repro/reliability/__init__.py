"""Reliability toolkit: fault injection, retries, breakers (§2.3).

The chaos harness every scaling PR tests against: seedable fault plans
(:mod:`~repro.reliability.faults`), retry/backoff/deadline policies on
the simulated clock (:mod:`~repro.reliability.retry`), and per-replica
circuit breakers feeding a cluster health view
(:mod:`~repro.reliability.breaker`).  See ``docs/reliability.md``.
"""

from .breaker import CircuitBreaker, ClusterHealth, ReplicaHealth
from .faults import (
    CRASH,
    FLAKY,
    PAGE_ERROR,
    SLOW,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from .retry import Deadline, RetryPolicy

__all__ = [
    "CRASH",
    "CircuitBreaker",
    "ClusterHealth",
    "Deadline",
    "FLAKY",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "PAGE_ERROR",
    "ReplicaHealth",
    "RetryPolicy",
    "SLOW",
]
