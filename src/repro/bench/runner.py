"""ANN-Benchmarks-style harness (§2.5).

Runs indexes at multiple operating points over a workload and reports
recall@k / QPS / build time / memory — the same rows ann-benchmarks
publishes.  Used by bench E13 and importable by the other benches.

Also a command-line entry point::

    python -m repro.bench.runner            # the master comparison
    python -m repro.bench.runner --quick    # smaller workload
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.types import SearchStats
from ..index.registry import make_index
from ..scores import get_score
from .datasets import Dataset, gaussian_mixture
from .metrics import Measurement, exact_ground_truth, mean_recall, pareto_frontier
from .reporting import format_table


@dataclass
class AlgorithmSpec:
    """One algorithm with build kwargs and a sweep of search params."""

    index_type: str
    build_kwargs: dict[str, Any] = field(default_factory=dict)
    search_sweep: list[dict[str, Any]] = field(default_factory=lambda: [{}])
    label: str | None = None

    @property
    def name(self) -> str:
        return self.label or self.index_type


def default_suite() -> list[AlgorithmSpec]:
    """One representative per index family at a few operating points."""
    return [
        AlgorithmSpec("flat"),
        AlgorithmSpec(
            "lsh",
            {"num_tables": 16, "hashes_per_table": 8},
            [{}],
        ),
        AlgorithmSpec(
            "ivf_flat",
            {"nlist": 64},
            [{"nprobe": p} for p in (1, 4, 16)],
        ),
        AlgorithmSpec(
            "ivf_adc",
            {"nlist": 64, "m": 8, "rerank": 50},
            [{"nprobe": p} for p in (4, 16)],
        ),
        AlgorithmSpec(
            "annoy",
            {"num_trees": 8},
            [{"search_k": s} for s in (16, 64, 256)],
        ),
        AlgorithmSpec(
            "kdtree",
            {},
            [{"max_leaves": b} for b in (8, 64)],
        ),
        AlgorithmSpec(
            "hnsw",
            {"m": 16, "ef_construction": 100},
            [{"ef_search": e} for e in (16, 64, 128)],
        ),
        AlgorithmSpec(
            "ngt",
            {"edge_size": 10},
            [{"ef_search": e} for e in (16, 64)],
        ),
        AlgorithmSpec(
            "nsg",
            {"max_degree": 24, "candidate_pool": 96},
            [{"ef_search": e} for e in (16, 64)],
        ),
        AlgorithmSpec(
            "vamana",
            {"max_degree": 24, "beam_width": 64},
            [{"ef_search": e} for e in (16, 64)],
        ),
    ]


def measure(
    spec: AlgorithmSpec,
    dataset: Dataset,
    truth: np.ndarray,
    k: int = 10,
    score: str = "l2",
) -> list[Measurement]:
    """Build once, sweep the search parameters."""
    index = make_index(spec.index_type, score=get_score(score), **spec.build_kwargs)
    index.build(dataset.train)
    out: list[Measurement] = []
    for params in spec.search_sweep:
        stats = SearchStats()
        start = time.perf_counter()
        results = [
            index.search(q, k, stats=stats, **params) for q in dataset.queries
        ]
        elapsed = time.perf_counter() - start
        nq = len(dataset.queries)
        out.append(
            Measurement(
                algorithm=spec.name,
                parameters=",".join(f"{k_}={v}" for k_, v in params.items()) or "-",
                recall=mean_recall(results, truth),
                qps=nq / elapsed if elapsed > 0 else float("inf"),
                build_seconds=index.build_seconds,
                memory_bytes=index.memory_bytes(),
                mean_distance_computations=stats.distance_computations / nq,
                mean_page_reads=stats.page_reads / nq,
            )
        )
    return out


def run_suite(
    dataset: Dataset,
    suite: list[AlgorithmSpec] | None = None,
    k: int = 10,
    score: str = "l2",
) -> list[Measurement]:
    suite = suite if suite is not None else default_suite()
    truth = exact_ground_truth(
        dataset.train, dataset.queries, k, get_score(score)
    )
    measurements: list[Measurement] = []
    for spec in suite:
        measurements.extend(measure(spec, dataset, truth, k=k, score=score))
    return measurements


def report(measurements: list[Measurement], title: str) -> str:
    body = format_table([m.row() for m in measurements], title)
    frontier = pareto_frontier(measurements)
    front = format_table(
        [m.row() for m in frontier], f"{title} — recall/QPS Pareto frontier"
    )
    return f"{body}\n\n{front}"


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="ANN-benchmarks-style run")
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--n", type=int, default=None, help="collection size")
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--k", type=int, default=10)
    args = parser.parse_args(argv)
    n = args.n or (2000 if args.quick else 10_000)
    dataset = gaussian_mixture(n=n, dim=args.dim, num_queries=50)
    measurements = run_suite(dataset, k=args.k)
    print(report(measurements, f"E13 master comparison on {dataset.name}"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
