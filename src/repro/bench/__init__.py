"""Benchmark harness: workloads, ground truth, metrics, runner (§2.5)."""

from .datasets import (
    DATASETS,
    Dataset,
    gaussian_mixture,
    hybrid_workload,
    multi_vector_entities,
    normalized_embeddings,
    sift_like,
    uniform_hypercube,
)
from .metrics import (
    Measurement,
    exact_ground_truth,
    mean_recall,
    pareto_frontier,
    precision_at_k,
    recall_at_k,
)
from .reporting import format_table, print_table
from .runner import AlgorithmSpec, default_suite, measure, report, run_suite

__all__ = [
    "AlgorithmSpec",
    "DATASETS",
    "Dataset",
    "Measurement",
    "default_suite",
    "exact_ground_truth",
    "format_table",
    "gaussian_mixture",
    "hybrid_workload",
    "mean_recall",
    "measure",
    "multi_vector_entities",
    "normalized_embeddings",
    "pareto_frontier",
    "precision_at_k",
    "print_table",
    "recall_at_k",
    "report",
    "run_suite",
    "sift_like",
    "uniform_hypercube",
]
