"""Result-quality and throughput metrics (§2.1, §2.5).

The quality of a result set "is measured using precision and recall";
ANN benchmarking convention reports recall@k against exact ground truth
plus QPS.  Everything here is oracle-based: ground truth comes from the
flat index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SearchHit
from ..scores import Score


def exact_ground_truth(
    train: np.ndarray, queries: np.ndarray, k: int, score: Score
) -> np.ndarray:
    """(q, k) matrix of true nearest-neighbor row positions."""
    dmat = score.pairwise(queries, train)
    k = min(k, train.shape[0])
    part = np.argpartition(dmat, k - 1, axis=1)[:, :k]
    rows = np.arange(queries.shape[0])[:, None]
    order = np.argsort(dmat[rows, part], axis=1, kind="stable")
    return part[rows, order]


def recall_at_k(result_ids: list[int], truth_ids: np.ndarray) -> float:
    """|result ∩ truth| / |truth| for one query."""
    truth = set(int(t) for t in truth_ids)
    if not truth:
        return 1.0
    return len(truth.intersection(int(r) for r in result_ids)) / len(truth)


def precision_at_k(result_ids: list[int], truth_ids: np.ndarray, k: int) -> float:
    """|result ∩ truth| / k — penalizes short result sets, unlike recall."""
    truth = set(int(t) for t in truth_ids)
    return len(truth.intersection(int(r) for r in result_ids)) / max(1, k)


def mean_recall(
    results: list[list[SearchHit]], truth: np.ndarray
) -> float:
    """Mean recall@k over a query set (truth rows align with results)."""
    if not results:
        return 0.0
    return float(
        np.mean(
            [
                recall_at_k([h.id for h in hits], truth[i])
                for i, hits in enumerate(results)
            ]
        )
    )


@dataclass
class Measurement:
    """One operating point of one algorithm on one workload."""

    algorithm: str
    parameters: str
    recall: float
    qps: float
    build_seconds: float
    memory_bytes: int
    mean_distance_computations: float = 0.0
    mean_page_reads: float = 0.0

    def row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "parameters": self.parameters,
            "recall": round(self.recall, 4),
            "qps": round(self.qps, 1),
            "build_s": round(self.build_seconds, 3),
            "memory_kb": round(self.memory_bytes / 1024, 1),
            "dists/query": round(self.mean_distance_computations, 1),
            "pages/query": round(self.mean_page_reads, 2),
        }


def pareto_frontier(points: list[Measurement]) -> list[Measurement]:
    """Measurements not dominated in (recall, qps) — the ann-benchmarks
    plot reduced to a table."""
    frontier = []
    for p in points:
        dominated = any(
            (q.recall >= p.recall and q.qps > p.qps)
            or (q.recall > p.recall and q.qps >= p.qps)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda m: m.recall)
