"""Plain-text table rendering for benchmark output.

Benches print the same row/series structure a paper table would carry;
this module keeps the formatting in one place (monospace-aligned,
pipe-delimited) so outputs diff cleanly across runs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]], title: str | None = None
) -> str:
    """Render dict rows as an aligned text table (column order = first
    row's key order)."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(rows[0].keys())
    rendered = [[_cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_table(rows: Sequence[Mapping[str, Any]], title: str | None = None) -> None:
    print(format_table(rows, title))
    print()
