"""Synthetic workload generators (§2.5, substituting public datasets).

ANN-Benchmarks [29] and the experimental survey [55] use real image/
text/audio embeddings; offline we generate synthetic datasets whose
controllable properties — cluster structure, intrinsic dimensionality,
norm distribution, attribute correlation — are the factors that drive
index behaviour (see DESIGN.md "Substitutions").

Every generator is deterministic given ``seed`` and returns a
:class:`Dataset` of float32 train vectors, query vectors, and (for the
hybrid workloads) attribute dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.types import VECTOR_DTYPE
from ..scores.basic import normalize_rows


@dataclass
class Dataset:
    """A benchmark workload: base vectors, queries, optional attributes."""

    name: str
    train: np.ndarray  # (n, d) float32
    queries: np.ndarray  # (q, d) float32
    attributes: list[dict[str, Any]] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def dim(self) -> int:
        return self.train.shape[1]

    def __len__(self) -> int:
        return self.train.shape[0]


def gaussian_mixture(
    n: int = 10_000,
    dim: int = 32,
    num_clusters: int = 16,
    cluster_std: float = 0.4,
    num_queries: int = 100,
    seed: int = 0,
) -> Dataset:
    """Clustered embeddings — the shape real embedding spaces have.

    Cluster centers are unit-scale Gaussian; points scatter around them
    with ``cluster_std``, controlling how separable the clusters (and
    hence how easy IVF/LSH partitioning) are.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_clusters, dim))
    labels = rng.integers(num_clusters, size=n)
    train = centers[labels] + cluster_std * rng.standard_normal((n, dim))
    qlabels = rng.integers(num_clusters, size=num_queries)
    queries = centers[qlabels] + cluster_std * rng.standard_normal((num_queries, dim))
    return Dataset(
        name=f"gaussian_mixture(n={n},d={dim},k={num_clusters})",
        train=train.astype(VECTOR_DTYPE),
        queries=queries.astype(VECTOR_DTYPE),
        metadata={"num_clusters": num_clusters, "cluster_std": cluster_std,
                  "labels": labels},
    )


def uniform_hypercube(
    n: int = 10_000, dim: int = 32, num_queries: int = 100, seed: int = 0
) -> Dataset:
    """Uniform data — the worst case for distance meaningfulness [30]."""
    rng = np.random.default_rng(seed)
    return Dataset(
        name=f"uniform(n={n},d={dim})",
        train=rng.uniform(0, 1, size=(n, dim)).astype(VECTOR_DTYPE),
        queries=rng.uniform(0, 1, size=(num_queries, dim)).astype(VECTOR_DTYPE),
    )


def sift_like(
    n: int = 10_000, dim: int = 128, num_queries: int = 100, seed: int = 0
) -> Dataset:
    """SIFT1M-shaped workload: non-negative, heavy-tailed byte vectors.

    SIFT descriptors are 128-d uint8 histograms with strong per-dim
    scale differences; we emulate with clamped log-normal draws around
    mixture centers, quantized to [0, 255].
    """
    rng = np.random.default_rng(seed)
    num_clusters = 32
    centers = rng.lognormal(mean=2.0, sigma=1.0, size=(num_clusters, dim))

    def draw(count: int) -> np.ndarray:
        labels = rng.integers(num_clusters, size=count)
        raw = centers[labels] * rng.lognormal(0.0, 0.4, size=(count, dim))
        return np.clip(raw, 0, 255).astype(VECTOR_DTYPE)

    return Dataset(
        name=f"sift_like(n={n},d={dim})",
        train=draw(n),
        queries=draw(num_queries),
    )


def normalized_embeddings(
    n: int = 10_000, dim: int = 64, num_queries: int = 100, seed: int = 0
) -> Dataset:
    """Unit-norm vectors (sentence-embedding-like); for IP/cosine runs."""
    base = gaussian_mixture(n, dim, num_queries=num_queries, seed=seed)
    return Dataset(
        name=f"normalized(n={n},d={dim})",
        train=normalize_rows(base.train),
        queries=normalize_rows(base.queries),
        metadata=base.metadata,
    )


def hybrid_workload(
    n: int = 10_000,
    dim: int = 32,
    num_queries: int = 100,
    num_categories: int = 10,
    correlated: bool = False,
    seed: int = 0,
) -> Dataset:
    """Clustered vectors + structured attributes for hybrid queries.

    Attributes: ``category`` (int, uniform unless ``correlated``, in
    which case category follows the vector's cluster — the case where
    offline partitioning shines), ``price`` (float, log-normal) and
    ``rating`` (1..5 int).
    """
    base = gaussian_mixture(n, dim, num_queries=num_queries, seed=seed)
    rng = np.random.default_rng(seed + 1)
    if correlated:
        labels = base.metadata["labels"] % num_categories
    else:
        labels = rng.integers(num_categories, size=n)
    attributes = [
        {
            "category": int(labels[i]),
            "price": float(np.round(rng.lognormal(3.0, 0.7), 2)),
            "rating": int(rng.integers(1, 6)),
        }
        for i in range(n)
    ]
    return Dataset(
        name=f"hybrid(n={n},d={dim},cats={num_categories},corr={correlated})",
        train=base.train,
        queries=base.queries,
        attributes=attributes,
        metadata={"num_categories": num_categories, "correlated": correlated},
    )


def multi_vector_entities(
    num_entities: int = 2_000,
    vectors_per_entity: int = 3,
    dim: int = 32,
    num_queries: int = 50,
    query_vectors: int = 2,
    seed: int = 0,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Entities with several facet vectors + multi-vector queries (§2.1).

    Each entity has a latent center; its facet vectors scatter around
    it, as do the query groups — so ground truth is well defined under
    aggregate scores.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_entities, dim))
    entities = [
        (centers[i] + 0.3 * rng.standard_normal((vectors_per_entity, dim))).astype(
            VECTOR_DTYPE
        )
        for i in range(num_entities)
    ]
    targets = rng.integers(num_entities, size=num_queries)
    queries = np.stack(
        [
            centers[t] + 0.3 * rng.standard_normal((query_vectors, dim))
            for t in targets
        ]
    ).astype(VECTOR_DTYPE)
    return entities, queries


DATASETS = {
    "gaussian_mixture": gaussian_mixture,
    "uniform": uniform_hypercube,
    "sift_like": sift_like,
    "normalized": normalized_embeddings,
    "hybrid": hybrid_workload,
}
