"""Secure vector search (§2.6(4) — open problem, prototyped here)."""

from .dcpe import DcpeKey, SecureKnnClient, SecureSearchServer

__all__ = ["DcpeKey", "SecureKnnClient", "SecureSearchServer"]
