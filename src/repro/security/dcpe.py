"""Distance-comparison-preserving encryption (DCPE) for secure k-NN.

§2.6(4): "For multi-tenant systems, there is a need for techniques that
can support private and secure vector operations, such as secure k-NN
search [88, 93]."  The practical family behind those citations encrypts
vectors so an untrusted server can still *compare* distances without
learning the plaintexts.

The scheme here is the standard DCPE construction:

    Enc(x) = s * R @ (x + t) + e,   e ~ Uniform(ball of radius eps)

with secret key (R: random orthogonal matrix, s > 0: scale, t:
translation, eps: noise radius).  Properties:

* rotation + translation + uniform scaling are a similarity transform,
  so **L2 distance order is exactly preserved when eps = 0** and
  preserved up to a 2*s*eps additive slack otherwise — i.e. the server's
  top-k equals the client's top-k whenever true distance gaps exceed
  the slack;
* plaintext coordinates, norms, and inner products are hidden (every
  ciphertext coordinate mixes all plaintext coordinates through R).

This is a faithful prototype of the cited technique class, not a
security review: DCPE leaks distance *order* by design (that is what
makes server-side search possible) and eps trades approximation for
resistance to distance-based inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import VECTOR_DTYPE, SearchHit
from ..index.registry import make_index


@dataclass(frozen=True)
class DcpeKey:
    """The client's secret: rotation, scale, translation, noise radius."""

    rotation: np.ndarray  # (d, d) orthogonal
    scale: float
    translation: np.ndarray  # (d,)
    noise_radius: float

    @classmethod
    def generate(
        cls, dim: int, scale: float = 3.0, noise_radius: float = 0.0,
        seed: int | None = None,
    ) -> "DcpeKey":
        if scale <= 0:
            raise ValueError("scale must be positive")
        if noise_radius < 0:
            raise ValueError("noise_radius must be >= 0")
        rng = np.random.default_rng(seed)
        q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
        translation = rng.standard_normal(dim)
        return cls(q, float(scale), translation, float(noise_radius))

    @property
    def dim(self) -> int:
        return self.rotation.shape[0]


class SecureKnnClient:
    """Client side: encrypts vectors/queries, interprets results."""

    def __init__(self, key: DcpeKey, seed: int | None = None):
        self.key = key
        self._rng = np.random.default_rng(seed)

    def _noise(self, count: int) -> np.ndarray:
        if self.key.noise_radius == 0:
            return np.zeros((count, self.key.dim))
        # Uniform in the eps-ball: direction * radius with r^(1/d) law.
        directions = self._rng.standard_normal((count, self.key.dim))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = self.key.noise_radius * self._rng.uniform(
            size=(count, 1)
        ) ** (1.0 / self.key.dim)
        return directions * radii

    def encrypt(self, vectors: np.ndarray) -> np.ndarray:
        """Encrypt one vector or a batch (rows)."""
        arr = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if arr.shape[1] != self.key.dim:
            raise ValueError(f"expected dim {self.key.dim}, got {arr.shape[1]}")
        out = self.key.scale * (arr + self.key.translation) @ self.key.rotation.T
        out = out + self._noise(arr.shape[0])
        return out.astype(VECTOR_DTYPE)

    def plaintext_distance(self, ciphertext_distance: float) -> float:
        """Map a server-reported distance back to plaintext units."""
        return ciphertext_distance / self.key.scale

    def comparison_slack(self) -> float:
        """Max plaintext-distance gap the noise can invert.

        Two items whose true distances differ by more than this are
        always ordered correctly by the server.
        """
        return 2.0 * self.key.noise_radius / self.key.scale


class SecureSearchServer:
    """Untrusted server: indexes and searches ciphertexts only.

    Any registered index type works, because DCPE preserves the L2
    geometry the indexes rely on.
    """

    def __init__(self, index_type: str = "hnsw", **index_kwargs):
        self.index_type = index_type
        self.index_kwargs = index_kwargs
        self.index = None

    def load(self, encrypted_vectors: np.ndarray, ids: np.ndarray | None = None):
        self.index = make_index(self.index_type, **self.index_kwargs)
        self.index.build(encrypted_vectors, ids=ids)
        return self

    def search(self, encrypted_query: np.ndarray, k: int, **params) -> list[SearchHit]:
        if self.index is None:
            raise RuntimeError("server has no encrypted data loaded")
        return self.index.search(encrypted_query, k, **params)


def secure_knn_roundtrip(
    client: SecureKnnClient,
    server: SecureSearchServer,
    plaintext_vectors: np.ndarray,
    plaintext_query: np.ndarray,
    k: int,
    **params,
) -> list[SearchHit]:
    """Convenience: encrypt-load-search-decode in one call.

    Returned hits carry ids and *plaintext-unit* distances.
    """
    server.load(client.encrypt(plaintext_vectors))
    hits = server.search(client.encrypt(plaintext_query)[0], k, **params)
    return [
        SearchHit(h.id, client.plaintext_distance(h.distance)) for h in hits
    ]
