"""Post-filtering with a·k oversampling (§2.3, §2.6(3)).

Post-filtering runs an unrestricted index scan and applies the
predicate to the result set.  Its known hazard — the tutorial lists it
as an open problem — is returning fewer than k results: at selectivity
``s`` an unmodified top-k keeps only ~``s*k``.  The standard mitigation
retrieves ``a*k`` results before filtering.  "How to tune a remains
unclear" [79, 84], so we provide:

* :func:`postfilter_scan` — fixed ``a``.
* :func:`adaptive_postfilter_scan` — start from ``a = 1/s_hat`` (the
  expectation-matching choice) and double until k results survive or
  the whole collection has been ranked; reports the attempts so bench
  E8 can chart the retry cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..hybrid.predicates import Predicate
from ..observability.tracing import NOOP_SPAN


def _filter_hits(
    hits: list[SearchHit], mask: np.ndarray, stats: SearchStats
) -> list[SearchHit]:
    kept = []
    for hit in hits:
        stats.predicate_evaluations += 1
        if mask[hit.id]:
            kept.append(hit)
        else:
            stats.predicate_rejections += 1
    return kept


def postfilter_scan(
    index,
    collection,
    query: np.ndarray,
    k: int,
    predicate: Predicate | None,
    oversample: float = 1.0,
    stats: SearchStats | None = None,
    span=None,
    **params,
) -> list[SearchHit]:
    """Unrestricted index scan of ceil(a*k), then filter.

    May return fewer than k hits — by design; that is the behavior the
    tutorial highlights (acceptable for e-commerce per Vearch [12, 54]).
    """
    stats = stats if stats is not None else SearchStats()
    span = span if span is not None else NOOP_SPAN
    fetch = int(np.ceil(max(1.0, oversample) * k))
    hits = index.search(query, fetch, stats=stats, span=span, **params)
    with span.child(
        "filter", fetched=len(hits), oversample=round(float(oversample), 4)
    ).attach_stats(stats) as filter_span:
        mask = collection.predicate_mask(predicate)
        kept = _filter_hits(hits, mask, stats)[:k]
        filter_span.set(kept=len(kept))
    return kept


@dataclass
class AdaptiveResult:
    hits: list[SearchHit]
    attempts: int
    final_oversample: float


def adaptive_postfilter_scan(
    index,
    collection,
    query: np.ndarray,
    k: int,
    predicate: Predicate | None,
    selectivity_hint: float | None = None,
    max_attempts: int = 6,
    stats: SearchStats | None = None,
    span=None,
    **params,
) -> AdaptiveResult:
    """Retry with doubling a until k results survive the filter."""
    stats = stats if stats is not None else SearchStats()
    span = span if span is not None else NOOP_SPAN
    n = len(collection)
    mask = collection.predicate_mask(predicate)
    if selectivity_hint is None:
        selectivity_hint = max(float(mask.sum()) / max(1, n), 1e-6)
    oversample = max(1.0, 1.0 / selectivity_hint)
    attempts = 0
    hits: list[SearchHit] = []
    while attempts < max_attempts:
        attempts += 1
        fetch = min(n, int(np.ceil(oversample * k)))
        with span.child(
            "attempt",
            attempt=attempts,
            oversample=round(float(oversample), 4),
            fetch=fetch,
        ).attach_stats(stats) as attempt_span:
            raw = index.search(query, fetch, stats=stats, span=attempt_span, **params)
            hits = _filter_hits(raw, mask, stats)
            attempt_span.set(kept=len(hits))
        if len(hits) >= k or fetch >= n:
            break
        oversample *= 2.0
    span.set(attempts=attempts, final_oversample=round(float(oversample), 4))
    return AdaptiveResult(hits[:k], attempts, oversample)
