"""Offline blocking: attribute-partitioned indexes (§2.3).

Milvus [6, 79] pre-partitions the collection along frequently filtered
attributes so an equality-predicated query searches only the matching
partition — blocking is free at query time.  The cost: one sub-index
per distinct value, and predicates outside the partitioning attribute
fall back to online blocking.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..core.errors import PlanningError
from ..core.types import SearchHit, SearchStats
from ..hybrid.predicates import Comparison, In, Predicate


class AttributePartitionedIndex:
    """One sub-index per distinct value of a partitioning attribute.

    Parameters
    ----------
    index_factory:
        Zero-arg callable producing an unbuilt :class:`VectorIndex` for
        each partition.
    attribute:
        The partitioning attribute; must be low-cardinality.
    """

    def __init__(self, index_factory: Callable[[], Any], attribute: str):
        self.index_factory = index_factory
        self.attribute = attribute
        self._partitions: dict[Any, Any] = {}
        self._built = False

    def build(self, collection) -> "AttributePartitionedIndex":
        values = collection.columns.get(self.attribute)
        if values is None:
            raise PlanningError(
                f"collection has no attribute {self.attribute!r} to partition on"
            )
        self._partitions = {}
        for value in np.unique(values):
            positions = np.flatnonzero((values == value) & collection.alive)
            index = self.index_factory()
            index.build(collection.vectors[positions], ids=positions.astype(np.int64))
            self._partitions[value if not isinstance(value, np.generic) else value.item()] = index
        self._built = True
        return self

    @property
    def partition_values(self) -> list:
        return sorted(self._partitions, key=repr)

    def covers(self, predicate: Predicate | None) -> bool:
        """Whether offline blocking fully answers this predicate."""
        if predicate is None:
            return False
        if isinstance(predicate, Comparison):
            return predicate.attribute == self.attribute and predicate.op == "=="
        if isinstance(predicate, In):
            return predicate.attribute == self.attribute
        return False

    def _target_values(self, predicate: Predicate) -> list:
        if isinstance(predicate, Comparison):
            return [predicate.value]
        if isinstance(predicate, In):
            return list(predicate.values)
        raise PlanningError("predicate not covered by this partitioning")

    def search(
        self,
        query: np.ndarray,
        k: int,
        predicate: Predicate,
        stats: SearchStats | None = None,
        span: Any = None,
        **params: Any,
    ) -> list[SearchHit]:
        """Search only the partitions the predicate selects."""
        from ..observability.tracing import NOOP_SPAN

        if not self._built:
            raise PlanningError("AttributePartitionedIndex has not been built")
        if not self.covers(predicate):
            raise PlanningError(
                f"predicate {predicate!r} is not an equality/IN over"
                f" {self.attribute!r}; use online blocking instead"
            )
        stats = stats if stats is not None else SearchStats()
        span = span if span is not None else NOOP_SPAN
        hits: list[SearchHit] = []
        for value in self._target_values(predicate):
            index = self._partitions.get(value)
            if index is None:
                continue
            with span.child(
                "partition", partition=value, attribute=self.attribute
            ).attach_stats(stats) as part_span:
                hits.extend(
                    index.search(query, k, stats=stats, span=part_span, **params)
                )
        hits.sort()
        return hits[:k]

    def partition_sizes(self) -> dict[Any, int]:
        return {value: len(idx) for value, idx in self._partitions.items()}
