"""Boolean predicate AST over structured attributes (§2.1, §2.3).

Hybrid queries attach boolean predicates over entity attributes to a
vector search.  Predicates here are a small composable AST evaluated
*vectorized* against a column store (``dict[attr, np.ndarray]``), which
is what makes online bitmask blocking cheap (§2.3 block-first scan).

Selectivity estimation — the input to rule-based and cost-based plan
selection — is provided both exactly (evaluate and count) and from a
sample, mirroring how real optimizers trade accuracy for speed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..core.errors import PredicateError

ColumnStore = dict[str, np.ndarray]


def _column(columns: ColumnStore, attribute: str) -> np.ndarray:
    try:
        return columns[attribute]
    except KeyError:
        known = ", ".join(sorted(columns)) or "(none)"
        raise PredicateError(
            f"unknown attribute {attribute!r}; known attributes: {known}"
        ) from None


class Predicate(abc.ABC):
    """A boolean condition over attribute columns."""

    @abc.abstractmethod
    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        """Boolean mask, one entry per row of every column."""

    @abc.abstractmethod
    def attributes(self) -> set[str]:
        """Attribute names this predicate references."""

    # Composition sugar: (p1 & p2) | ~p3
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def selectivity(self, columns: ColumnStore, sample_size: int | None = None,
                    seed: int = 0) -> float:
        """Fraction of rows passing; exact, or estimated from a sample."""
        names = self.attributes()
        if not names:
            return 1.0
        n = len(_column(columns, next(iter(names))))
        if n == 0:
            return 0.0
        if sample_size is None or sample_size >= n:
            return float(self.evaluate(columns).mean())
        rng = np.random.default_rng(seed)
        rows = rng.choice(n, size=sample_size, replace=False)
        sampled = {name: columns[name][rows] for name in columns}
        return float(self.evaluate(sampled).mean())


@dataclass(frozen=True)
class Comparison(Predicate):
    """attribute <op> value, with op in ==, !=, <, <=, >, >=."""

    attribute: str
    op: str
    value: Any

    _OPS = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }

    def __post_init__(self):
        if self.op not in self._OPS:
            raise PredicateError(
                f"unknown operator {self.op!r}; expected one of {sorted(self._OPS)}"
            )

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        col = _column(columns, self.attribute)
        return self._OPS[self.op](col, self.value)

    def attributes(self) -> set[str]:
        return {self.attribute}


@dataclass(frozen=True)
class In(Predicate):
    """attribute IN (v1, v2, ...)."""

    attribute: str
    values: tuple

    def __init__(self, attribute: str, values: Sequence[Any]):
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", tuple(values))

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        col = _column(columns, self.attribute)
        return np.isin(col, np.asarray(self.values))

    def attributes(self) -> set[str]:
        return {self.attribute}


@dataclass(frozen=True)
class Between(Predicate):
    """low <= attribute <= high (inclusive range)."""

    attribute: str
    low: Any
    high: Any

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        col = _column(columns, self.attribute)
        return (col >= self.low) & (col <= self.high)

    def attributes(self) -> set[str]:
        return {self.attribute}


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        return self.left.evaluate(columns) & self.right.evaluate(columns)

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        return self.left.evaluate(columns) | self.right.evaluate(columns)

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        return ~self.inner.evaluate(columns)

    def attributes(self) -> set[str]:
        return self.inner.attributes()


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches everything (identity for And; default WHERE clause)."""

    def evaluate(self, columns: ColumnStore) -> np.ndarray:
        if not columns:
            raise PredicateError("cannot evaluate TruePredicate without columns")
        n = len(next(iter(columns.values())))
        return np.ones(n, dtype=bool)

    def attributes(self) -> set[str]:
        return set()


# Convenience constructors matching a fluent field("x") == 3 style.
class Field:
    """Fluent predicate builder: ``Field("price") < 20`` etc."""

    def __init__(self, attribute: str):
        self.attribute = attribute

    def __eq__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison(self.attribute, "==", value)

    def __ne__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison(self.attribute, "!=", value)

    def __lt__(self, value) -> Comparison:
        return Comparison(self.attribute, "<", value)

    def __le__(self, value) -> Comparison:
        return Comparison(self.attribute, "<=", value)

    def __gt__(self, value) -> Comparison:
        return Comparison(self.attribute, ">", value)

    def __ge__(self, value) -> Comparison:
        return Comparison(self.attribute, ">=", value)

    def isin(self, values: Sequence[Any]) -> In:
        return In(self.attribute, values)

    def between(self, low, high) -> Between:
        return Between(self.attribute, low, high)

    def __hash__(self):
        return hash(("Field", self.attribute))
