"""Hybrid (predicated) query processing: operators of §2.3."""

from .blockfirst import blocked_index_scan, online_bitmask, prefilter_scan
from .partitioned import AttributePartitionedIndex
from .postfilter import AdaptiveResult, adaptive_postfilter_scan, postfilter_scan
from .predicates import (
    And,
    Between,
    ColumnStore,
    Comparison,
    Field,
    In,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from .visitfirst import visit_first_scan, visit_first_search

__all__ = [
    "AdaptiveResult",
    "And",
    "AttributePartitionedIndex",
    "Between",
    "ColumnStore",
    "Comparison",
    "Field",
    "In",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "adaptive_postfilter_scan",
    "blocked_index_scan",
    "online_bitmask",
    "postfilter_scan",
    "prefilter_scan",
    "visit_first_scan",
    "visit_first_search",
]
