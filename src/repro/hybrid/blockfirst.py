"""Block-first scan (§2.3): filter the index, then scan it.

Two flavors from the tutorial:

* **Online blocking** — at query time, build a bitmask over ids with
  vectorized attribute filtering [6, 79, 84], then run the index scan
  with that mask (every index here accepts ``allowed``).  Flexible for
  arbitrary predicates; costs one pass over the attribute columns.
* **Offline blocking** — pre-partition the collection along an
  attribute so only the matching partition's index is searched at query
  time [6, 79] (see :mod:`repro.hybrid.partitioned`).

Also implements strict **pre-filtering** (evaluate the predicate first,
brute-force only the survivors), the plan that wins at very low
selectivity.
"""

from __future__ import annotations

import numpy as np

from ..core.operators import TableScan
from ..core.types import SearchHit, SearchStats
from ..hybrid.predicates import Predicate
from ..observability.tracing import NOOP_SPAN


def online_bitmask(collection, predicate: Predicate | None) -> np.ndarray:
    """Query-time bitmask over ids (liveness-aware)."""
    return collection.predicate_mask(predicate)


def blocked_index_scan(
    index,
    collection,
    query: np.ndarray,
    k: int,
    predicate: Predicate | None,
    stats: SearchStats | None = None,
    span=None,
    **params,
) -> list[SearchHit]:
    """Online block-first scan: bitmask + masked index traversal."""
    stats = stats if stats is not None else SearchStats()
    span = span if span is not None else NOOP_SPAN
    with span.child("bitmask").attach_stats(stats) as mask_span:
        mask = online_bitmask(collection, predicate)
        stats.predicate_evaluations += collection.capacity
        mask_span.set(selectivity=round(float(mask.mean()), 6) if mask.size else 0.0)
    return index.search(query, k, allowed=mask, stats=stats, span=span, **params)


def prefilter_scan(
    collection,
    query: np.ndarray,
    k: int,
    predicate: Predicate | None,
    score,
    stats: SearchStats | None = None,
    span=None,
) -> list[SearchHit]:
    """Strict pre-filtering: predicate first, exact scan of survivors.

    At selectivity s this costs s*n distance computations and returns
    exact results — unbeatable when s is tiny, hopeless when s ~ 1.
    """
    stats = stats if stats is not None else SearchStats()
    span = span if span is not None else NOOP_SPAN
    with span.child("bitmask").attach_stats(stats) as mask_span:
        mask = online_bitmask(collection, predicate)
        stats.predicate_evaluations += collection.capacity
        positions = np.flatnonzero(mask)
        mask_span.set(survivors=int(positions.size))
    if positions.size == 0:
        return []
    with span.child("table_scan", survivors=int(positions.size)).attach_stats(stats):
        scan = TableScan(
            collection.vectors[positions], positions.astype(np.int64, copy=False), score
        )
        return scan.run(query, k, stats=stats)
