"""Visit-first scan (§2.3): predicate-aware graph traversal.

Where block-first scan masks the index and searches as usual,
visit-first scan changes the *scan operator itself*: the best-first
traversal considers attribute values on visited nodes.  Following HQANN
[87] and Filtered-DiskANN-style operators [43]:

* the result set only admits predicate-passing nodes (single-stage
  filtering — no post-pass);
* blocked nodes remain traversable (preserving connectivity), but their
  frontier priority is *inflated* by ``penalty`` so expansion prefers
  passing nodes — the "scan prefers nodes that satisfy the predicate"
  bias that avoids backtracking at high selectivity;
* termination requires k passing results or frontier exhaustion within
  a node budget, so highly selective predicates degrade gracefully
  instead of looping.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..hybrid.predicates import Predicate
from ..scores import Score


def visit_first_search(
    vectors: np.ndarray,
    neighbors_of,
    entry_points: list[int],
    ids: np.ndarray,
    mask: np.ndarray,
    query: np.ndarray,
    k: int,
    score: Score,
    ef: int = 64,
    penalty: float = 1.5,
    max_visits: int | None = None,
    stats: SearchStats | None = None,
) -> list[SearchHit]:
    """Predicate-biased best-first search over a graph.

    Parameters
    ----------
    neighbors_of:
        Callable position -> neighbor positions (any graph index's
        adjacency).
    mask:
        Boolean allowed-mask over external ids.
    penalty:
        Multiplier applied to blocked nodes' frontier priority (> 1
        de-prioritizes them without disconnecting the search).
    max_visits:
        Expansion budget; defaults to ``8 * ef``.
    """
    stats = stats if stats is not None else SearchStats()
    if not entry_points:
        return []
    ef = max(ef, k)
    budget = max_visits if max_visits is not None else 8 * ef

    def passes(pos: int) -> bool:
        stats.predicate_evaluations += 1
        ok = bool(mask[int(ids[pos])])
        if not ok:
            stats.predicate_rejections += 1
        return ok

    entry = list(dict.fromkeys(int(e) for e in entry_points))
    dists = score.distances(query, vectors[np.asarray(entry)])
    stats.distance_computations += len(entry)

    visited = set(entry)
    frontier: list[tuple[float, int]] = []  # (priority, position)
    results: list[tuple[float, int]] = []  # max-heap of passing nodes
    for d, pos in zip(dists, entry):
        d = float(d)
        ok = passes(pos)
        heapq.heappush(frontier, (d if ok else d * penalty, pos))
        if ok:
            heapq.heappush(results, (-d, pos))
    while len(results) > ef:
        heapq.heappop(results)

    visits = 0
    while frontier and visits < budget:
        priority, pos = heapq.heappop(frontier)
        worst = -results[0][0] if len(results) >= ef else np.inf
        if priority > worst * penalty and len(results) >= k:
            break
        visits += 1
        stats.nodes_visited += 1
        fresh = [int(nb) for nb in neighbors_of(pos) if int(nb) not in visited]
        if not fresh:
            continue
        visited.update(fresh)
        nd = score.distances(query, vectors[np.asarray(fresh)])
        stats.distance_computations += len(fresh)
        for d, nb in zip(nd, fresh):
            d = float(d)
            ok = passes(nb)
            worst = -results[0][0] if len(results) >= ef else np.inf
            if d < worst or len(results) < ef or (not ok and d * penalty < worst):
                heapq.heappush(frontier, (d if ok else d * penalty, nb))
                if ok:
                    heapq.heappush(results, (-d, nb))
                    if len(results) > ef:
                        heapq.heappop(results)

    ordered = sorted((-d, pos) for d, pos in results)
    stats.candidates_examined += len(ordered)
    return [SearchHit(int(ids[pos]), float(d)) for d, pos in ordered[:k]]


def graph_entry_and_adjacency(index):
    """Extract (neighbors_of, entry_points) from any graph index.

    Works for :class:`~repro.index.graph_base.GraphIndex` subclasses and
    :class:`~repro.index.hnsw.HnswIndex` (bottom layer).
    """
    from ..index.graph_base import GraphIndex
    from ..index.hnsw import HnswIndex

    if isinstance(index, HnswIndex):
        return index.bottom_layer, [index.entry_point]
    if isinstance(index, GraphIndex):
        adjacency = index.adjacency
        return adjacency.__getitem__, [index.entry_point]
    raise TypeError(
        f"visit-first scan requires a graph index, got {type(index).__name__}"
    )


def visit_first_scan(
    index,
    collection,
    query: np.ndarray,
    k: int,
    predicate: Predicate | None,
    ef: int = 64,
    penalty: float = 1.5,
    stats: SearchStats | None = None,
) -> list[SearchHit]:
    """Single-stage filtered search on a graph index."""
    stats = stats if stats is not None else SearchStats()
    neighbors_of, entries = graph_entry_and_adjacency(index)
    mask = collection.predicate_mask(predicate)
    return visit_first_search(
        index._vectors,
        neighbors_of,
        entries,
        index._ids,
        mask,
        query,
        k,
        index.score,
        ef=ef,
        penalty=penalty,
        stats=stats,
    )
