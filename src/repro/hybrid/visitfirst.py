"""Visit-first scan (§2.3): predicate-aware graph traversal.

Where block-first scan masks the index and searches as usual,
visit-first scan changes the *scan operator itself*: the best-first
traversal considers attribute values on visited nodes.  Following HQANN
[87] and Filtered-DiskANN-style operators [43]:

* the result set only admits predicate-passing nodes (single-stage
  filtering — no post-pass);
* blocked nodes remain traversable (preserving connectivity), but their
  frontier priority is *inflated* by ``penalty`` so expansion prefers
  passing nodes — the "scan prefers nodes that satisfy the predicate"
  bias that avoids backtracking at high selectivity;
* termination requires k passing results or frontier exhaustion within
  a node budget, so highly selective predicates degrade gracefully
  instead of looping.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..hybrid.predicates import Predicate
from ..scores import Score


def visit_first_search(
    vectors: np.ndarray,
    neighbors_of,
    entry_points: list[int],
    ids: np.ndarray,
    mask: np.ndarray,
    query: np.ndarray,
    k: int,
    score: Score,
    ef: int = 64,
    penalty: float = 1.5,
    max_visits: int | None = None,
    stats: SearchStats | None = None,
) -> list[SearchHit]:
    """Predicate-biased best-first search over a graph.

    Parameters
    ----------
    neighbors_of:
        Callable position -> neighbor positions (any graph index's
        adjacency).
    mask:
        Boolean allowed-mask over external ids.
    penalty:
        Multiplier applied to blocked nodes' frontier priority (> 1
        de-prioritizes them without disconnecting the search).
    max_visits:
        Expansion budget; defaults to ``8 * ef``.
    """
    stats = stats if stats is not None else SearchStats()
    if not entry_points:
        return []
    ef = max(ef, k)
    budget = max_visits if max_visits is not None else 8 * ef
    n = vectors.shape[0]
    ids = np.asarray(ids)
    mask = np.asarray(mask, dtype=bool)

    def passes_batch(positions: np.ndarray) -> np.ndarray:
        """Vectorized predicate check with reference-equal accounting."""
        ok = mask[ids[positions]]
        stats.predicate_evaluations += positions.size
        stats.predicate_rejections += int(np.count_nonzero(~ok))
        return ok

    entry = np.asarray(
        list(dict.fromkeys(int(e) for e in entry_points)), dtype=np.int64
    )
    dists = score.distances(query, vectors[entry])
    stats.distance_computations += entry.size

    # Bitmap visited-set + batched gathers (same kernel shape as
    # repro.index._graph.beam_search).
    visited = np.zeros(n, dtype=bool)
    visited[entry] = True
    frontier: list[tuple[float, int]] = []  # (priority, position)
    results: list[tuple[float, int]] = []  # max-heap of passing nodes
    entry_ok = passes_batch(entry)
    for i in range(entry.size):
        d, pos = float(dists[i]), int(entry[i])
        heapq.heappush(frontier, (d if entry_ok[i] else d * penalty, pos))
        if entry_ok[i]:
            heapq.heappush(results, (-d, pos))
    while len(results) > ef:
        heapq.heappop(results)

    visits = 0
    while frontier and visits < budget:
        priority, pos = heapq.heappop(frontier)
        worst = -results[0][0] if len(results) >= ef else np.inf
        if priority > worst * penalty and len(results) >= k:
            break
        visits += 1
        stats.nodes_visited += 1
        neighbors = np.asarray(neighbors_of(pos), dtype=np.int64)
        if neighbors.size == 0:
            continue
        fresh = neighbors[~visited[neighbors]]
        if fresh.size == 0:
            continue
        visited[fresh] = True
        nd = score.distances(query, vectors[fresh])
        stats.distance_computations += fresh.size
        ok_arr = passes_batch(fresh)
        for i in range(fresh.size):
            d, nb, ok = float(nd[i]), int(fresh[i]), bool(ok_arr[i])
            worst = -results[0][0] if len(results) >= ef else np.inf
            if d < worst or len(results) < ef or (not ok and d * penalty < worst):
                heapq.heappush(frontier, (d if ok else d * penalty, nb))
                if ok:
                    heapq.heappush(results, (-d, nb))
                    if len(results) > ef:
                        heapq.heappop(results)

    ordered = sorted((-d, pos) for d, pos in results)
    stats.candidates_examined += len(ordered)
    return [SearchHit(int(ids[pos]), float(d)) for d, pos in ordered[:k]]


def graph_entry_and_adjacency(index):
    """Extract (neighbors_of, entry_points) from any graph index.

    Works for :class:`~repro.index.graph_base.GraphIndex` subclasses and
    :class:`~repro.index.hnsw.HnswIndex` (bottom layer).  The returned
    surface is the index's CSR-packed adjacency (callable), so callers
    get the vectorized traversal fast path for free.
    """
    from ..index.graph_base import GraphIndex
    from ..index.hnsw import HnswIndex

    if isinstance(index, HnswIndex):
        return index.bottom_layer, [index.entry_point]
    if isinstance(index, GraphIndex):
        return index.csr_adjacency, [index.entry_point]
    raise TypeError(
        f"visit-first scan requires a graph index, got {type(index).__name__}"
    )


def visit_first_scan(
    index,
    collection,
    query: np.ndarray,
    k: int,
    predicate: Predicate | None,
    ef: int = 64,
    penalty: float = 1.5,
    stats: SearchStats | None = None,
    span=None,
) -> list[SearchHit]:
    """Single-stage filtered search on a graph index."""
    from ..observability.tracing import NOOP_SPAN

    stats = stats if stats is not None else SearchStats()
    span = span if span is not None else NOOP_SPAN
    with span.child("bitmask").attach_stats(stats):
        neighbors_of, entries = graph_entry_and_adjacency(index)
        mask = collection.predicate_mask(predicate)
    with span.child(
        "traversal", ef=ef, penalty=penalty, index=index.name
    ).attach_stats(stats) as walk_span:
        hits = visit_first_search(
            index._vectors,
            neighbors_of,
            entries,
            index._ids,
            mask,
            query,
            k,
            index.score,
            ef=ef,
            penalty=penalty,
            stats=stats,
        )
        walk_span.set(hits=len(hits))
    return hits
