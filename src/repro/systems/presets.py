"""VDBMS design-point presets (§2.4 Existing Systems).

The tutorial's system survey is a comparison of *design choices*, not
codebases — mostly-vector natives keep one index and a predefined plan,
mostly-mixed natives add optimizers and multiple plans, extended
relational systems reuse an automatic planner with brute-force
fallback.  Each preset instantiates :class:`VectorDatabase` in one of
those quadrants, so the categories are directly comparable on the same
data (and bench E1 runs all three).
"""

from __future__ import annotations

from typing import Any

from ..core.database import VectorDatabase
from ..core.planner import PredefinedPlanner, QueryPlan


def mostly_vector(
    dim: int,
    score: str | Any = "l2",
    index_type: str = "hnsw",
    **index_kwargs: Any,
) -> VectorDatabase:
    """Mostly-vector native (Vearch/Pinecone/Chroma-like):

    one search index, no optimizer, every predicated query runs the
    same predefined post-filtering plan (§2.3 "Predefined").
    """
    db = VectorDatabase(
        dim,
        score=score,
        planner=PredefinedPlanner(
            plain_plan=QueryPlan("index_scan", "*"),
            hybrid_plan=QueryPlan("post_filter", "*"),
        ),
        selector="first",
    )
    db._pending_index = (index_type, index_kwargs)
    return db


def mostly_mixed(
    dim: int,
    score: str | Any = "l2",
    index_type: str = "hnsw",
    **index_kwargs: Any,
) -> VectorDatabase:
    """Mostly-mixed native (Milvus/Qdrant/Manu-like):

    automatic plan enumeration with a cost-based optimizer over the
    full hybrid-operator repertoire.
    """
    db = VectorDatabase(dim, score=score, planner="auto", selector="cost")
    db._pending_index = (index_type, index_kwargs)
    return db


def relational(dim: int, score: str | Any = "l2") -> VectorDatabase:
    """Extended relational (pgvector/PASE/SingleStore-like):

    the relational optimizer enumerates plans automatically; with no
    vector index created yet, every query falls back to the brute-force
    scan SingleStore demonstrates suffices (§2.4).  ``CREATE INDEX``
    (:meth:`VectorDatabase.create_index`) upgrades it in place, and the
    SQL surface in :mod:`repro.core.sql` applies.
    """
    return VectorDatabase(dim, score=score, planner="auto", selector="rule")


def build_preset_index(db: VectorDatabase, name: str = "primary") -> VectorDatabase:
    """Build the preset's deferred index once data is loaded."""
    pending = getattr(db, "_pending_index", None)
    if pending is not None and name not in db.indexes:
        index_type, kwargs = pending
        db.create_index(name, index_type, **kwargs)
    return db


SYSTEM_PRESETS = {
    "mostly_vector": mostly_vector,
    "mostly_mixed": mostly_mixed,
    "relational": relational,
}
