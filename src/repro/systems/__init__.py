"""System presets mirroring the survey's categories (§2.4)."""

from .presets import (
    SYSTEM_PRESETS,
    build_preset_index,
    mostly_mixed,
    mostly_vector,
    relational,
)

__all__ = [
    "SYSTEM_PRESETS",
    "build_preset_index",
    "mostly_mixed",
    "mostly_vector",
    "relational",
]
