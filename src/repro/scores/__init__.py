"""Similarity scores: basic, aggregate, and learned (§2.1 of the paper)."""

from .aggregate import AGGREGATORS, AggregateScore, WeightedSumAggregator
from .basic import (
    CosineScore,
    EuclideanScore,
    HammingScore,
    InnerProductScore,
    MahalanobisScore,
    MinkowskiScore,
    Score,
    SquaredEuclideanScore,
    normalize_rows,
)
from .learned import MetricLearningResult, learn_mahalanobis
from .registry import available_scores, get_score, register_score
from .selection import (
    ScoreRecommendation,
    concentration_ratio,
    recommend_score,
    relative_contrast,
)

__all__ = [
    "AGGREGATORS",
    "AggregateScore",
    "CosineScore",
    "EuclideanScore",
    "HammingScore",
    "InnerProductScore",
    "MahalanobisScore",
    "MetricLearningResult",
    "MinkowskiScore",
    "Score",
    "ScoreRecommendation",
    "SquaredEuclideanScore",
    "WeightedSumAggregator",
    "available_scores",
    "concentration_ratio",
    "get_score",
    "learn_mahalanobis",
    "normalize_rows",
    "recommend_score",
    "register_score",
    "relative_contrast",
]
