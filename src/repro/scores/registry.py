"""Score registry: resolve score names to :class:`Score` instances."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.errors import UnknownScoreError
from .basic import (
    CosineScore,
    EuclideanScore,
    HammingScore,
    InnerProductScore,
    MinkowskiScore,
    Score,
    SquaredEuclideanScore,
)

_FACTORIES: dict[str, Callable[[], Score]] = {
    "l2": EuclideanScore,
    "euclidean": EuclideanScore,
    "sqeuclidean": SquaredEuclideanScore,
    "ip": InnerProductScore,
    "inner_product": InnerProductScore,
    "dot": InnerProductScore,
    "cosine": CosineScore,
    "hamming": HammingScore,
    "l1": lambda: MinkowskiScore(1.0),
    "manhattan": lambda: MinkowskiScore(1.0),
    "linf": lambda: MinkowskiScore(np.inf),
    "chebyshev": lambda: MinkowskiScore(np.inf),
}


def register_score(name: str, factory: Callable[[], Score]) -> None:
    """Register a custom score factory under ``name``."""
    _FACTORIES[name.lower()] = factory


def available_scores() -> list[str]:
    return sorted(_FACTORIES)


def get_score(name_or_score: str | Score) -> Score:
    """Resolve a score name (or pass a Score through unchanged)."""
    if isinstance(name_or_score, Score):
        return name_or_score
    key = str(name_or_score).lower()
    if key.startswith("minkowski:"):
        return MinkowskiScore(float(key.split(":", 1)[1]))
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise UnknownScoreError(
            f"unknown score {name_or_score!r}; available: {', '.join(available_scores())}"
        ) from None
