"""Basic similarity scores (§2.1 "Score Design").

The tutorial classifies scores into *basic*, *aggregate*, and *learned*.
This module implements the basic scores it lists: Hamming distance, inner
product, cosine angle, Minkowski distance (including fractional norms),
and Mahalanobis distance.

Every score is exposed through the :class:`Score` interface, which maps
similarity onto a **distance** (smaller is better).  Similarity scores
(inner product, cosine) are negated or inverted so that indexes, top-k
operators, and the executor can all sort in one direction.  The raw
similarity is recoverable via :meth:`Score.similarity`.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.types import VECTOR_DTYPE


class Score(abc.ABC):
    """A similarity score expressed as a distance (smaller is better)."""

    #: registry name; subclasses override.
    name: str = "abstract"
    #: True when the underlying measure is a proper metric (triangle
    #: inequality holds), which some indexes (k-d tree pruning) rely on.
    is_metric: bool = False

    @abc.abstractmethod
    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Distances from one query (d,) to each row of ``vectors`` (n, d)."""

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """(len(a), len(b)) distance matrix.  Generic row-by-row fallback."""
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.float64)
        for i, row in enumerate(a):
            out[i] = self.distances(row, b)
        return out

    def distances_batch(self, queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """(len(queries), len(vectors)) distances with row-identity.

        Contract: row ``i`` must equal ``distances(queries[i], vectors)``
        *bitwise* — batched kernels rely on it for result-identity with
        their per-query references.  The base implementation loops, which
        guarantees the identity; overrides may fuse only when the fused
        arithmetic reduces in the same element order (c_einsum forms —
        not BLAS, whose blocking differs between GEMV and GEMM).
        """
        queries = np.atleast_2d(queries)
        vectors = np.atleast_2d(vectors)
        if queries.shape[0] == 0:
            return np.empty((0, vectors.shape[0]))
        return np.stack([self.distances(q, vectors) for q in queries])

    def similarity(self, distance: np.ndarray | float):
        """Map a distance back to the natural similarity orientation.

        For true distances this is the identity negated is meaningless, so
        the default returns ``-distance`` (bigger similarity = closer).
        """
        return -np.asarray(distance, dtype=np.float64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EuclideanScore(Score):
    """L2 distance, the default score of most VDBMSs."""

    name = "l2"
    is_metric = True

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        diff = vectors - query
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def distances_batch(self, queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        # Same subtraction and same per-element einsum reduction order
        # over the trailing axis as distances(), so each row is bitwise
        # identical to the per-query call.
        queries = np.atleast_2d(queries)
        vectors = np.atleast_2d(vectors)
        diff = vectors[None, :, :] - queries[:, None, :]
        return np.sqrt(np.einsum("qnd,qnd->qn", diff, diff))

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped for fp error.
        sq = (
            np.sum(a * a, axis=1)[:, None]
            + np.sum(b * b, axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        return np.sqrt(np.clip(sq, 0.0, None))


class SquaredEuclideanScore(Score):
    """Squared L2: same ordering as L2 but cheaper (no sqrt).

    Not a metric (triangle inequality fails), so tree pruning bounds must
    not assume it; ordering-only consumers (top-k) may use it freely.
    """

    name = "sqeuclidean"
    is_metric = False

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        diff = vectors - query
        return np.einsum("ij,ij->i", diff, diff)

    def distances_batch(self, queries: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        vectors = np.atleast_2d(vectors)
        diff = vectors[None, :, :] - queries[:, None, :]
        return np.einsum("qnd,qnd->qn", diff, diff)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return EuclideanScore().pairwise(a, b) ** 2


class InnerProductScore(Score):
    """Negative inner product (maximum inner product search, MIPS)."""

    name = "ip"
    is_metric = False

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        return -(vectors @ query)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        return -(a @ b.T)

    def similarity(self, distance):
        return -np.asarray(distance, dtype=np.float64)


class CosineScore(Score):
    """Cosine distance ``1 - cos(a, b)``.

    Zero vectors are treated as orthogonal to everything (distance 1),
    matching the convention of pgvector.
    """

    name = "cosine"
    is_metric = False

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        # Upcast so norms of tiny (subnormal float32) rows do not underflow
        # to zero and disagree with pairwise().
        query = np.asarray(query, dtype=np.float64)
        vectors = np.asarray(vectors, dtype=np.float64)
        qn = np.linalg.norm(query)
        vn = np.linalg.norm(vectors, axis=1)
        denom = qn * vn
        with np.errstate(divide="ignore", invalid="ignore"):
            cos = np.where(denom > 0, (vectors @ query) / denom, 0.0)
        return 1.0 - np.clip(cos, -1.0, 1.0)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        an = np.linalg.norm(a, axis=1)[:, None]
        bn = np.linalg.norm(b, axis=1)[None, :]
        denom = an * bn
        with np.errstate(divide="ignore", invalid="ignore"):
            cos = np.where(denom > 0, (a @ b.T) / denom, 0.0)
        return 1.0 - np.clip(cos, -1.0, 1.0)

    def similarity(self, distance):
        return 1.0 - np.asarray(distance, dtype=np.float64)


class MinkowskiScore(Score):
    """Minkowski (L_p) distance for any p > 0, plus L-infinity.

    Fractional p < 1 gives a quasinorm; the tutorial cites its use (and
    limits) as a curse-of-dimensionality mitigation [22, 61].
    """

    name = "minkowski"

    def __init__(self, p: float = 2.0):
        if p != np.inf and p <= 0:
            raise ValueError(f"p must be positive or inf, got {p}")
        self.p = float(p)
        self.is_metric = p >= 1.0
        if p == 1.0:
            self.name = "l1"
        elif p == 2.0:
            self.name = "l2"
        elif p == np.inf:
            self.name = "linf"
        else:
            self.name = f"minkowski_p{p:g}"

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        diff = np.abs(vectors - query)
        if self.p == np.inf:
            return diff.max(axis=1)
        if self.p == 1.0:
            return diff.sum(axis=1)
        return np.power(np.power(diff, self.p).sum(axis=1), 1.0 / self.p)

    def __repr__(self) -> str:
        return f"MinkowskiScore(p={self.p!r})"


class HammingScore(Score):
    """Hamming distance over binary or integer-coded vectors.

    Vectors are compared element-wise; the distance is the number of
    positions that differ.  Float inputs are binarized at 0.5 so that the
    score also works on {0,1}-valued float32 collections.
    """

    name = "hamming"
    is_metric = True

    @staticmethod
    def _binarize(x: np.ndarray) -> np.ndarray:
        if np.issubdtype(x.dtype, np.floating):
            return x >= 0.5
        return x.astype(bool, copy=False) if x.dtype != bool else x

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        q = self._binarize(np.asarray(query))
        v = self._binarize(np.asarray(vectors))
        return (v != q).sum(axis=1).astype(np.float64)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = self._binarize(np.atleast_2d(np.asarray(a)))
        b = self._binarize(np.atleast_2d(np.asarray(b)))
        # XOR via broadcasting in blocks to bound memory.
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.float64)
        for i, row in enumerate(a):
            out[i] = (b != row).sum(axis=1)
        return out


class MahalanobisScore(Score):
    """Mahalanobis distance under a positive-definite matrix ``M``.

    ``d(x, y) = sqrt((x-y)^T M (x-y))``.  With ``M`` the inverse data
    covariance this whitens correlated dimensions; with a learned ``M``
    (see :mod:`repro.scores.learned`) it is a learned score.
    """

    name = "mahalanobis"
    is_metric = True

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        # Cholesky both validates positive-definiteness and gives a linear
        # map L so that d_M(x,y) = ||L^T (x-y)||_2.
        self._chol = np.linalg.cholesky(matrix)
        self.matrix = matrix

    @classmethod
    def from_data(cls, data: np.ndarray, regularization: float = 1e-6):
        """Whitening Mahalanobis: M = (cov(data) + eps I)^-1."""
        data = np.asarray(data, dtype=np.float64)
        cov = np.cov(data, rowvar=False)
        cov = np.atleast_2d(cov)
        cov += regularization * np.eye(cov.shape[0])
        return cls(np.linalg.inv(cov))

    def _transform(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64) @ self._chol

    def distances(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        diff = self._transform(vectors) - self._transform(query)
        return np.sqrt(np.einsum("ij,ij->i", np.atleast_2d(diff), np.atleast_2d(diff)))

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return EuclideanScore().pairwise(
            self._transform(np.atleast_2d(a)), self._transform(np.atleast_2d(b))
        )

    def __repr__(self) -> str:
        return f"MahalanobisScore(dim={self.matrix.shape[0]})"


def normalize_rows(vectors: np.ndarray) -> np.ndarray:
    """Unit-normalize rows; zero rows stay zero.

    Cosine search over normalized vectors reduces to inner product, the
    standard trick real systems use to reuse an IP or L2 index for cosine.
    """
    vectors = np.asarray(vectors, dtype=VECTOR_DTYPE)
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(norms > 0, vectors / norms, vectors)
    return out.astype(VECTOR_DTYPE)
