"""Aggregate scores for multi-vector queries and entities (§2.1).

When an entity (or a query) is represented by several feature vectors, the
per-vector scores must be combined into one scalar so results can be
ranked.  The tutorial lists mean and weighted-sum aggregation [79]; we add
min and max, which correspond to "best single facet matches" and
"all facets must match" semantics respectively.

An :class:`AggregateScore` wraps a base :class:`~repro.scores.basic.Score`
and scores *groups* of vectors against *groups* of query vectors.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .basic import Score

# An aggregator reduces an (n_query_vectors, n_entity_vectors) distance
# matrix to one scalar distance for the entity.
Aggregator = Callable[[np.ndarray], float]


def mean_aggregator(block: np.ndarray) -> float:
    return float(block.mean())


def min_aggregator(block: np.ndarray) -> float:
    """Closest pair wins: good for "any facet matches" retrieval."""
    return float(block.min())


def max_aggregator(block: np.ndarray) -> float:
    """Worst pair decides: all query facets must be close."""
    return float(block.max())


def sum_of_min_aggregator(block: np.ndarray) -> float:
    """ColBERT-style late interaction: each query vector takes its best
    match among the entity's vectors, then the per-query-vector distances
    are summed."""
    return float(block.min(axis=1).sum())


class WeightedSumAggregator:
    """Weighted sum over query vectors (weights sum need not be 1).

    Each query vector's best distance to the entity is weighted; this is
    the "weighted sum" aggregate of [79] generalized to multi-vector
    entities.
    """

    def __init__(self, weights: Sequence[float]):
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")

    def __call__(self, block: np.ndarray) -> float:
        if block.shape[0] != self.weights.shape[0]:
            raise ValueError(
                f"{block.shape[0]} query vectors but {self.weights.shape[0]} weights"
            )
        return float(self.weights @ block.min(axis=1))


AGGREGATORS: dict[str, Aggregator] = {
    "mean": mean_aggregator,
    "min": min_aggregator,
    "max": max_aggregator,
    "sum_of_min": sum_of_min_aggregator,
}


class AggregateScore:
    """Scores multi-vector entities against multi-vector queries.

    Parameters
    ----------
    base:
        The per-vector score used for each (query vector, entity vector)
        pair.
    aggregator:
        Name from :data:`AGGREGATORS` or any callable reducing a distance
        block to a scalar.
    """

    def __init__(self, base: Score, aggregator: str | Aggregator = "mean"):
        self.base = base
        if isinstance(aggregator, str):
            try:
                self.aggregator: Aggregator = AGGREGATORS[aggregator]
            except KeyError:
                known = ", ".join(sorted(AGGREGATORS))
                raise ValueError(
                    f"unknown aggregator {aggregator!r}; known: {known}"
                ) from None
        else:
            self.aggregator = aggregator

    def entity_distance(
        self, query_vectors: np.ndarray, entity_vectors: np.ndarray
    ) -> float:
        """Aggregate distance between one query group and one entity group."""
        block = self.base.pairwise(
            np.atleast_2d(query_vectors), np.atleast_2d(entity_vectors)
        )
        return self.aggregator(block)

    def distances(
        self,
        query_vectors: np.ndarray,
        entities: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Aggregate distance from the query group to each entity group."""
        query_vectors = np.atleast_2d(query_vectors)
        return np.array(
            [self.entity_distance(query_vectors, ev) for ev in entities],
            dtype=np.float64,
        )

    def __repr__(self) -> str:
        agg = getattr(self.aggregator, "__name__", repr(self.aggregator))
        return f"AggregateScore(base={self.base!r}, aggregator={agg})"
