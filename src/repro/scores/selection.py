"""Score selection and curse-of-dimensionality diagnostics (§2.1).

The tutorial calls automatic score selection an open problem but surveys
the ingredients: distance concentration makes some scores meaningless in
high dimension [22, 30, 61], and the right score depends on data geometry
(normalized vs unnormalized embeddings, binary codes, correlated axes).

We implement the measurable part:

* :func:`relative_contrast` — the classic meaningfulness diagnostic from
  Beyer et al. [30]: the ratio of farthest to nearest neighbor distance.
  As it approaches 1, nearest-neighbor search stops being informative.
* :func:`concentration_ratio` — std/mean of pairwise distances, another
  concentration measure.
* :func:`recommend_score` — a transparent rule-based recommender using
  those diagnostics plus simple data properties, in the spirit of
  EuclidesDB's "query many scores, let the caller pick" compromise [14].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basic import (
    CosineScore,
    EuclideanScore,
    HammingScore,
    InnerProductScore,
    Score,
)


def _sample_rows(data: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    if data.shape[0] <= n:
        return data
    return data[rng.choice(data.shape[0], size=n, replace=False)]


def relative_contrast(
    data: np.ndarray,
    score: Score | None = None,
    n_queries: int = 32,
    seed: int = 0,
) -> float:
    """Mean ratio D_max / D_min over sampled queries (Beyer et al.).

    Values near 1 indicate distance concentration: the nearest and the
    farthest points are almost equally far, so the score carries little
    information.  Higher is better.
    """
    data = np.asarray(data, dtype=np.float64)
    score = score or EuclideanScore()
    rng = np.random.default_rng(seed)
    queries = _sample_rows(data, n_queries, rng)
    ratios = []
    for q in queries:
        d = score.distances(q, data)
        d = d[d > 0]  # exclude the query itself if present
        if d.size == 0:
            continue
        dmin = d.min()
        if dmin <= 0:
            continue
        ratios.append(d.max() / dmin)
    return float(np.mean(ratios)) if ratios else 1.0


def concentration_ratio(
    data: np.ndarray,
    score: Score | None = None,
    n_samples: int = 256,
    seed: int = 0,
) -> float:
    """std/mean of sampled pairwise distances; lower = more concentrated."""
    data = np.asarray(data, dtype=np.float64)
    score = score or EuclideanScore()
    rng = np.random.default_rng(seed)
    sample = _sample_rows(data, n_samples, rng)
    dmat = score.pairwise(sample, sample)
    upper = dmat[np.triu_indices(dmat.shape[0], k=1)]
    mean = upper.mean()
    if mean == 0:
        return 0.0
    return float(upper.std() / mean)


@dataclass
class ScoreRecommendation:
    """A recommended score plus the evidence behind the recommendation."""

    score: Score
    reason: str
    diagnostics: dict[str, float]


def recommend_score(data: np.ndarray, seed: int = 0) -> ScoreRecommendation:
    """Pick a sensible score for a dataset from measurable properties.

    Rules, in priority order:

    1. Binary-valued data -> Hamming.
    2. (Near-)unit-norm rows -> inner product (equivalent to cosine on the
       sphere, and cheaper).
    3. Widely varying norms -> cosine, to stop magnitude from dominating.
    4. Otherwise -> Euclidean; if its relative contrast is very low the
       recommendation notes the concentration risk.
    """
    data = np.asarray(data, dtype=np.float64)
    diagnostics: dict[str, float] = {}

    unique_vals = np.unique(data[: min(len(data), 64)])
    if unique_vals.size <= 2 and np.all(np.isin(unique_vals, (0.0, 1.0))):
        return ScoreRecommendation(
            HammingScore(), "binary-valued vectors", {"unique_values": float(unique_vals.size)}
        )

    norms = np.linalg.norm(data, axis=1)
    diagnostics["norm_mean"] = float(norms.mean())
    diagnostics["norm_cv"] = float(norms.std() / norms.mean()) if norms.mean() else 0.0

    if abs(diagnostics["norm_mean"] - 1.0) < 0.05 and diagnostics["norm_cv"] < 0.05:
        return ScoreRecommendation(
            InnerProductScore(),
            "rows are (near-)unit-norm: inner product == cosine and is cheapest",
            diagnostics,
        )

    if diagnostics["norm_cv"] > 0.5:
        return ScoreRecommendation(
            CosineScore(),
            "row norms vary widely; cosine removes magnitude effects",
            diagnostics,
        )

    contrast = relative_contrast(data, EuclideanScore(), seed=seed)
    diagnostics["relative_contrast"] = contrast
    reason = "general-purpose Euclidean distance"
    if contrast < 1.5:
        reason += (
            f" (warning: relative contrast {contrast:.2f} is low; distances are"
            " concentrated and nearest-neighbor results may be unstable)"
        )
    return ScoreRecommendation(EuclideanScore(), reason, diagnostics)
