"""Learned similarity scores (§2.1 "Score Design", metric learning).

The tutorial notes that query quality can improve by *learning* a score
over the vector space [21, 60, 91].  We implement the classic convex
formulation: learn a Mahalanobis matrix ``M`` from must-link /
cannot-link constraints so that similar pairs are pulled together and
dissimilar pairs pushed apart, optimized by projected gradient descent
onto the positive semi-definite cone (Xing et al.-style).

This is a faithful laptop-scale stand-in for the neural metric learning
the survey cites: the *interface* (fit pairs -> get a Score) and the
*effect* (constraint-satisfying rankings) are what downstream components
consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basic import MahalanobisScore


def _project_psd(matrix: np.ndarray, floor: float = 1e-8) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone (eigenvalue clipping)."""
    sym = (matrix + matrix.T) / 2.0
    eigvals, eigvecs = np.linalg.eigh(sym)
    eigvals = np.clip(eigvals, floor, None)
    return (eigvecs * eigvals) @ eigvecs.T


@dataclass
class MetricLearningResult:
    """Outcome of :func:`learn_mahalanobis`."""

    score: MahalanobisScore
    matrix: np.ndarray
    loss_history: list[float]


def learn_mahalanobis(
    data: np.ndarray,
    similar_pairs: list[tuple[int, int]],
    dissimilar_pairs: list[tuple[int, int]],
    margin: float = 1.0,
    learning_rate: float = 0.05,
    iterations: int = 200,
    seed: int | None = None,
) -> MetricLearningResult:
    """Learn a Mahalanobis score from pairwise constraints.

    Minimizes ``sum_sim d_M^2(x, y) + sum_dis max(0, margin - d_M^2(x, y))``
    over PSD matrices ``M`` by projected gradient descent.

    Parameters
    ----------
    data:
        (n, d) matrix; pair indices refer to its rows.
    similar_pairs / dissimilar_pairs:
        Index pairs that should be close / far under the learned metric.
    margin:
        Desired minimum squared distance between dissimilar pairs.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D matrix")
    if not similar_pairs and not dissimilar_pairs:
        raise ValueError("at least one constraint pair is required")
    rng = np.random.default_rng(seed)
    del rng  # deterministic; kept for future stochastic variants
    dim = data.shape[1]

    sim_diffs = np.array([data[i] - data[j] for i, j in similar_pairs]).reshape(
        -1, dim
    )
    dis_diffs = np.array([data[i] - data[j] for i, j in dissimilar_pairs]).reshape(
        -1, dim
    )

    matrix = np.eye(dim)
    loss_history: list[float] = []
    for _ in range(iterations):
        grad = np.zeros((dim, dim))
        loss = 0.0
        if sim_diffs.size:
            # d^2 = diff M diff^T ; gradient wrt M is diff^T diff.
            sq = np.einsum("ij,jk,ik->i", sim_diffs, matrix, sim_diffs)
            loss += float(sq.sum())
            grad += sim_diffs.T @ sim_diffs
        if dis_diffs.size:
            sq = np.einsum("ij,jk,ik->i", dis_diffs, matrix, dis_diffs)
            violating = sq < margin
            loss += float(np.clip(margin - sq, 0.0, None).sum())
            if violating.any():
                v = dis_diffs[violating]
                grad -= v.T @ v
        loss_history.append(loss)
        matrix = _project_psd(matrix - learning_rate * grad / max(1, len(sim_diffs) + len(dis_diffs)))

    # Re-floor eigenvalues so Cholesky in MahalanobisScore succeeds.
    matrix = _project_psd(matrix, floor=1e-6)
    return MetricLearningResult(
        score=MahalanobisScore(matrix), matrix=matrix, loss_history=loss_history
    )
