"""NGT-style index (Figure 1's "NGT") — neighborhood graph + tree.

Yahoo's NGT pairs two structures, and that pairing is what we
reproduce:

* **ANNG** (approximate neighborhood graph): nodes are inserted
  incrementally, each connected bidirectionally to its k nearest
  current members (found by searching the graph built so far), with a
  degree cap enforced by distance-ranked truncation;
* a **tree** (NGT uses a VP-tree) whose only job at query time is to
  pick good *entry points* for the graph traversal — replacing NSW's
  random restarts with data-adapted seeds.  We use an RP-tree, which
  serves the same role without metric-specific machinery.
"""

from __future__ import annotations

import numpy as np

from ..scores import Score
from ._graph import Adjacency, beam_search
from ._kernels import topk_indices
from ._tree import TreeNode, best_first_search, build_tree
from .graph_base import GraphIndex
from .rptree import _rp_split


class NgtIndex(GraphIndex):
    """ANNG + tree-seeded search.

    Parameters
    ----------
    edge_size:
        k — bidirectional edges created per insertion (NGT's
        ``edge_size_for_creation``).
    max_degree:
        Degree cap; overflowing nodes keep their closest neighbors
        (NGT's truncation, simpler than occlusion pruning).
    seed_leaves:
        Tree leaves inspected to choose entry points per query.
    """

    name = "ngt"
    supports_updates = True

    def __init__(
        self,
        score: Score | str = "l2",
        edge_size: int = 10,
        max_degree: int = 24,
        ef_construction: int = 48,
        ef_search: int = 64,
        seed_leaves: int = 2,
        leaf_size: int = 16,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        if edge_size <= 0:
            raise ValueError("edge_size must be positive")
        self.edge_size = edge_size
        self.max_degree = max(max_degree, edge_size)
        self.ef_construction = ef_construction
        self.seed_leaves = seed_leaves
        self.leaf_size = leaf_size
        self._tree: TreeNode | None = None

    # ------------------------------------------------------------------ build

    def _truncate(self, node: int, adjacency: Adjacency) -> None:
        neighbors = adjacency[node]
        if neighbors.shape[0] <= self.max_degree:
            return
        d = self.score.distances(self._vectors[node], self._vectors[neighbors])
        adjacency[node] = neighbors[topk_indices(d, self.max_degree)]

    def _insert_position(self, pos: int, adjacency: Adjacency) -> None:
        if pos == 0:
            return
        pairs = beam_search(
            self._vectors[pos],
            self._vectors,
            lambda n: adjacency[n],
            [0] if pos < 4 else [0, pos // 2],
            max(self.edge_size, self.ef_construction),
            self.score,
        )
        targets = [p for _, p in pairs[: self.edge_size]]
        adjacency[pos] = np.asarray(targets, dtype=np.int64)
        for t in targets:
            adjacency[t] = np.append(adjacency[t], pos)
            self._truncate(t, adjacency)

    def _build_graph(self) -> Adjacency:
        n = self._vectors.shape[0]
        adjacency: Adjacency = [np.empty(0, dtype=np.int64) for _ in range(n)]
        for pos in range(n):
            self._insert_position(pos, adjacency)
        self._rebuild_tree()
        return adjacency

    def _rebuild_tree(self) -> None:
        data = self._vectors.astype(np.float64)
        self._tree = build_tree(
            np.arange(data.shape[0], dtype=np.int64),
            data,
            _rp_split(jitter=0.15),
            self.leaf_size,
            np.random.default_rng(self.seed),
        )
        self._tree_data = data

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._require_built()
        from ..core.types import as_matrix

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, ids])
        for offset in range(matrix.shape[0]):
            self._adjacency.append(np.empty(0, dtype=np.int64))
            self._insert_position(start + offset, self._adjacency)
        self._invalidate_csr()
        self._rebuild_tree()

    # ----------------------------------------------------------------- search

    def _entry_points(self, query: np.ndarray) -> list[int]:
        """Tree-selected seeds: the contents of the query's nearest
        leaves, reduced to the closest few candidates."""
        if self._tree is None:
            return [self._entry_point]
        positions, _ = best_first_search(
            [self._tree], query.astype(np.float64), max_leaves=self.seed_leaves
        )
        if positions.size == 0:
            return [self._entry_point]
        d = self.score.distances(query, self._vectors[positions])
        return [int(positions[i]) for i in topk_indices(d, 3)]

    def memory_bytes(self) -> int:
        from ._tree import count_nodes

        graph = super().memory_bytes()
        tree = 0 if self._tree is None else count_nodes(self._tree) * (
            self._vectors.shape[1] * 8 + 32
        )
        return graph + tree
