"""Shared traversal machinery for graph-based indexes (§2.2, graph-based).

Every graph index — KNNG, NSW, HNSW, NSG, Vamana/DiskANN, FANNG — pairs
an adjacency structure with the same *best-first (beam) search*: keep a
frontier of the closest unexpanded nodes and a result set of the ``ef``
closest seen, expand the closest frontier node, stop when the frontier
can no longer improve the results.

The ``allowed`` mask implements bitmask block-first scan on graphs
(§2.3): blocked nodes are traversed *through* (else the induced subgraph
may disconnect, as [3, 43, 87] observe) but never enter the result set.
Visit-first scan, which biases expansion itself, lives in
:mod:`repro.hybrid.visitfirst` on top of the same adjacency.

Two implementations of the traversal live here:

* :func:`beam_search` — the vectorized kernel: a numpy bool bitmap for
  the visited set, one slice gathering all unvisited neighbors of an
  expansion, one batched ``score.distances`` call per expansion, and a
  vectorized beam-threshold prefilter so the result heap only ever sees
  candidates that can actually enter it.  Accepts a
  :class:`~repro.index._kernels.CSRAdjacency` (the fast path — flat
  int64 ``indices``/``indptr`` arrays, no per-node object dereference),
  a ``list[np.ndarray]``, or a callable.
* :func:`beam_search_reference` — the original scalar implementation
  (Python ``set`` visited-set, per-neighbor heapq churn), kept verbatim
  for differential testing: both functions return identical (distance,
  position) pairs and charge identical ``SearchStats`` counts on any
  input (see ``tests/test_kernels.py``).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.types import SearchStats
from ..scores import Score
from ._kernels import CSRAdjacency

#: Adjacency representation shared by all graph indexes: one int64 array
#: of neighbor positions per node position.  Graph indexes lazily pack
#: this into a :class:`CSRAdjacency` for searching.
Adjacency = list[np.ndarray]


def beam_search(
    query: np.ndarray,
    vectors: np.ndarray,
    adjacency,  # CSRAdjacency, Adjacency, or callable position -> neighbors
    entry_points: np.ndarray | list[int],
    ef: int,
    score: Score,
    stats: SearchStats | None = None,
    allowed: np.ndarray | None = None,
    ids: np.ndarray | None = None,
) -> list[tuple[float, int]]:
    """Best-first search; returns up to ``ef`` (distance, position) pairs.

    Vectorized kernel: behaviorally identical to
    :func:`beam_search_reference` (same results, same stats counts) but
    with a bitmap visited-set, batched neighbor filtering/scoring, and a
    beam-threshold prefilter in place of per-element heap churn.

    Parameters
    ----------
    entry_points:
        Node positions to seed the frontier with.
    ef:
        Result-set width; bigger explores more (recall knob).
    allowed:
        Optional boolean mask over *external ids*; nodes whose id is
        masked out are expanded but excluded from results.
    ids:
        Position -> external id mapping used with ``allowed`` (defaults
        to identity).
    """
    if ef <= 0:
        return []
    n = vectors.shape[0]
    if n == 0:
        return []
    csr = adjacency if isinstance(adjacency, CSRAdjacency) else None
    if csr is not None:
        indptr, flat_indices = csr.indptr, csr.indices
        neighbors_of = None
    else:
        neighbors_of = adjacency if callable(adjacency) else adjacency.__getitem__
    entry = np.asarray(
        list(dict.fromkeys(int(e) for e in entry_points)), dtype=np.int64
    )
    if entry.size == 0:
        return []
    dists = score.distances(query, vectors[entry])
    if stats is not None:
        stats.distance_computations += entry.size
    ids_arr = None if ids is None else np.asarray(ids)

    visited = np.zeros(n, dtype=bool)
    visited[entry] = True
    heappush, heappop = heapq.heappush, heapq.heappop
    heappushpop = heapq.heappushpop

    # Frontier: min-heap by distance.  Results: max-heap of size ef.
    frontier: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    entry_ok = None
    if allowed is not None:
        entry_ok = allowed[entry] if ids_arr is None else allowed[ids_arr[entry]]
    for i in range(entry.size):
        d, e = float(dists[i]), int(entry[i])
        heappush(frontier, (d, e))
        if entry_ok is None or entry_ok[i]:
            heappush(results, (-d, e))
    while len(results) > ef:
        heappop(results)

    inf = float("inf")
    while frontier:
        d_cand, cand = heappop(frontier)
        worst = -results[0][0] if len(results) >= ef else inf
        if d_cand > worst:
            break
        if stats is not None:
            stats.nodes_visited += 1
        if csr is not None:
            neighbors = flat_indices[indptr[cand] : indptr[cand + 1]]
        else:
            neighbors = np.asarray(neighbors_of(cand), dtype=np.int64)
        if neighbors.size == 0:
            continue
        # One gather filters every already-visited neighbor at once.
        fresh = neighbors[~visited[neighbors]]
        if fresh.size == 0:
            continue
        visited[fresh] = True
        nd = score.distances(query, vectors[fresh])
        if stats is not None:
            stats.distance_computations += fresh.size
        worst = -results[0][0] if len(results) >= ef else inf
        if len(results) >= ef:
            # Once full, ``worst`` only shrinks: anything at/over the
            # current beam threshold can never be admitted, so drop it
            # before touching the heaps.
            keep = nd < worst
            fresh, nd = fresh[keep], nd[keep]
            if fresh.size == 0:
                continue
        ok = None
        if allowed is not None:
            ok = allowed[fresh] if ids_arr is None else allowed[ids_arr[fresh]]
        # Bulk-convert once: numpy scalar extraction inside the loop
        # costs ~100ns per element, tolist() is a single C pass.
        nd = nd.tolist()
        fresh = fresh.tolist()
        for i in range(len(fresh)):
            dist, node = nd[i], fresh[i]
            if dist < worst or len(results) < ef:
                heappush(frontier, (dist, node))
                if ok is None or ok[i]:
                    if len(results) >= ef:
                        heappushpop(results, (-dist, node))
                        worst = -results[0][0]
                    else:
                        heappush(results, (-dist, node))
                        if len(results) >= ef:
                            worst = -results[0][0]

    out = [(-d, n_) for d, n_ in results]
    out.sort()
    return out


#: Frontier nodes expanded per round by :func:`batched_beam_search`.
#: Wider rounds amortize the per-round numpy fixed costs over more
#: gathered neighbors; narrower rounds track the beam bound more
#: tightly.  8 is a good trade for degree ~16-100 graphs.
BATCH_POP_WIDTH = 8


def batched_beam_search(
    queries: np.ndarray,
    vectors: np.ndarray,
    adjacency,  # CSRAdjacency, Adjacency, or callable position -> neighbors
    entry_points: np.ndarray | list[int],
    ef: int,
    score: Score,
    stats: SearchStats | None = None,
    allowed: np.ndarray | None = None,
    ids: np.ndarray | None = None,
    width: int = BATCH_POP_WIDTH,
) -> list[list[tuple[float, int]]]:
    """Merged-frontier best-first search for a group of similar queries.

    The group shares **one** frontier: a node's priority is its distance
    to the *nearest* group member, and each round pops up to ``width``
    nodes, gathers all their unvisited neighbors with one concatenated
    CSR slice, and scores the merged candidate set against every query
    in one fused ``score.distances_batch`` pass.  Each query keeps its
    own top-``ef`` result pool — updated per round with one vectorized
    ``argpartition`` over (pool | candidates) — and the traversal stops
    when the frontier's best node cannot improve *any* member's pool
    (the solo beam bound, taken over the group).

    Because scoring is fused, every member sees every expanded node, so
    the per-query visited bitmaps provably stay equal and collapse into
    a single shared bitmap: each node is gathered and scored **once per
    group** instead of once per member, which is where the batch win
    comes from.

    Semantics versus per-member :func:`beam_search`: the group bound is
    the *maximum* of the members' solo beam bounds, so the merged
    traversal expands a superset of what the tightest member would and
    each member's pool is filled from a candidate stream at least as
    rich as its solo stream.  Results are not bitwise-identical to solo
    search (tie-breaking at the pool boundary and exploration order
    differ) but are deterministic for fixed inputs, and recall is
    empirically at or above the per-member reference on clustered
    batches (see ``tests/test_multivector_batched.py``).

    ``SearchStats`` accounting reflects the shared work honestly:
    ``nodes_visited`` counts *group* expansions (each node once per
    group, not once per member) and ``distance_computations`` counts the
    fused pass cost (``g`` distances per scored candidate).

    Returns one pair list per query, sorted by (distance, position).
    """
    queries = np.atleast_2d(np.asarray(queries))
    g = queries.shape[0]
    if g == 0:
        return []
    n = vectors.shape[0]
    empty: list[list[tuple[float, int]]] = [[] for _ in range(g)]
    if ef <= 0 or n == 0:
        return empty
    csr = adjacency if isinstance(adjacency, CSRAdjacency) else None
    if csr is not None:
        indptr, flat_indices = csr.indptr, csr.indices
        neighbors_of = None
    else:
        neighbors_of = adjacency if callable(adjacency) else adjacency.__getitem__
    entry = np.asarray(
        list(dict.fromkeys(int(e) for e in entry_points)), dtype=np.int64
    )
    if entry.size == 0:
        return empty
    ids_arr = None if ids is None else np.asarray(ids)
    heappush, heappop = heapq.heappush, heapq.heappop
    inf = float("inf")

    visited = np.zeros(n, dtype=bool)
    visited[entry] = True

    # Per-query top-ef pools as (g, ef) arrays; +inf marks empty slots.
    pool_d = np.full((g, ef), inf, dtype=np.float64)
    pool_i = np.full((g, ef), -1, dtype=np.int64)

    def admit(cand_nodes: np.ndarray, cand_d: np.ndarray) -> None:
        """Merge a scored candidate block into every pool at once."""
        nonlocal pool_d, pool_i, group_bound
        if allowed is not None:
            ok = (
                allowed[cand_nodes]
                if ids_arr is None
                else allowed[ids_arr[cand_nodes]]
            )
            if not ok.all():
                cand_d = np.where(ok[None, :], cand_d, inf)
        cat_d = np.concatenate([pool_d, cand_d], axis=1)
        cat_i = np.concatenate(
            [pool_i, np.broadcast_to(cand_nodes, cand_d.shape)], axis=1
        )
        part = np.argpartition(cat_d, ef - 1, axis=1)[:, :ef]
        pool_d = np.take_along_axis(cat_d, part, axis=1)
        pool_i = np.take_along_axis(cat_i, part, axis=1)
        # A frontier node can improve *some* member iff it beats that
        # member's worst pooled distance; the group bound is the loosest.
        group_bound = float(pool_d.max(axis=1).max())

    group_bound = inf
    entry_d = score.distances_batch(queries, vectors[entry]).astype(
        np.float64, copy=False
    )
    if stats is not None:
        stats.distance_computations += g * entry.size
    admit(entry, entry_d)

    frontier: list[tuple[float, int]] = []
    for prio, node in zip(entry_d.min(axis=0).tolist(), entry.tolist()):
        heappush(frontier, (prio, node))

    while frontier:
        batch: list[int] = []
        while frontier and len(batch) < width:
            d_cand, cand = heappop(frontier)
            if d_cand > group_bound:
                # Min-heap: every remaining node is at least this far
                # from every member, so nothing left can be admitted.
                frontier.clear()
                break
            batch.append(cand)
        if not batch:
            break
        if stats is not None:
            stats.nodes_visited += len(batch)
        if csr is not None:
            parts = [flat_indices[indptr[v] : indptr[v + 1]] for v in batch]
        else:
            parts = [np.asarray(neighbors_of(v), dtype=np.int64) for v in batch]
        nbrs = np.concatenate(parts) if len(parts) > 1 else parts[0]
        if nbrs.size == 0:
            continue
        fresh = nbrs[~visited[nbrs]]
        if fresh.size == 0:
            continue
        # unique() both removes intra-round duplicates and fixes the
        # scoring order (sorted by position) for determinism.
        fresh = np.unique(fresh)
        visited[fresh] = True
        nd = score.distances_batch(queries, vectors[fresh]).astype(
            np.float64, copy=False
        )
        if stats is not None:
            stats.distance_computations += g * fresh.size
        prio = nd.min(axis=0)
        push = prio <= group_bound
        for p, node in zip(prio[push].tolist(), fresh[push].tolist()):
            heappush(frontier, (p, node))
        admit(fresh, nd)

    out: list[list[tuple[float, int]]] = []
    for i in range(g):
        row_d, row_i = pool_d[i], pool_i[i]
        real = np.isfinite(row_d)
        order = np.lexsort((row_i[real], row_d[real]))
        out.append(
            list(zip(row_d[real][order].tolist(), row_i[real][order].tolist()))
        )
    return out


def beam_search_reference(
    query: np.ndarray,
    vectors: np.ndarray,
    adjacency,  # Adjacency, or a callable position -> neighbor array
    entry_points: np.ndarray | list[int],
    ef: int,
    score: Score,
    stats: SearchStats | None = None,
    allowed: np.ndarray | None = None,
    ids: np.ndarray | None = None,
) -> list[tuple[float, int]]:
    """The original scalar best-first search, kept as the differential-
    testing oracle for :func:`beam_search`.  Do not optimize this."""
    if ef <= 0:
        return []
    neighbors_of = adjacency if callable(adjacency) else adjacency.__getitem__
    entry = np.asarray(list(dict.fromkeys(int(e) for e in entry_points)), dtype=np.int64)
    if entry.size == 0:
        return []
    dists = score.distances(query, vectors[entry])
    if stats is not None:
        stats.distance_computations += entry.size

    def id_ok(position: int) -> bool:
        if allowed is None:
            return True
        ext = position if ids is None else int(ids[position])
        return bool(allowed[ext])

    visited: set[int] = set(int(e) for e in entry)
    # Frontier: min-heap by distance.  Results: max-heap of size ef.
    frontier: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    for d, e in zip(dists, entry):
        heapq.heappush(frontier, (float(d), int(e)))
        if id_ok(int(e)):
            heapq.heappush(results, (-float(d), int(e)))
    while len(results) > ef:
        heapq.heappop(results)

    while frontier:
        d_cand, cand = heapq.heappop(frontier)
        worst = -results[0][0] if len(results) >= ef else np.inf
        if d_cand > worst:
            break
        if stats is not None:
            stats.nodes_visited += 1
        neighbors = [n for n in neighbors_of(cand) if int(n) not in visited]
        if not neighbors:
            continue
        neighbors_arr = np.asarray(neighbors, dtype=np.int64)
        visited.update(int(n) for n in neighbors_arr)
        nd = score.distances(query, vectors[neighbors_arr])
        if stats is not None:
            stats.distance_computations += neighbors_arr.size
        worst = -results[0][0] if len(results) >= ef else np.inf
        for dist, node in zip(nd, neighbors_arr):
            dist = float(dist)
            node = int(node)
            if dist < worst or len(results) < ef:
                heapq.heappush(frontier, (dist, node))
                if id_ok(node):
                    heapq.heappush(results, (-dist, node))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0] if len(results) >= ef else np.inf

    out = [(-d, n) for d, n in results]
    out.sort()
    return out


def greedy_walk(
    query: np.ndarray,
    vectors: np.ndarray,
    adjacency,  # Adjacency, or a callable position -> neighbor array
    start: int,
    score: Score,
    stats: SearchStats | None = None,
) -> tuple[int, float, list[int]]:
    """Pure greedy descent (beam width 1); returns (node, distance, path).

    Used by MSN construction (search trials) and as the upper-layer
    routing step of HNSW.
    """
    neighbors_of = adjacency if callable(adjacency) else adjacency.__getitem__
    current = int(start)
    current_dist = float(score.distances(query, vectors[current : current + 1])[0])
    if stats is not None:
        stats.distance_computations += 1
    path = [current]
    improved = True
    while improved:
        improved = False
        neighbors = neighbors_of(current)
        if len(neighbors) == 0:
            break
        nd = score.distances(query, vectors[neighbors])
        if stats is not None:
            stats.distance_computations += len(neighbors)
            stats.nodes_visited += 1
        best = int(nd.argmin())
        if float(nd[best]) < current_dist:
            current = int(neighbors[best])
            current_dist = float(nd[best])
            path.append(current)
            improved = True
    return current, current_dist, path


def medoid(vectors: np.ndarray) -> int:
    """Position of the vector closest to the dataset mean (cheap medoid)."""
    center = vectors.mean(axis=0)
    diff = vectors - center
    return int(np.einsum("ij,ij->i", diff, diff).argmin())


def robust_prune(
    candidate_positions: np.ndarray,
    candidate_distances: np.ndarray,
    vectors: np.ndarray,
    max_degree: int,
    score: Score,
    alpha: float = 1.0,
) -> np.ndarray:
    """Vamana's RobustPrune / the MRNG-style occlusion rule.

    Scan candidates by ascending distance; keep one if no already-kept
    neighbor "occludes" it, i.e. ``alpha * d(kept, cand) < d(query_node,
    cand)``.  ``alpha > 1`` keeps longer-range edges (DiskANN's knob);
    ``alpha == 1`` is the classic monotonic (RNG) rule used by NSG.
    """
    order = np.argsort(candidate_distances, kind="stable")
    kept: list[int] = []
    kept_vecs: list[np.ndarray] = []
    for idx in order:
        cand = int(candidate_positions[idx])
        d_cand = float(candidate_distances[idx])
        occluded = False
        if kept:
            kd = score.distances(vectors[cand], np.asarray(kept_vecs))
            occluded = bool((alpha * kd < d_cand).any())
        if not occluded:
            kept.append(cand)
            kept_vecs.append(vectors[cand])
            if len(kept) >= max_degree:
                break
    return np.asarray(kept, dtype=np.int64)


def ensure_connected(
    adjacency: Adjacency,
    vectors: np.ndarray,
    root: int,
    score: Score,
    max_degree: int,
) -> int:
    """Attach unreachable components to their nearest reachable node.

    NSG runs exactly this spanning step after pruning.  Returns the
    number of edges added.
    """
    n = len(adjacency)
    seen = np.zeros(n, dtype=bool)
    stack = [root]
    seen[root] = True
    while stack:
        node = stack.pop()
        for nb in adjacency[node]:
            nb = int(nb)
            if not seen[nb]:
                seen[nb] = True
                stack.append(nb)
    added = 0
    while not seen.all():
        orphan = int(np.flatnonzero(~seen)[0])
        reachable = np.flatnonzero(seen)
        d = score.distances(vectors[orphan], vectors[reachable])
        anchor = int(reachable[d.argmin()])
        adjacency[anchor] = np.append(adjacency[anchor], orphan)[-max(max_degree, len(adjacency[anchor]) + 1):]
        added += 1
        # Flood from the orphan (its whole component becomes reachable).
        stack = [orphan]
        seen[orphan] = True
        while stack:
            node = stack.pop()
            for nb in adjacency[node]:
                nb = int(nb)
                if not seen[nb]:
                    seen[nb] = True
                    stack.append(nb)
    return added


def graph_degree_stats(adjacency: Adjacency) -> dict[str, float]:
    degrees = np.array([len(a) for a in adjacency], dtype=np.float64)
    return {
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
        "max_degree": float(degrees.max()) if degrees.size else 0.0,
        "min_degree": float(degrees.min()) if degrees.size else 0.0,
        "num_edges": float(degrees.sum()),
    }
