"""Random projection tree (RPTree) index [33, 34] (§2.2, tree-based).

RP-trees avoid the principal-component pre-processing of PCA trees by
splitting on *random unit directions* with a *randomly perturbed*
threshold: Dasgupta & Freund choose the split point uniformly in an
interval around the median of the projections, which provably adapts to
low intrinsic dimensionality.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._tree import TreeNode, best_first_search, build_tree, tree_stats, unit
from .base import VectorIndex


def _rp_split(jitter: float):
    """Random direction, threshold = median +- jitter*spread*U(-1,1)."""

    def choose(rows: np.ndarray, rng: np.random.Generator):
        w = unit(rng.standard_normal(rows.shape[1]))
        proj = rows @ w
        spread = proj.max() - proj.min()
        if spread == 0:
            return None
        t = float(np.median(proj) + jitter * spread * rng.uniform(-1.0, 1.0))
        if not proj.min() < t <= proj.max():
            t = float(np.median(proj))
        return w, t

    return choose


class RpTreeIndex(VectorIndex):
    """A forest of random projection trees.

    Parameters
    ----------
    num_trees:
        Forest size (1 = the plain RPTree).
    jitter:
        Width of the random threshold perturbation as a fraction of the
        projection spread (0 gives exact-median splits).
    max_leaves:
        Default total leaf budget across the forest per query.
    """

    name = "rp_tree"
    family = "tree"

    def __init__(
        self,
        score: Score | str = "l2",
        num_trees: int = 4,
        leaf_size: int = 16,
        jitter: float = 0.25,
        max_leaves: int = 64,
        seed: int = 0,
    ):
        super().__init__(score)
        if num_trees <= 0:
            raise ValueError("num_trees must be positive")
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.jitter = jitter
        self.max_leaves = max_leaves
        self.seed = seed
        self._roots: list[TreeNode] = []

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        positions = np.arange(data.shape[0], dtype=np.int64)
        split = _rp_split(self.jitter)
        self._roots = [
            build_tree(
                positions, data, split, self.leaf_size, np.random.default_rng(self.seed + t)
            )
            for t in range(self.num_trees)
        ]

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        max_leaves: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"RpTreeIndex.search got unknown params {sorted(params)}")
        budget = max(1, max_leaves if max_leaves is not None else self.max_leaves)
        positions, leaves = best_first_search(
            self._roots, query.astype(np.float64), max_leaves=budget
        )
        stats.nodes_visited += leaves
        return self._brute_force(query, k, positions, allowed, stats)

    def stats(self) -> list[dict[str, float]]:
        self._require_built()
        return [tree_stats(r) for r in self._roots]
