"""NN-Descent (KGraph [36]) and EFANNA-style initialization (§2.2).

NN-Descent approximates the KNNG far below the O(N^2) brute-force cost
by iterative refinement: "a neighbor of a neighbor is likely a
neighbor".  Each round performs a *local join* — for every node, pairs
drawn from its current neighbors (and reverse neighbors) are compared
and better edges replace worse ones — until updates dry up.

EFANNA's improvement is the starting point: instead of a random graph,
initialize from a forest of randomized k-d trees (points sharing a leaf
are likely neighbors), which cuts the rounds needed to converge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scores import Score
from ._graph import Adjacency
from ._kernels import topk_indices
from ._tree import build_tree
from .graph_base import GraphIndex
from .randkd import _random_top_axis_split


@dataclass
class NnDescentResult:
    """Adjacency plus convergence diagnostics."""

    neighbor_ids: np.ndarray  # (n, k) sorted by distance
    neighbor_dists: np.ndarray  # (n, k)
    iterations: int
    distance_computations: int
    updates_per_iteration: list[int]

    def to_adjacency(self) -> Adjacency:
        return [np.asarray(row, dtype=np.int64) for row in self.neighbor_ids]


def _random_init(
    n: int, k: int, vectors: np.ndarray, score: Score, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, int]:
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    comps = 0
    for i in range(n):
        choices = rng.choice(n - 1, size=k, replace=False)
        choices[choices >= i] += 1  # skip self
        d = score.distances(vectors[i], vectors[choices])
        comps += k
        order = np.argsort(d, kind="stable")
        ids[i] = choices[order]
        dists[i] = d[order]
    return ids, dists, comps


def _forest_init(
    n: int,
    k: int,
    vectors: np.ndarray,
    score: Score,
    rng: np.random.Generator,
    num_trees: int,
    leaf_size: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """EFANNA-style: neighbors initialized from kd-forest leaf co-members."""
    candidate_sets: list[set[int]] = [set() for _ in range(n)]
    split = _random_top_axis_split(top_axes=5)
    positions = np.arange(n, dtype=np.int64)
    for t in range(num_trees):
        tree_rng = np.random.default_rng(rng.integers(2**31))
        root = build_tree(positions, vectors.astype(np.float64), split, leaf_size, tree_rng)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                members = node.positions
                for m in members:
                    candidate_sets[int(m)].update(int(x) for x in members if x != m)
            else:
                stack.extend((node.left, node.right))

    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    comps = 0
    for i in range(n):
        cands = np.fromiter(candidate_sets[i], dtype=np.int64, count=len(candidate_sets[i]))
        if cands.size < k:  # pad with random distinct nodes
            pad = rng.choice(n - 1, size=k - cands.size + 1, replace=False)
            pad[pad >= i] += 1
            cands = np.unique(np.concatenate([cands, pad]))
            cands = cands[cands != i]
        d = score.distances(vectors[i], vectors[cands])
        comps += cands.size
        order = topk_indices(d, k)
        ids[i] = cands[order]
        dists[i] = d[order]
    return ids, dists, comps


def nn_descent(
    vectors: np.ndarray,
    k: int,
    score: Score,
    max_iterations: int = 10,
    sample_rate: float = 1.0,
    termination_delta: float = 0.001,
    init: str = "random",
    num_trees: int = 4,
    leaf_size: int = 16,
    seed: int = 0,
) -> NnDescentResult:
    """Approximate the KNNG by iterative local joins.

    Parameters
    ----------
    sample_rate:
        Fraction of each node's neighborhood joined per round (rho in
        the paper); 1.0 joins the full neighborhood.
    termination_delta:
        Stop when updates per round fall below ``delta * n * k``.
    init:
        ``"random"`` (KGraph) or ``"forest"`` (EFANNA).
    """
    vectors = np.asarray(vectors)
    n = vectors.shape[0]
    if n == 0:
        return NnDescentResult(
            np.empty((0, 0), np.int64), np.empty((0, 0)), 0, 0, []
        )
    k = min(k, n - 1)
    if k <= 0:
        return NnDescentResult(
            np.empty((n, 0), np.int64), np.empty((n, 0)), 0, 0, []
        )
    rng = np.random.default_rng(seed)
    if init == "forest":
        ids, dists, comps = _forest_init(
            n, k, vectors, score, rng, num_trees, leaf_size
        )
    elif init == "random":
        ids, dists, comps = _random_init(n, k, vectors, score, rng)
    else:
        raise ValueError(f"unknown init {init!r}")

    is_new = np.ones((n, k), dtype=bool)
    updates_history: list[int] = []
    iterations = 0

    def try_insert(node: int, cand: int, dist: float) -> int:
        """Insert cand into node's sorted list if it improves; dedupe."""
        row_ids = ids[node]
        if dist >= dists[node, -1] or cand == node:
            return 0
        if cand in row_ids:
            return 0
        pos = int(np.searchsorted(dists[node], dist))
        ids[node, pos + 1 :] = ids[node, pos:-1]
        dists[node, pos + 1 :] = dists[node, pos:-1]
        is_new[node, pos + 1 :] = is_new[node, pos:-1]
        ids[node, pos] = cand
        dists[node, pos] = dist
        is_new[node, pos] = True
        return 1

    for iterations in range(1, max_iterations + 1):
        # Reverse neighborhoods for the general join, split by edge
        # freshness (Dong et al.'s new/old distinction — joining only
        # pairs with at least one *new* member is what keeps rounds
        # cheap once the graph has mostly converged).
        reverse_new: list[list[int]] = [[] for _ in range(n)]
        reverse_old: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            for j, fresh in zip(ids[i], is_new[i]):
                (reverse_new if fresh else reverse_old)[int(j)].append(i)

        total_updates = 0
        for i in range(n):
            fwd_new = ids[i][is_new[i]]
            fwd_old = ids[i][~is_new[i]]
            rev_new = np.asarray(reverse_new[i], dtype=np.int64)
            rev_old = np.asarray(reverse_old[i], dtype=np.int64)
            if sample_rate < 1.0:
                if rev_new.size:
                    take = max(1, int(rev_new.size * sample_rate))
                    rev_new = rng.choice(rev_new, size=take, replace=False)
                if rev_old.size:
                    take = max(1, int(rev_old.size * sample_rate))
                    rev_old = rng.choice(rev_old, size=take, replace=False)
            new_part = np.unique(np.concatenate([fwd_new, rev_new]))
            old_part = np.unique(np.concatenate([fwd_old, rev_old]))
            old_part = np.setdiff1d(old_part, new_part, assume_unique=True)
            is_new[i] = False
            if new_part.size == 0:
                continue
            # Local join: new x new and new x old.
            for group in (new_part, old_part):
                if group.size == 0:
                    continue
                dmat = score.pairwise(vectors[new_part], vectors[group])
                comps += dmat.size
                for a_idx, a in enumerate(new_part):
                    for b_idx, b in enumerate(group):
                        a_i, b_i = int(a), int(b)
                        if a_i >= b_i and group is new_part:
                            continue  # each unordered pair once
                        if a_i == b_i:
                            continue
                        d = float(dmat[a_idx, b_idx])
                        total_updates += try_insert(a_i, b_i, d)
                        total_updates += try_insert(b_i, a_i, d)
        updates_history.append(total_updates)
        if total_updates <= termination_delta * n * k:
            break

    return NnDescentResult(
        neighbor_ids=ids,
        neighbor_dists=dists,
        iterations=iterations,
        distance_computations=comps,
        updates_per_iteration=updates_history,
    )


def knng_recall(approx_ids: np.ndarray, exact: Adjacency) -> float:
    """Fraction of true KNNG edges recovered by an approximate graph."""
    hits = 0
    total = 0
    for i, truth in enumerate(exact):
        t = set(int(x) for x in truth)
        if not t:
            continue
        hits += len(t.intersection(int(x) for x in approx_ids[i][: len(t)]))
        total += len(t)
    return hits / total if total else 1.0


class NnDescentIndex(GraphIndex):
    """A searchable index over the NN-Descent graph.

    Parameters
    ----------
    graph_k:
        Neighbor-list width.
    init:
        ``"random"`` (KGraph) or ``"forest"`` (EFANNA initialization).
    """

    name = "nndescent"

    def __init__(
        self,
        score: Score | str = "l2",
        graph_k: int = 16,
        max_iterations: int = 10,
        init: str = "random",
        ef_search: int = 64,
        num_entry_points: int = 4,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        self.graph_k = graph_k
        self.max_iterations = max_iterations
        self.init = init
        self.num_entry_points = num_entry_points
        self.result: NnDescentResult | None = None

    def _build_graph(self) -> Adjacency:
        self.result = nn_descent(
            self._vectors,
            self.graph_k,
            self.score,
            max_iterations=self.max_iterations,
            init=self.init,
            seed=self.seed,
        )
        return self.result.to_adjacency()

    def _entry_points(self, query: np.ndarray) -> list[int]:
        n = self._vectors.shape[0]
        rng = np.random.default_rng(self.seed)
        count = min(self.num_entry_points, n)
        points = [self._entry_point]
        points.extend(int(p) for p in rng.choice(n, size=count, replace=False))
        return points
