"""k-d tree index (§2.2, tree-based).

The fundamental deterministic tree [33, 69]: each internal node splits
on the coordinate axis of maximum spread at the median.  Supports both
exact search (branch-and-bound backtracking, valid for L2) and the
approximate "visit at most ``max_leaves`` leaves" mode that FLANN-style
systems use — the tradeoff bench E5 sweeps that knob.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._tree import TreeNode, best_first_search, build_tree, tree_stats, unit
from .base import VectorIndex


def _kd_split(rows: np.ndarray, rng: np.random.Generator):
    """Median split on the axis of maximum spread (classic k-d rule)."""
    spread = rows.max(axis=0) - rows.min(axis=0)
    axis = int(spread.argmax())
    if spread[axis] == 0:
        return None  # all points identical
    w = np.zeros(rows.shape[1], dtype=np.float64)
    w[axis] = 1.0
    t = float(np.median(rows[:, axis]))
    # Guard against a median equal to the max (all mass on one side).
    if t >= rows[:, axis].max():
        t = float(rows[:, axis].mean())
    return w, t


class KdTreeIndex(VectorIndex):
    """Deterministic k-d tree with exact and approximate search modes.

    Parameters
    ----------
    leaf_size:
        Maximum points per leaf.
    max_leaves:
        Default leaf-visit budget for approximate search; ``None`` means
        exact branch-and-bound (L2 only).
    """

    name = "kdtree"
    family = "tree"

    def __init__(
        self,
        score: Score | str = "l2",
        leaf_size: int = 16,
        max_leaves: int | None = None,
        seed: int = 0,
    ):
        super().__init__(score)
        if leaf_size <= 0:
            raise ValueError("leaf_size must be positive")
        self.leaf_size = leaf_size
        self.max_leaves = max_leaves
        self.seed = seed
        self._root: TreeNode | None = None

    def _build(self) -> None:
        rng = np.random.default_rng(self.seed)
        data = self._vectors.astype(np.float64)
        self._data64 = data
        self._root = build_tree(
            np.arange(data.shape[0], dtype=np.int64),
            data,
            _kd_split,
            self.leaf_size,
            rng,
        )

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        max_leaves: int | None = None,
        exact: bool | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"KdTreeIndex.search got unknown params {sorted(params)}")
        budget = max_leaves if max_leaves is not None else self.max_leaves
        run_exact = exact if exact is not None else budget is None
        q = query.astype(np.float64)
        if run_exact:
            # Branch-and-bound needs a metric; only L2 qualifies here.  A
            # predicate mask breaks the bound (the k-th *allowed* neighbor
            # may be farther), so over-collect by searching unmasked and
            # re-ranking the union under the mask.
            exact_arg = (self._data64, k if allowed is None else 4 * k)
            positions, leaves = best_first_search(
                [self._root], q, max_leaves=None, exact_l2_k=exact_arg
            )
        else:
            positions, leaves = best_first_search(
                [self._root], q, max_leaves=max(1, budget)
            )
        stats.nodes_visited += leaves
        return self._brute_force(query, k, positions, allowed, stats)

    def stats(self) -> dict[str, float]:
        """Tree shape statistics (depth should be ~log2(n/leaf_size))."""
        self._require_built()
        return tree_stats(self._root)

    def memory_bytes(self) -> int:
        if self._root is None:
            return 0
        from ._tree import count_nodes

        # w vector + threshold + two pointers per node, roughly.
        return count_nodes(self._root) * (self._vectors.shape[1] * 8 + 32)


def make_unit_axis(dim: int, axis: int) -> np.ndarray:
    """One-hot direction vector (exposed for tests)."""
    w = np.zeros(dim, dtype=np.float64)
    w[axis] = 1.0
    return unit(w)
