"""Principal-component trees: PCA tree and PKD-style rotation (§2.2).

A principal component tree "first finds the principal components of the
dataset, and then splits along the principal axes".  We implement two
variants from the tutorial:

* ``rotate=False`` — split every node on the locally strongest principal
  direction (plain PCA tree).
* ``rotate=True`` — PKD-tree style [72]: rotate *through* the top
  principal axes by depth, so sibling subtrees cut along different
  components.

Principal components are computed once on the full dataset (the
"expensive pre-processing step" the tutorial says random-projection
trees avoid); per-node we only project.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._tree import TreeNode, best_first_search, tree_stats, unit
from .base import VectorIndex


def principal_axes(data: np.ndarray, top: int) -> np.ndarray:
    """Top principal directions of ``data`` as rows (unit vectors)."""
    centered = data - data.mean(axis=0)
    # SVD of the data matrix is numerically kinder than eigh(cov).
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[:top]


class PcaTreeIndex(VectorIndex):
    """Binary tree splitting along (globally computed) principal axes.

    Parameters
    ----------
    num_axes:
        How many top principal components to rotate through / choose from.
    rotate:
        PKD-style axis rotation by depth instead of always the strongest
        local component.
    max_leaves:
        Default approximate-search leaf budget.
    """

    name = "pca_tree"
    family = "tree"

    def __init__(
        self,
        score: Score | str = "l2",
        leaf_size: int = 16,
        num_axes: int = 8,
        rotate: bool = True,
        max_leaves: int = 32,
        seed: int = 0,
    ):
        super().__init__(score)
        self.leaf_size = leaf_size
        self.num_axes = num_axes
        self.rotate = rotate
        self.max_leaves = max_leaves
        self.seed = seed
        self._root: TreeNode | None = None
        self.axes: np.ndarray | None = None

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        self._data64 = data
        top = min(self.num_axes, data.shape[1], max(1, data.shape[0] - 1))
        self.axes = np.array([unit(a) for a in principal_axes(data, top)])

        def build(positions: np.ndarray, depth: int) -> TreeNode:
            if positions.shape[0] <= self.leaf_size:
                return TreeNode(positions=positions)
            rows = data[positions]
            if self.rotate:
                w = self.axes[depth % self.axes.shape[0]]
            else:
                # Strongest axis locally: max projection variance.
                variances = (rows @ self.axes.T).var(axis=0)
                w = self.axes[int(variances.argmax())]
            proj = rows @ w
            t = float(np.median(proj))
            go_left = proj < t
            if go_left.all() or not go_left.any():
                return TreeNode(positions=positions)
            return TreeNode(
                w=w,
                t=t,
                left=build(positions[go_left], depth + 1),
                right=build(positions[~go_left], depth + 1),
            )

        self._root = build(np.arange(data.shape[0], dtype=np.int64), 0)

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        max_leaves: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"PcaTreeIndex.search got unknown params {sorted(params)}")
        budget = max(1, max_leaves if max_leaves is not None else self.max_leaves)
        positions, leaves = best_first_search(
            [self._root], query.astype(np.float64), max_leaves=budget
        )
        stats.nodes_visited += leaves
        return self._brute_force(query, k, positions, allowed, stats)

    def stats(self) -> dict[str, float]:
        self._require_built()
        return tree_stats(self._root)
