"""FANNG [47] — MSN construction by random search trials (§2.2).

Where NSG routes every construction search through one navigating node,
FANNG "performs a large number of search trials over random node pairs":
pick random (source, target), run greedy best-first from the source
toward the target's vector, and if the search gets stuck before reaching
the target, add an edge from the stuck node to the target.  New edges
are kept in occlusion-pruned order so degree stays bounded.

The trial count trades construction time for monotonicity; bench E6
sweeps it.
"""

from __future__ import annotations

import numpy as np

from ..scores import Score
from ._graph import Adjacency, greedy_walk, robust_prune
from .graph_base import GraphIndex
from .nndescent import nn_descent


class FanngIndex(GraphIndex):
    """Search-trial-constructed MSN approximation.

    Parameters
    ----------
    max_degree:
        Degree cap enforced by occlusion pruning.
    num_trials:
        Random (source, target) search trials.  The paper runs a large
        multiple of N; we default to 4N (set at build time when None).
    init_knng_k:
        Seed graph width (a small NN-Descent KNNG); 0 starts empty.
    """

    name = "fanng"

    def __init__(
        self,
        score: Score | str = "l2",
        max_degree: int = 16,
        num_trials: int | None = None,
        init_knng_k: int = 8,
        ef_search: int = 64,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        self.max_degree = max_degree
        self.num_trials = num_trials
        self.init_knng_k = init_knng_k
        self.failed_trials = 0
        self.edges_added = 0

    def _add_edge(self, adjacency: Adjacency, source: int, target: int) -> None:
        merged = np.append(adjacency[source], target)
        if merged.shape[0] > self.max_degree:
            d = self.score.distances(self._vectors[source], self._vectors[merged])
            merged = robust_prune(
                merged, d, self._vectors, self.max_degree, self.score, alpha=1.0
            )
        adjacency[source] = merged
        self.edges_added += 1

    def _build_graph(self) -> Adjacency:
        n = self._vectors.shape[0]
        if n <= 1:
            return [np.empty(0, dtype=np.int64) for _ in range(n)]
        if self.init_knng_k > 0:
            adjacency = nn_descent(
                self._vectors,
                min(self.init_knng_k, n - 1),
                self.score,
                seed=self.seed,
            ).to_adjacency()
        else:
            adjacency = [np.empty(0, dtype=np.int64) for _ in range(n)]

        rng = np.random.default_rng(self.seed)
        trials = self.num_trials if self.num_trials is not None else 4 * n
        self.failed_trials = 0
        for _ in range(trials):
            source = int(rng.integers(n))
            target = int(rng.integers(n))
            if source == target:
                continue
            stuck, _, _ = greedy_walk(
                self._vectors[target], self._vectors, adjacency, source, self.score
            )
            if stuck != target:
                # No monotonic path: patch the graph where the walk stalled.
                self.failed_trials += 1
                self._add_edge(adjacency, stuck, target)
        return adjacency

    def _entry_points(self, query: np.ndarray) -> list[int]:
        n = self._vectors.shape[0]
        rng = np.random.default_rng(self.seed)
        points = [self._entry_point]
        if n > 2:
            points.extend(int(p) for p in rng.choice(n, size=2, replace=False))
        return points

    def monotonicity_rate(self, num_trials: int = 200, seed: int = 1) -> float:
        """Fraction of random pairs with a working greedy path (diagnostic)."""
        self._require_built()
        n = self._vectors.shape[0]
        if n <= 1:
            return 1.0
        rng = np.random.default_rng(seed)
        ok = 0
        for _ in range(num_trials):
            source, target = int(rng.integers(n)), int(rng.integers(n))
            if source == target:
                ok += 1
                continue
            stuck, _, _ = greedy_walk(
                self._vectors[target], self._vectors, self._adjacency, source, self.score
            )
            ok += stuck == target
        return ok / num_trials
