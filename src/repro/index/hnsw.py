"""Hierarchical navigable small world graph (HNSW) [58] (§2.2).

HNSW fixes NSW's local-minimum problem with layers: each node draws a
maximum layer from an exponentially decaying distribution, upper layers
form sparse long-range graphs, and a query greedily descends layer by
layer before running a beam search on the dense bottom layer.  Degree
explosion is avoided by capping per-layer degree and pruning with the
*heuristic neighbor selection* of Algorithm 4 (an occlusion rule, the
same idea NSG/Vamana use).

This is the index most VDBMSs ship as their default (§2.4), so it also
backs our system presets.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._graph import beam_search, greedy_walk
from ._kernels import CSRAdjacency
from .base import VectorIndex

# A layer's adjacency: node position -> neighbor positions.
Layer = dict[int, np.ndarray]


class HnswIndex(VectorIndex):
    """Hierarchical NSW with heuristic neighbor selection.

    Parameters
    ----------
    m:
        Target degree (M).  Layer 0 allows 2M (Mmax0, as in the paper).
    ef_construction:
        Beam width while inserting.
    ef_search:
        Default beam width at query time (>= k).
    level_multiplier:
        mL; defaults to 1/ln(M) per the paper.
    """

    name = "hnsw"
    family = "graph"
    supports_updates = True

    def __init__(
        self,
        score: Score | str = "l2",
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        level_multiplier: float | None = None,
        seed: int = 0,
    ):
        super().__init__(score)
        if m <= 1:
            raise ValueError("m must be > 1")
        self.m = m
        self.max_degree0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.level_multiplier = (
            level_multiplier if level_multiplier is not None else 1.0 / math.log(m)
        )
        self.seed = seed
        self._layers: list[Layer] = []
        self._node_levels: np.ndarray | None = None
        self._entry: int = -1
        self._csr0: CSRAdjacency | None = None
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ build

    def _draw_level(self) -> int:
        u = float(self._rng.uniform(1e-12, 1.0))
        return int(-math.log(u) * self.level_multiplier)

    def _select_neighbors_heuristic(
        self, candidates: list[tuple[float, int]], max_degree: int
    ) -> list[int]:
        """Algorithm 4: keep a candidate only if it is closer to the base
        point than to every neighbor already kept (occlusion pruning)."""
        kept: list[int] = []
        kept_vecs: list[np.ndarray] = []
        for dist, cand in sorted(candidates):
            if len(kept) >= max_degree:
                break
            if kept:
                d_to_kept = self.score.distances(
                    self._vectors[cand], np.asarray(kept_vecs)
                )
                if (d_to_kept < dist).any():
                    continue
            kept.append(cand)
            kept_vecs.append(self._vectors[cand])
        if not kept and candidates:  # never leave a node isolated
            kept = [min(candidates)[1]]
        return kept

    def _layer_neighbors(self, layer: int):
        table = self._layers[layer]
        empty = np.empty(0, dtype=np.int64)
        return lambda node: table.get(node, empty)

    def _bottom_csr(self) -> CSRAdjacency:
        """Layer 0 packed as CSR (built lazily, dropped on insert)."""
        if self._csr0 is None:
            table = self._layers[0] if self._layers else {}
            empty = np.empty(0, dtype=np.int64)
            self._csr0 = CSRAdjacency.from_lists(
                [table.get(i, empty) for i in range(self._vectors.shape[0])]
            )
        return self._csr0

    def _shrink(self, node: int, layer: int, max_degree: int) -> None:
        """Re-prune a node whose degree overflowed after a back-edge."""
        table = self._layers[layer]
        neighbors = table[node]
        if neighbors.shape[0] <= max_degree:
            return
        dists = self.score.distances(self._vectors[node], self._vectors[neighbors])
        pairs = [(float(d), int(p)) for d, p in zip(dists, neighbors)]
        table[node] = np.asarray(
            self._select_neighbors_heuristic(pairs, max_degree), dtype=np.int64
        )

    def _insert(self, pos: int) -> None:
        level = self._draw_level()
        while len(self._layers) <= level:
            self._layers.append({})
        self._levels_list.append(level)
        for l in range(level + 1):
            self._layers[l].setdefault(pos, np.empty(0, dtype=np.int64))

        if self._entry < 0:
            self._entry = pos
            self._top_level = level
            return

        query = self._vectors[pos]
        current = self._entry
        # Phase 1: greedy descent through layers above the node's level.
        for l in range(self._top_level, level, -1):
            current, _, _ = greedy_walk(
                query, self._vectors, self._layer_neighbors(l), current, self.score
            )
        # Phase 2: beam search + connect on each layer from min(level, top) down.
        for l in range(min(level, self._top_level), -1, -1):
            pairs = beam_search(
                query,
                self._vectors,
                self._layer_neighbors(l),
                [current],
                self.ef_construction,
                self.score,
            )
            max_degree = self.max_degree0 if l == 0 else self.m
            chosen = self._select_neighbors_heuristic(
                [(d, p) for d, p in pairs if p != pos], self.m
            )
            table = self._layers[l]
            table[pos] = np.asarray(chosen, dtype=np.int64)
            for nb in chosen:
                table[nb] = np.append(table.get(nb, np.empty(0, dtype=np.int64)), pos)
                if table[nb].shape[0] > max_degree:
                    self._shrink(nb, l, max_degree)
            if pairs:
                current = pairs[0][1]

        if level > self._top_level:
            self._top_level = level
            self._entry = pos

    def _build(self) -> None:
        self._layers = []
        self._levels_list: list[int] = []
        self._entry = -1
        self._top_level = -1
        self._rng = np.random.default_rng(self.seed)
        for pos in range(self._vectors.shape[0]):
            self._insert(pos)
        self._csr0 = None
        self._node_levels = np.asarray(self._levels_list, dtype=np.int64)

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._require_built()
        from ..core.types import as_matrix

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, ids])
        for offset in range(matrix.shape[0]):
            self._insert(start + offset)
        self._csr0 = None
        self._node_levels = np.asarray(self._levels_list, dtype=np.int64)

    # ----------------------------------------------------------------- search

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        ef_search: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"HnswIndex.search got unknown params {sorted(params)}")
        if self._entry < 0:
            return []
        ef = max(k, ef_search if ef_search is not None else self.ef_search)
        current = self._entry
        for l in range(self._top_level, 0, -1):
            current, _, _ = greedy_walk(
                query, self._vectors, self._layer_neighbors(l), current, self.score,
                stats=stats,
            )
        pairs = beam_search(
            query,
            self._vectors,
            self._bottom_csr(),
            [current],
            ef,
            self.score,
            stats=stats,
            allowed=allowed,
            ids=self._ids,
        )
        stats.candidates_examined += len(pairs)
        return [SearchHit(int(self._ids[p]), float(d)) for d, p in pairs[:k]]

    # ------------------------------------------------------------ diagnostics

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def level_histogram(self) -> dict[int, int]:
        """Node count per maximum level (should decay ~exponentially)."""
        self._require_built()
        values, counts = np.unique(self._node_levels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def layer_adjacency(self, layer: int) -> Layer:
        """Raw adjacency of one layer (used by hybrid visit-first scan)."""
        self._require_built()
        return self._layers[layer]

    @property
    def bottom_layer(self):
        """Callable position -> neighbors on layer 0 (CSR-backed)."""
        self._require_built()
        return self._bottom_csr()

    @property
    def entry_point(self) -> int:
        self._require_built()
        return self._entry

    def memory_bytes(self) -> int:
        return sum(
            arr.nbytes + 16 for layer in self._layers for arr in layer.values()
        )
