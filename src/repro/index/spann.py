"""SPANN [32]: disk-resident inverted index with closure assignment (§2.2).

SPANN keeps only cluster centroids in memory and posting lists of full
vectors on disk.  Its two signature techniques, both implemented here:

* **Closure (multi-cluster) assignment** — a boundary vector is
  replicated into every cluster whose centroid is within ``(1 +
  closure_epsilon)`` of its nearest centroid distance (up to
  ``max_replicas``), so probing few postings still finds boundary
  points: fewer I/Os at the same recall (bench E7's comparison).
* **Query-time pruning** — probed postings whose centroid distance
  exceeds ``(1 + prune_epsilon)`` times the nearest centroid distance
  are skipped, saving reads on easy queries.

Posting lists are page-aligned on a :class:`SimulatedDisk`; reading a
posting costs ``ceil(len / vectors_per_page)`` page reads.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import VECTOR_DTYPE, SearchHit, SearchStats, topk_from_arrays
from ..quantization.kmeans import kmeans
from ..scores import Score
from ..storage.disk import SimulatedDisk
from ._kernels import topk_indices
from .base import VectorIndex


class SpannIndex(VectorIndex):
    """Memory-resident centroids + disk-resident posting lists.

    Parameters
    ----------
    num_postings:
        Number of k-means posting lists (centroids in memory).
    closure_epsilon:
        Replication slack; 0 disables closure assignment (plain IVF on
        disk — the ablation baseline).
    max_replicas:
        Cap on posting lists one vector may join.
    nprobe:
        Default postings probed per query.
    prune_epsilon:
        Query-time centroid-distance pruning slack (None disables).
    """

    name = "spann"
    family = "table"

    def __init__(
        self,
        score: Score | str = "l2",
        num_postings: int = 64,
        closure_epsilon: float = 0.2,
        max_replicas: int = 4,
        nprobe: int = 8,
        prune_epsilon: float | None = None,
        disk: SimulatedDisk | None = None,
        seed: int = 0,
    ):
        super().__init__(score)
        if num_postings <= 0:
            raise ValueError("num_postings must be positive")
        self.num_postings = num_postings
        self.closure_epsilon = closure_epsilon
        self.max_replicas = max(1, max_replicas)
        self.nprobe = nprobe
        self.prune_epsilon = prune_epsilon
        self.disk = disk or SimulatedDisk(page_size=4096)
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._posting_pages: list[list[int]] = []
        self._posting_ids: list[np.ndarray] = []
        self._posting_sizes: list[int] = []
        self.replication_factor: float = 1.0

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        n = data.shape[0]
        nlist = min(self.num_postings, n)
        result = kmeans(data, nlist, seed=self.seed)
        self.centroids = result.centroids

        # Closure assignment: nearest centroid always; others within
        # (1 + eps) of the nearest distance, up to max_replicas.
        dists = self.score.pairwise(data, self.centroids)
        order = np.argsort(dists, axis=1, kind="stable")
        members: list[list[int]] = [[] for _ in range(nlist)]
        total_assignments = 0
        for pos in range(n):
            nearest = float(dists[pos, order[pos, 0]])
            limit = (1.0 + self.closure_epsilon) * nearest
            replicas = 0
            for c in order[pos]:
                if replicas >= self.max_replicas:
                    break
                if replicas > 0 and dists[pos, c] > limit:
                    break
                members[int(c)].append(pos)
                replicas += 1
            total_assignments += replicas
        self.replication_factor = total_assignments / max(1, n)

        # Lay each posting out on page-aligned disk blocks.
        vec_bytes = self._vectors.shape[1] * np.dtype(VECTOR_DTYPE).itemsize
        per_page = max(1, self.disk.page_size // vec_bytes)
        self._vectors_per_page = per_page
        self._posting_pages = []
        self._posting_ids = []
        self._posting_sizes = []
        for c in range(nlist):
            positions = np.asarray(members[c], dtype=np.int64)
            self._posting_ids.append(positions)
            self._posting_sizes.append(positions.shape[0])
            pages: list[int] = []
            for start in range(0, positions.shape[0], per_page):
                chunk = self._vectors[positions[start : start + per_page]]
                page_id = self.disk.allocate()
                self.disk.write_page(page_id, chunk.tobytes())
                pages.append(page_id)
            self._posting_pages.append(pages)

    def _read_posting(self, c: int, stats: SearchStats) -> np.ndarray:
        chunks = []
        for page_id in self._posting_pages[c]:
            data = self.disk.read_page(page_id)
            stats.page_reads += 1
            chunks.append(
                np.frombuffer(data, dtype=VECTOR_DTYPE).reshape(
                    -1, self._vectors.shape[1]
                )
            )
        if not chunks:
            return np.empty((0, self._vectors.shape[1]), dtype=VECTOR_DTYPE)
        return np.vstack(chunks)

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        nprobe: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"SpannIndex.search got unknown params {sorted(params)}")
        nprobe = max(1, min(nprobe if nprobe is not None else self.nprobe,
                            len(self._posting_pages)))
        cd = self.score.distances(
            query, self.centroids.astype(VECTOR_DTYPE, copy=False)
        )
        stats.distance_computations += self.centroids.shape[0]
        probe_order = topk_indices(cd, nprobe)
        if self.prune_epsilon is not None and probe_order.size:
            limit = (1.0 + self.prune_epsilon) * float(cd[probe_order[0]])
            probe_order = probe_order[cd[probe_order] <= limit]

        best_ids: list[np.ndarray] = []
        best_dists: list[np.ndarray] = []
        for c in probe_order:
            c = int(c)
            positions = self._posting_ids[c]
            if positions.shape[0] == 0:
                continue
            stats.nodes_visited += 1
            vectors = self._read_posting(c, stats)
            ids = self._ids[positions]
            keep = self._mask_for(ids, allowed)
            if allowed is not None:
                stats.predicate_evaluations += ids.shape[0]
                stats.predicate_rejections += int(np.count_nonzero(~keep))
            if not keep.any():
                continue
            d = self.score.distances(query, vectors[keep])
            stats.distance_computations += int(keep.sum())
            stats.candidates_examined += int(keep.sum())
            best_ids.append(ids[keep])
            best_dists.append(d)
        if not best_ids:
            return []
        ids = np.concatenate(best_ids)
        dists = np.concatenate(best_dists)
        # Closure replication can surface the same id from several
        # postings; keep each id's best distance.
        uniq, inverse = np.unique(ids, return_inverse=True)
        reduced = np.full(uniq.shape[0], np.inf)
        np.minimum.at(reduced, inverse, dists)
        return topk_from_arrays(uniq, reduced, k)

    def posting_page_counts(self) -> list[int]:
        return [len(p) for p in self._posting_pages]

    def expected_pages_per_probe(self) -> float:
        counts = self.posting_page_counts()
        return float(np.mean(counts)) if counts else 0.0

    def memory_bytes(self) -> int:
        """RAM footprint: centroids + posting id lists + page table."""
        if self.centroids is None:
            return 0
        ids = sum(a.nbytes for a in self._posting_ids)
        pages = sum(len(p) for p in self._posting_pages) * 8
        return self.centroids.nbytes + ids + pages
