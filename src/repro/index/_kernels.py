"""Vectorized search kernels shared across the index zoo (§2.2–2.3).

The tutorial's performance sections keep returning to the same point:
ANN query cost is dominated by a handful of tight loops — graph
traversal, quantized-code scans, and top-k selection — and those loops
must run "as fast as the hardware allows".  In a numpy codebase that
means three things, all centralized here:

* :class:`CSRAdjacency` — a graph's neighbor lists packed into two flat
  int64 arrays (``indices``/``indptr``).  One slice per expansion, no
  per-node Python object dereference, and the whole edge set is a single
  cache-friendly allocation.  Built once per graph (lazily on first
  search) from the ``list[np.ndarray]`` adjacency the builders produce.
* :func:`topk_indices` — partition-based top-k selection
  (``np.argpartition`` + partial stable sort), O(n + k log k) instead of
  the O(n log n) full ``argsort`` the call sites used to pay.
* :func:`ensure_f32c` — float32 C-contiguous layout enforcement at
  ingest, so every distance kernel sees the layout it vectorizes best
  over (no silent float64 upcasts or strided views on the hot path).

The traversal kernel itself (bitmap visited-set beam search) lives in
:mod:`repro.index._graph` next to its scalar reference implementation.
"""

from __future__ import annotations

import numpy as np

#: Dtype for packed neighbor/position arrays.
INDEX_DTYPE = np.int64


def ensure_f32c(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` as float32 C-contiguous, copying only if needed.

    Kernels assume this layout; enforcing it once at ingest keeps every
    per-query gather (``vectors[positions]``) allocation-minimal.
    """
    if (
        isinstance(matrix, np.ndarray)
        and matrix.dtype == np.float32
        and matrix.flags["C_CONTIGUOUS"]
    ):
        return matrix
    return np.ascontiguousarray(matrix, dtype=np.float32)


class CSRAdjacency:
    """Graph adjacency packed in compressed-sparse-row form.

    ``indices[indptr[v]:indptr[v + 1]]`` are node ``v``'s neighbors.
    Supports ``adj[v]``, ``adj(v)`` (callable, so it drops into every
    ``neighbors_of`` slot), ``len``, and iteration, making it a read-only
    drop-in for the ``list[np.ndarray]`` adjacency builders produce.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = np.asarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if self.indptr.shape[0] == 0 or int(self.indptr[-1]) != self.indices.shape[0]:
            raise ValueError("indptr[-1] must equal len(indices)")

    @classmethod
    def from_lists(cls, adjacency) -> "CSRAdjacency":
        """Pack a ``list[np.ndarray]`` (or any sequence of neighbor
        arrays) into CSR form."""
        n = len(adjacency)
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        if n:
            np.cumsum([len(a) for a in adjacency], out=indptr[1:])
        if n and int(indptr[-1]):
            indices = np.concatenate(
                [np.asarray(a, dtype=INDEX_DTYPE) for a in adjacency]
            )
        else:
            indices = np.empty(0, dtype=INDEX_DTYPE)
        return cls(indptr, indices)

    def __getitem__(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    #: Callable form: ``adj(v)`` == ``adj[v]``, so a CSRAdjacency slots
    #: anywhere a ``neighbors_of`` callable is expected.
    __call__ = __getitem__

    def __len__(self) -> int:
        return self.indptr.shape[0] - 1

    def __iter__(self):
        for node in range(len(self)):
            yield self[node]

    def to_lists(self) -> list[np.ndarray]:
        return [self[node].copy() for node in range(len(self))]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def num_edges(self) -> int:
        return self.indices.shape[0]

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes

    def __repr__(self) -> str:
        return f"CSRAdjacency(nodes={len(self)}, edges={self.num_edges})"


def as_neighbor_fn(adjacency):
    """Uniform ``position -> np.ndarray`` view over any adjacency form
    (CSR, list-of-arrays, dict-backed callable)."""
    if isinstance(adjacency, CSRAdjacency):
        return adjacency  # callable via __call__
    if callable(adjacency):
        return adjacency
    return adjacency.__getitem__


def topk_indices(distances: np.ndarray, k: int, sort: bool = True) -> np.ndarray:
    """Indices of the ``k`` smallest distances, ascending.

    Partition-based selection: O(n) to isolate the k smallest, then a
    stable O(k log k) sort of just those — replacing the full
    O(n log n) ``argsort`` at every top-k site.  With ``sort=False``
    the k indices come back in arbitrary order (pure selection).
    """
    distances = np.asarray(distances)
    n = distances.shape[0]
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return np.argsort(distances, kind="stable") if sort else np.arange(n)
    part = np.argpartition(distances, k - 1)[:k]
    if not sort:
        return part
    return part[np.argsort(distances[part], kind="stable")]


def topk_values_indices(
    distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """(values, indices) of the k smallest distances, ascending."""
    idx = topk_indices(distances, k)
    return np.asarray(distances)[idx], idx
