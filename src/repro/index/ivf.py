"""Inverted-file (IVF) indexes: IVF-Flat, IVFSQ, IVFADC (§2.2).

An IVF index partitions the collection into ``nlist`` k-means cells
("learned partitioning" in the tutorial's terms) and searches only the
``nprobe`` cells nearest the query.  Variants differ in what each posting
list stores:

* :class:`IvfFlatIndex` — full float vectors; exact re-rank inside cells.
* :class:`IvfSqIndex` — scalar-quantized codes (the tutorial's IVFSQ).
* :class:`IvfAdcIndex` — PQ codes of residuals with ADC scoring (IVFADC
  [49]), wrapping :class:`repro.quantization.ivfadc.IvfAdc`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats, topk_from_arrays
from ..quantization.ivfadc import IvfAdc
from ..quantization.kmeans import assign_topn, kmeans
from ..quantization.scalar import ScalarQuantizer
from ..scores import Score
from .base import VectorIndex


class IvfFlatIndex(VectorIndex):
    """k-means cells with full-precision posting lists.

    Parameters
    ----------
    nlist:
        Number of coarse cells (k-means centroids).
    nprobe:
        Default number of cells scanned per query (override per search).
    """

    name = "ivf_flat"
    family = "table"
    supports_updates = True

    def __init__(
        self,
        score: Score | str = "l2",
        nlist: int = 64,
        nprobe: int = 8,
        seed: int = 0,
    ):
        super().__init__(score)
        if nlist <= 0:
            raise ValueError("nlist must be positive")
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._cells: list[np.ndarray] = []  # row positions per cell

    def _build(self) -> None:
        n = self._vectors.shape[0]
        nlist = min(self.nlist, n)
        result = kmeans(self._vectors.astype(np.float64), nlist, seed=self.seed)
        self.centroids = result.centroids
        self._cells = [
            np.flatnonzero(result.assignments == c) for c in range(nlist)
        ]

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._require_built()
        from ..core.types import as_matrix

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, ids])
        cells = assign_topn(matrix.astype(np.float64), self.centroids, 1)[:, 0]
        for offset, cell in enumerate(cells):
            self._cells[cell] = np.append(self._cells[cell], start + offset)

    def _probe_cells(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        nprobe = max(1, min(nprobe, len(self._cells)))
        return assign_topn(query[None, :].astype(np.float64), self.centroids, nprobe)[0]

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        nprobe: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"IvfFlatIndex.search got unknown params {sorted(params)}")
        cells = self._probe_cells(query, nprobe if nprobe is not None else self.nprobe)
        stats.nodes_visited += len(cells)
        stats.distance_computations += len(self._cells)  # centroid ranking
        positions = (
            np.concatenate([self._cells[c] for c in cells])
            if len(cells)
            else np.empty(0, dtype=np.int64)
        )
        return self._brute_force(query, k, positions, allowed, stats)

    def cell_sizes(self) -> list[int]:
        return [len(c) for c in self._cells]

    def memory_bytes(self) -> int:
        centroid = 0 if self.centroids is None else self.centroids.nbytes
        return centroid + sum(c.nbytes for c in self._cells)


class IvfSqIndex(VectorIndex):
    """IVF cells whose posting lists hold scalar-quantized codes (IVFSQ).

    Search decodes only the probed cells' codes — the compression saves
    memory at a small recall cost measured in bench E4.
    """

    name = "ivf_sq"
    family = "table"

    def __init__(
        self,
        score: Score | str = "l2",
        nlist: int = 64,
        nprobe: int = 8,
        bits: int = 8,
        seed: int = 0,
    ):
        super().__init__(score)
        self.nlist = nlist
        self.nprobe = nprobe
        self.seed = seed
        self.sq = ScalarQuantizer(bits=bits)
        self.centroids: np.ndarray | None = None
        self._cell_positions: list[np.ndarray] = []
        self._cell_codes: list[np.ndarray] = []

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        nlist = min(self.nlist, data.shape[0])
        result = kmeans(data, nlist, seed=self.seed)
        self.centroids = result.centroids
        self.sq.train(data)
        self._cell_positions = []
        self._cell_codes = []
        for c in range(nlist):
            positions = np.flatnonzero(result.assignments == c)
            self._cell_positions.append(positions)
            self._cell_codes.append(self.sq.encode(data[positions]))

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        nprobe: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"IvfSqIndex.search got unknown params {sorted(params)}")
        nprobe = max(1, min(nprobe if nprobe is not None else self.nprobe,
                            len(self._cell_positions)))
        cells = assign_topn(
            query[None, :].astype(np.float64), self.centroids, nprobe
        )[0]
        stats.nodes_visited += len(cells)
        stats.distance_computations += len(self._cell_positions)

        ids_chunks: list[np.ndarray] = []
        dist_chunks: list[np.ndarray] = []
        for c in cells:
            positions = self._cell_positions[c]
            if positions.shape[0] == 0:
                continue
            ids = self._ids[positions]
            keep = self._mask_for(ids, allowed)
            if allowed is not None:
                stats.predicate_evaluations += positions.shape[0]
                stats.predicate_rejections += int(np.count_nonzero(~keep))
            if not keep.any():
                continue
            codes = self._cell_codes[c][keep]
            dists = self.sq.squared_distances(query.astype(np.float64), codes)
            stats.distance_computations += codes.shape[0]
            stats.candidates_examined += codes.shape[0]
            ids_chunks.append(ids[keep])
            dist_chunks.append(dists)
        if not ids_chunks:
            return []
        return topk_from_arrays(
            np.concatenate(ids_chunks), np.concatenate(dist_chunks), k
        )

    def memory_bytes(self) -> int:
        centroid = 0 if self.centroids is None else self.centroids.nbytes
        codes = sum(c.nbytes for c in self._cell_codes)
        return centroid + codes + sum(p.nbytes for p in self._cell_positions)


class IvfAdcIndex(VectorIndex):
    """IVFADC [49] wrapped as a :class:`VectorIndex`.

    Optionally re-ranks the ADC top candidates with exact distances
    (``rerank`` > 0), the standard recall-recovery trick.
    """

    name = "ivf_adc"
    family = "table"
    supports_updates = True

    def __init__(
        self,
        score: Score | str = "l2",
        nlist: int = 64,
        nprobe: int = 8,
        m: int = 8,
        ks: int = 256,
        rerank: int = 0,
        seed: int = 0,
        layout: str = "flat",
    ):
        super().__init__(score)
        self.core = IvfAdc(nlist=nlist, m=m, ks=ks, seed=seed, layout=layout)
        self.nprobe = nprobe
        self.rerank = rerank

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        # Shrink nlist/ks gracefully for tiny collections.
        self.core.nlist = min(self.core.nlist, data.shape[0])
        self.core.pq.ks = min(self.core.pq.ks, data.shape[0])
        self.core.train(data)
        # Positions double as ids inside the core; translate on the way out.
        self.core.add(np.arange(data.shape[0], dtype=np.int64), data)

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Quantize-and-append: codebooks stay fixed (the easy-update
        property the tutorial credits table-based indexes with)."""
        self._require_built()
        from ..core.types import as_matrix

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, ids])
        positions = np.arange(start, start + matrix.shape[0], dtype=np.int64)
        self.core.add(positions, matrix.astype(np.float64))

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        nprobe: int | None = None,
        rerank: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"IvfAdcIndex.search got unknown params {sorted(params)}")
        nprobe = nprobe if nprobe is not None else self.nprobe
        rerank = rerank if rerank is not None else self.rerank
        fetch = max(k, rerank) if rerank else k
        # Over-fetch when filtering so the post-mask set still has k.
        overfetch = fetch * 4 if allowed is not None else fetch
        positions, dists, core_stats = self.core.search(query, overfetch, nprobe=nprobe)
        stats.nodes_visited += core_stats.cells_probed
        stats.distance_computations += core_stats.codes_scanned
        stats.candidates_examined += core_stats.codes_scanned
        if positions.shape[0] == 0:
            return []
        ids = self._ids[positions]
        keep = self._mask_for(ids, allowed)
        if allowed is not None:
            stats.predicate_evaluations += ids.shape[0]
            stats.predicate_rejections += int(np.count_nonzero(~keep))
        positions, ids, dists = positions[keep], ids[keep], dists[keep]
        if positions.shape[0] == 0:
            return []
        if rerank:
            take = positions[: max(k, rerank)]
            exact = self.score.distances(query, self._vectors[take])
            stats.distance_computations += take.shape[0]
            return topk_from_arrays(self._ids[take], exact, k)
        return topk_from_arrays(ids, dists, k)[:k]

    def memory_bytes(self) -> int:
        return self.core.memory_bytes() if self.core.is_trained else 0
