"""FLANN-style randomized k-d forest (§2.2, tree-based).

FLANN [62] builds several k-d trees, each splitting "along random
principal dimensions": at every node one of the top-spread coordinate
axes is chosen at random, so the trees decorrelate and a shared
best-first queue across the forest recovers recall that a single
deterministic tree loses in high dimension.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._tree import TreeNode, best_first_search, build_tree, tree_stats
from .base import VectorIndex


def _random_top_axis_split(top_axes: int):
    """Split on a random axis among the ``top_axes`` of greatest spread."""

    def choose(rows: np.ndarray, rng: np.random.Generator):
        spread = rows.max(axis=0) - rows.min(axis=0)
        if spread.max() == 0:
            return None
        candidates = np.argsort(spread)[::-1][:top_axes]
        axis = int(rng.choice(candidates))
        if spread[axis] == 0:
            axis = int(spread.argmax())
        w = np.zeros(rows.shape[1], dtype=np.float64)
        w[axis] = 1.0
        # Mean threshold with a little jitter decorrelates trees further
        # (FLANN uses mean +- noise).
        col = rows[:, axis]
        t = float(col.mean())
        if not col.min() < t <= col.max():
            t = float(np.median(col))
        return w, t

    return choose


class RandomizedKdForestIndex(VectorIndex):
    """A forest of randomized k-d trees searched through one queue.

    Parameters
    ----------
    num_trees:
        Forest size; more trees -> higher recall at same leaf budget.
    top_axes:
        Number of highest-spread axes to randomize among (FLANN uses 5).
    max_leaves:
        Default total leaf-visit budget across the whole forest.
    """

    name = "randkd_forest"
    family = "tree"

    def __init__(
        self,
        score: Score | str = "l2",
        num_trees: int = 4,
        leaf_size: int = 16,
        top_axes: int = 5,
        max_leaves: int = 64,
        seed: int = 0,
    ):
        super().__init__(score)
        if num_trees <= 0:
            raise ValueError("num_trees must be positive")
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.top_axes = top_axes
        self.max_leaves = max_leaves
        self.seed = seed
        self._roots: list[TreeNode] = []

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        positions = np.arange(data.shape[0], dtype=np.int64)
        split = _random_top_axis_split(self.top_axes)
        self._roots = []
        for t in range(self.num_trees):
            rng = np.random.default_rng(self.seed + t)
            self._roots.append(build_tree(positions, data, split, self.leaf_size, rng))

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        max_leaves: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(
                f"RandomizedKdForestIndex.search got unknown params {sorted(params)}"
            )
        budget = max(1, max_leaves if max_leaves is not None else self.max_leaves)
        positions, leaves = best_first_search(
            self._roots, query.astype(np.float64), max_leaves=budget
        )
        stats.nodes_visited += leaves
        return self._brute_force(query, k, positions, allowed, stats)

    def stats(self) -> list[dict[str, float]]:
        self._require_built()
        return [tree_stats(r) for r in self._roots]
