"""Shared machinery for tree-based indexes (§2.2, tree-based).

Every tree index in the tutorial — k-d tree, PCA/PKD tree, FLANN's
randomized k-d forest, RP-tree, ANNOY — is a recursive binary space
partition differing only in *how a split is chosen*.  This module
factors the common parts:

* :class:`TreeNode` — internal nodes hold a hyperplane ``(w, t)`` (go
  left when ``x.w < t``); leaves hold row positions.  Axis-aligned
  splits are the special case ``w = e_axis``.
* :func:`build_tree` — generic recursive builder parameterized by a
  ``choose_split`` strategy.
* :func:`best_first_search` — priority-queue ("defeatist with
  backtracking") search: descend to the query's leaf, queue the far
  side of every split keyed by its plane distance, and keep popping
  until ``max_leaves`` leaves are visited — or, in exact mode, until
  the nearest queued plane is farther than the current k-th neighbor
  (branch-and-bound, valid for metric L2).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

# A split strategy returns (w, t) for a set of rows, or None to force a
# leaf (e.g. all points identical).
SplitFn = Callable[[np.ndarray, np.random.Generator], "tuple[np.ndarray, float] | None"]


@dataclass(slots=True)
class TreeNode:
    """One tree node; ``positions is not None`` marks a leaf."""

    positions: np.ndarray | None = None
    w: np.ndarray | None = None
    t: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.positions is not None


def build_tree(
    positions: np.ndarray,
    vectors: np.ndarray,
    choose_split: SplitFn,
    leaf_size: int,
    rng: np.random.Generator,
) -> TreeNode:
    """Recursively partition ``positions`` into a binary tree."""
    if positions.shape[0] <= leaf_size:
        return TreeNode(positions=positions)
    split = choose_split(vectors[positions], rng)
    if split is None:
        return TreeNode(positions=positions)
    w, t = split
    proj = vectors[positions] @ w
    go_left = proj < t
    # Degenerate split (all points one side): fall back to a leaf rather
    # than recursing forever.
    if go_left.all() or not go_left.any():
        return TreeNode(positions=positions)
    return TreeNode(
        w=w,
        t=t,
        left=build_tree(positions[go_left], vectors, choose_split, leaf_size, rng),
        right=build_tree(positions[~go_left], vectors, choose_split, leaf_size, rng),
    )


def tree_stats(root: TreeNode) -> dict[str, float]:
    """Depth and leaf statistics (benches E5 checks logarithmic depth)."""
    depths: list[int] = []
    leaf_sizes: list[int] = []

    def walk(node: TreeNode, depth: int) -> None:
        if node.is_leaf:
            depths.append(depth)
            leaf_sizes.append(len(node.positions))
        else:
            walk(node.left, depth + 1)
            walk(node.right, depth + 1)

    walk(root, 0)
    return {
        "num_leaves": float(len(depths)),
        "max_depth": float(max(depths)),
        "mean_depth": float(np.mean(depths)),
        "mean_leaf_size": float(np.mean(leaf_sizes)),
    }


def count_nodes(root: TreeNode) -> int:
    if root.is_leaf:
        return 1
    return 1 + count_nodes(root.left) + count_nodes(root.right)


def best_first_search(
    roots: list[TreeNode],
    query: np.ndarray,
    max_leaves: int | None,
    exact_l2_k: "tuple[np.ndarray, int] | None" = None,
) -> tuple[np.ndarray, int]:
    """Collect candidate positions from one or more trees.

    Parameters
    ----------
    roots:
        Tree roots (a forest searches them through one shared queue, as
        FLANN and ANNOY do, so leaf budget flows to the most promising
        tree).
    max_leaves:
        Leaf-visit budget; ``None`` means unbounded (exact mode must set
        ``exact_l2_k``).
    exact_l2_k:
        ``(vectors, k)`` for branch-and-bound termination under L2: stop
        when the nearest unexplored plane distance exceeds the current
        k-th nearest candidate distance.

    Returns
    -------
    (positions, leaves_visited):
        Unique candidate row positions and the number of leaves visited.
    """
    counter = itertools.count()  # tiebreak heap entries
    heap: list[tuple[float, int, TreeNode]] = []
    for root in roots:
        heapq.heappush(heap, (0.0, next(counter), root))

    candidates: list[np.ndarray] = []
    leaves_visited = 0
    # Branch-and-bound state for exact mode.
    best_dists: np.ndarray | None = None
    if exact_l2_k is not None:
        vectors, k = exact_l2_k

    while heap:
        bound, _, node = heapq.heappop(heap)
        if exact_l2_k is not None and best_dists is not None:
            if best_dists.shape[0] >= k and bound > best_dists[k - 1]:
                break
        while not node.is_leaf:
            margin = float(query @ node.w - node.t)
            near, far = (node.left, node.right) if margin < 0 else (node.right, node.left)
            # |margin| / ||w|| is the distance to the splitting plane and a
            # lower bound on reaching anything on the far side; builders
            # keep ||w|| == 1 so no division is needed.
            heapq.heappush(heap, (max(bound, abs(margin)), next(counter), far))
            node = near
        candidates.append(node.positions)
        leaves_visited += 1
        if exact_l2_k is not None:
            gathered = np.unique(np.concatenate(candidates))
            diff = vectors[gathered] - query
            d = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            best_dists = np.sort(d)
        if max_leaves is not None and leaves_visited >= max_leaves:
            break

    if not candidates:
        return np.empty(0, dtype=np.int64), 0
    return np.unique(np.concatenate(candidates)), leaves_visited


def unit(w: np.ndarray) -> np.ndarray:
    """Normalize a direction vector (zero vectors pass through)."""
    norm = np.linalg.norm(w)
    return w / norm if norm > 0 else w
