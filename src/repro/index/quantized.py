"""Flat quantized indexes: PQ, OPQ, and SQ over the whole collection (§2.2).

These are the non-inverted counterparts of the IVF variants: every code
is scanned per query, so recall loss comes purely from quantization error
— which makes them the clean ablation for bench E4 (compression ratio
vs recall).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats, topk_from_arrays
from ..quantization.opq import OptimizedProductQuantizer
from ..quantization.pq import ProductQuantizer
from ..quantization.scalar import ScalarQuantizer
from ..scores import Score
from .base import VectorIndex


class PqIndex(VectorIndex):
    """Whole-collection PQ (or OPQ) codes scanned with ADC per query."""

    name = "pq"
    family = "table"

    def __init__(
        self,
        score: Score | str = "l2",
        m: int = 8,
        ks: int = 256,
        optimized: bool = False,
        opq_iterations: int = 10,
        rerank: int = 0,
        seed: int = 0,
    ):
        super().__init__(score)
        if optimized:
            self.quantizer: ProductQuantizer | OptimizedProductQuantizer = (
                OptimizedProductQuantizer(
                    m=m, ks=ks, opq_iterations=opq_iterations, seed=seed
                )
            )
            self.name = "opq"
        else:
            self.quantizer = ProductQuantizer(m=m, ks=ks, seed=seed)
        self.rerank = rerank
        self._codes: np.ndarray | None = None

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        if hasattr(self.quantizer, "pq"):
            self.quantizer.pq.ks = min(self.quantizer.pq.ks, data.shape[0])
        else:
            self.quantizer.ks = min(self.quantizer.ks, data.shape[0])
        self.quantizer.train(data)
        self._codes = self.quantizer.encode(data)

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        rerank: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"PqIndex.search got unknown params {sorted(params)}")
        rerank = rerank if rerank is not None else self.rerank
        keep = self._mask_for(self._ids, allowed)
        if allowed is not None:
            stats.predicate_evaluations += self._ids.shape[0]
            stats.predicate_rejections += int(np.count_nonzero(~keep))
        positions = np.flatnonzero(keep)
        if positions.shape[0] == 0:
            return []
        dists = self.quantizer.adc_distances(
            query.astype(np.float64), self._codes[positions]
        )
        stats.distance_computations += positions.shape[0]
        stats.candidates_examined += positions.shape[0]
        if rerank:
            fetch = min(max(k, rerank), positions.shape[0])
            part = np.argpartition(dists, fetch - 1)[:fetch] if positions.shape[
                0
            ] > fetch else np.arange(positions.shape[0])
            take = positions[part]
            exact = self.score.distances(query, self._vectors[take])
            stats.distance_computations += take.shape[0]
            return topk_from_arrays(self._ids[take], exact, k)
        return topk_from_arrays(self._ids[positions], dists, k)

    def memory_bytes(self) -> int:
        return 0 if self._codes is None else self._codes.nbytes


class SqIndex(VectorIndex):
    """Whole-collection scalar-quantized codes (the tutorial's SQ index)."""

    name = "sq"
    family = "table"

    def __init__(self, score: Score | str = "l2", bits: int = 8, rerank: int = 0):
        super().__init__(score)
        self.sq = ScalarQuantizer(bits=bits)
        self.rerank = rerank
        self._codes: np.ndarray | None = None

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        self.sq.train(data)
        self._codes = self.sq.encode(data)

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        rerank: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"SqIndex.search got unknown params {sorted(params)}")
        rerank = rerank if rerank is not None else self.rerank
        keep = self._mask_for(self._ids, allowed)
        if allowed is not None:
            stats.predicate_evaluations += self._ids.shape[0]
            stats.predicate_rejections += int(np.count_nonzero(~keep))
        positions = np.flatnonzero(keep)
        if positions.shape[0] == 0:
            return []
        dists = self.sq.squared_distances(
            query.astype(np.float64), self._codes[positions]
        )
        stats.distance_computations += positions.shape[0]
        stats.candidates_examined += positions.shape[0]
        if rerank:
            fetch = min(max(k, rerank), positions.shape[0])
            part = np.argpartition(dists, fetch - 1)[:fetch] if positions.shape[
                0
            ] > fetch else np.arange(positions.shape[0])
            take = positions[part]
            exact = self.score.distances(query, self._vectors[take])
            stats.distance_computations += take.shape[0]
            return topk_from_arrays(self._ids[take], exact, k)
        return topk_from_arrays(self._ids[positions], dists, k)

    def memory_bytes(self) -> int:
        return 0 if self._codes is None else self._codes.nbytes
