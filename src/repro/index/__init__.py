"""Search indexes: table-, tree-, and graph-based (§2.2 of the paper)."""

from ._kernels import CSRAdjacency, ensure_f32c, topk_indices
from .annoy import AnnoyIndex
from .base import VectorIndex
from .diskann import DiskAnnIndex
from .fanng import FanngIndex
from .filtered_graph import FilteredHnswIndex
from .flat import FlatIndex
from .graph_base import GraphIndex
from .hnsw import HnswIndex
from .ivf import IvfAdcIndex, IvfFlatIndex, IvfSqIndex
from .kdtree import KdTreeIndex
from .knng import KnngIndex, brute_force_knng
from .l2h import BinaryHashIndex, ItqHashIndex, SpectralHashIndex
from .lsh import LshIndex
from .ngt import NgtIndex
from .nndescent import NnDescentIndex, knng_recall, nn_descent
from .nsg import NsgIndex
from .nsw import NswIndex
from .pcatree import PcaTreeIndex
from .quantized import PqIndex, SqIndex
from .randkd import RandomizedKdForestIndex
from .registry import available_indexes, index_families, make_index, register_index
from .rptree import RpTreeIndex
from .spann import SpannIndex
from .vamana import VamanaIndex, build_vamana_graph

__all__ = [
    "AnnoyIndex",
    "BinaryHashIndex",
    "CSRAdjacency",
    "DiskAnnIndex",
    "FanngIndex",
    "FilteredHnswIndex",
    "FlatIndex",
    "GraphIndex",
    "HnswIndex",
    "ItqHashIndex",
    "IvfAdcIndex",
    "IvfFlatIndex",
    "IvfSqIndex",
    "KdTreeIndex",
    "KnngIndex",
    "LshIndex",
    "NgtIndex",
    "NnDescentIndex",
    "NsgIndex",
    "NswIndex",
    "PcaTreeIndex",
    "PqIndex",
    "RandomizedKdForestIndex",
    "RpTreeIndex",
    "SpannIndex",
    "SpectralHashIndex",
    "SqIndex",
    "VamanaIndex",
    "VectorIndex",
    "available_indexes",
    "brute_force_knng",
    "build_vamana_graph",
    "ensure_f32c",
    "index_families",
    "knng_recall",
    "make_index",
    "nn_descent",
    "register_index",
    "topk_indices",
]
