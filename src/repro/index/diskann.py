"""DiskANN [74]: disk-resident Vamana with PQ-guided traversal (§2.2).

DiskANN's layout puts each node's **full vector and adjacency list
together in one disk page**, while a compact PQ sketch of every vector
stays in RAM.  A query runs beam search where candidate ordering uses
the cheap in-memory PQ distances; expanding a node costs exactly one
page read, which also yields the node's full-precision vector — used to
re-rank the final result.  I/Os per query therefore ~ nodes expanded
~ beam width, the property bench E7 measures against an IVF-on-disk
baseline.
"""

from __future__ import annotations

import heapq
from typing import Any

import numpy as np

from ..core.types import VECTOR_DTYPE, SearchHit, SearchStats
from ..quantization.pq import ProductQuantizer
from ..scores import Score
from ..storage.disk import SimulatedDisk
from .base import VectorIndex
from .vamana import build_vamana_graph


class DiskAnnIndex(VectorIndex):
    """Disk-resident Vamana.

    Parameters
    ----------
    max_degree, build_beam_width, alpha:
        Vamana construction parameters.
    pq_m, pq_ks:
        Shape of the in-memory PQ sketch.
    beam_width:
        Default search beam (L); also bounds page reads per query.
    disk:
        Simulated device; supply a shared one to aggregate I/O stats.
    """

    name = "diskann"
    family = "graph"

    def __init__(
        self,
        score: Score | str = "l2",
        max_degree: int = 16,
        build_beam_width: int = 64,
        alpha: float = 1.2,
        pq_m: int = 8,
        pq_ks: int = 256,
        beam_width: int = 16,
        disk: SimulatedDisk | None = None,
        seed: int = 0,
    ):
        super().__init__(score)
        self.max_degree = max_degree
        self.build_beam_width = build_beam_width
        self.alpha = alpha
        self.beam_width = beam_width
        self.seed = seed
        self.pq = ProductQuantizer(m=pq_m, ks=pq_ks, seed=seed)
        self.disk = disk or SimulatedDisk(page_size=8192)
        self._codes: np.ndarray | None = None
        self._node_pages: list[int] = []
        self._entry: int = 0

    def _build(self) -> None:
        data64 = self._vectors.astype(np.float64)
        adjacency, self._entry = build_vamana_graph(
            data64.astype(VECTOR_DTYPE),
            self.max_degree,
            self.build_beam_width,
            self.alpha,
            self.score,
            seed=self.seed,
        )
        self.pq.ks = min(self.pq.ks, max(2, data64.shape[0]))
        self.pq.train(data64)
        self._codes = self.pq.encode(data64)
        # One page per node: full vector + degree + neighbor ids.
        self._node_pages = []
        for pos in range(data64.shape[0]):
            neighbors = adjacency[pos].astype(np.int64)
            payload = (
                self._vectors[pos].tobytes()
                + np.int64(neighbors.shape[0]).tobytes()
                + neighbors.tobytes()
            )
            page_id = self.disk.allocate()
            self.disk.write_page(page_id, payload)
            self._node_pages.append(page_id)
        # Full vectors now live on disk; drop the in-RAM copy except what
        # the base class needs for dim checks.  (We keep the matrix for
        # test oracles but mark the intent via _ram_resident.)
        self._ram_resident = False

    def _read_node(self, pos: int, stats: SearchStats) -> tuple[np.ndarray, np.ndarray]:
        """One page read -> (full vector, neighbor positions)."""
        data = self.disk.read_page(self._node_pages[pos])
        stats.page_reads += 1
        vec_bytes = self._vectors.shape[1] * np.dtype(VECTOR_DTYPE).itemsize
        vector = np.frombuffer(data[:vec_bytes], dtype=VECTOR_DTYPE)
        degree = int(np.frombuffer(data[vec_bytes : vec_bytes + 8], dtype=np.int64)[0])
        neighbors = np.frombuffer(
            data[vec_bytes + 8 : vec_bytes + 8 + degree * 8], dtype=np.int64
        )
        return vector, neighbors

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        beam_width: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"DiskAnnIndex.search got unknown params {sorted(params)}")
        if self._codes is None or self._codes.shape[0] == 0:
            return []
        beam = max(k, beam_width if beam_width is not None else self.beam_width)
        table = self.pq.adc_table(query.astype(np.float64))

        def pq_distance(pos: int) -> float:
            return float(self.pq.lookup(table, self._codes[pos : pos + 1])[0])

        entry = self._entry
        visited = {entry}
        frontier: list[tuple[float, int]] = [(pq_distance(entry), entry)]
        stats.distance_computations += 1
        # Beam membership and termination both live in PQ-distance space
        # (comparing the PQ estimate against exact distances would mix
        # units — ADC estimates *squared* L2).  Exact distances from the
        # page reads are kept solely for the final re-rank.
        beam_pq: dict[int, float] = {}
        exact: dict[int, float] = {}
        expanded = 0
        while frontier and expanded < 4 * beam:
            d_pq, pos = heapq.heappop(frontier)
            if len(beam_pq) >= beam and d_pq > max(beam_pq.values()):
                break
            vector, neighbors = self._read_node(pos, stats)
            expanded += 1
            stats.nodes_visited += 1
            d_exact = float(self.score.distances(query, vector[None, :])[0])
            stats.distance_computations += 1
            ext = int(self._ids[pos])
            if allowed is None or allowed[ext]:
                exact[pos] = d_exact
                beam_pq[pos] = d_pq
                if len(beam_pq) > beam:
                    worst_pos = max(beam_pq, key=beam_pq.get)
                    beam_pq.pop(worst_pos)
            fresh = [int(nb) for nb in neighbors if int(nb) not in visited]
            visited.update(fresh)
            if fresh:
                codes = self._codes[np.asarray(fresh, dtype=np.int64)]
                dists = self.pq.lookup(table, codes)
                stats.distance_computations += len(fresh)
                for nb, d in zip(fresh, dists):
                    heapq.heappush(frontier, (float(d), nb))
        stats.candidates_examined += len(exact)
        ordered = sorted(exact.items(), key=lambda kv: (kv[1], kv[0]))[:k]
        return [SearchHit(int(self._ids[p]), d) for p, d in ordered]

    def memory_bytes(self) -> int:
        """RAM footprint: PQ codes + codebooks + page table (not vectors)."""
        if self._codes is None:
            return 0
        codebooks = self.pq.m * self.pq.ks * (self.pq.subdim or 0) * 8
        return self._codes.nbytes + codebooks + len(self._node_pages) * 8
