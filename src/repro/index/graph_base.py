"""Base class shared by all single-layer graph indexes."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._graph import Adjacency, beam_search, graph_degree_stats, medoid
from ._kernels import CSRAdjacency
from .base import VectorIndex


class GraphIndex(VectorIndex):
    """A :class:`VectorIndex` over an adjacency list + beam search.

    Subclasses implement :meth:`_build_graph` returning the adjacency;
    search, entry-point selection, masking, and stats are shared here.
    Hybrid visit-first scans reach the raw graph via :attr:`adjacency`.
    Searches run over a CSR-packed copy of the adjacency
    (:attr:`csr_adjacency`), built lazily on first search and
    invalidated whenever the builder mutates the list form.
    """

    family = "graph"

    def __init__(self, score: Score | str = "l2", ef_search: int = 64, seed: int = 0):
        super().__init__(score)
        self.ef_search = ef_search
        self.seed = seed
        self._adjacency: Adjacency = []
        self._csr: CSRAdjacency | None = None
        self._entry_point: int = 0

    def _build(self) -> None:
        self._adjacency = self._build_graph()
        if len(self._adjacency) != self._vectors.shape[0]:
            raise AssertionError("adjacency length must equal collection size")
        self._csr = None
        self._entry_point = self._default_entry_point()

    def _invalidate_csr(self) -> None:
        """Drop the packed adjacency after mutating ``_adjacency``."""
        self._csr = None

    def _build_graph(self) -> Adjacency:
        raise NotImplementedError

    def _default_entry_point(self) -> int:
        """Entry node for searches; medoid by default (NSG/Vamana style)."""
        if self._vectors.shape[0] == 0:
            return 0
        return medoid(self._vectors.astype(np.float64))

    @property
    def adjacency(self) -> Adjacency:
        self._require_built()
        return self._adjacency

    @property
    def csr_adjacency(self) -> CSRAdjacency:
        """The adjacency packed in CSR form (lazily built, cached)."""
        self._require_built()
        if self._csr is None:
            self._csr = CSRAdjacency.from_lists(self._adjacency)
        return self._csr

    @property
    def entry_point(self) -> int:
        self._require_built()
        return self._entry_point

    def _entry_points(self, query: np.ndarray) -> list[int]:
        """Seed nodes for a search; subclasses may randomize/multi-seed."""
        return [self._entry_point]

    def _span_attributes(self, k: int, params: dict[str, Any]) -> dict[str, Any]:
        attrs = super()._span_attributes(k, params)
        attrs.setdefault("ef", params.get("ef_search", self.ef_search))
        attrs["entry"] = self._entry_point
        return attrs

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        ef_search: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(
                f"{type(self).__name__}.search got unknown params {sorted(params)}"
            )
        if self._vectors.shape[0] == 0:
            return []
        ef = max(k, ef_search if ef_search is not None else self.ef_search)
        visited_before = stats.nodes_visited
        pairs = beam_search(
            query,
            self._vectors,
            self.csr_adjacency,
            self._entry_points(query),
            ef,
            self.score,
            stats=stats,
            allowed=allowed,
            ids=self._ids,
        )
        if allowed is not None:
            # Charge only this search's expansions, not whatever the
            # caller had already accumulated in a shared stats object.
            stats.predicate_evaluations += stats.nodes_visited - visited_before
        stats.candidates_examined += len(pairs)
        return [
            SearchHit(int(self._ids[pos]), float(d)) for d, pos in pairs[:k]
        ]

    def degree_stats(self) -> dict[str, float]:
        self._require_built()
        return graph_degree_stats(self._adjacency)

    def memory_bytes(self) -> int:
        packed = 0 if self._csr is None else self._csr.nbytes
        return sum(a.nbytes for a in self._adjacency) + packed
