"""Learning-to-hash (L2H) indexes (§2.2, table-based).

L2H replaces LSH's random functions with *learned* ones.  The tutorial
names three families: k-means bucketing (SPANN's coarse layer — see
:class:`repro.index.spann.SpannIndex` and :class:`repro.index.ivf.IvfFlatIndex`
for that lineage), spectral hashing [85], and neural approaches [71].
This module implements the binary-code family:

* :class:`SpectralHashIndex` — Weiss et al.'s analytic solution: PCA the
  data, then threshold the smallest-eigenvalue sinusoidal eigenfunctions
  along each principal direction.
* :class:`ItqHashIndex` — iterative quantization: PCA, then *learn* an
  orthogonal rotation minimizing the binarization error (the same
  alternating Procrustes machinery as OPQ, with binary targets) — a
  stand-in for the data-dependent neural hashes at laptop scale.

Both are data-dependent, reproducing the tutorial's caveat that L2H
"cannot easily handle out-of-distribution updates"
(tests/test_data_dependence.py makes the caveat measurable).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from .base import VectorIndex

_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """(n, nbits) {0,1} -> (n, ceil(nbits/8)) packed uint8 codes."""
    return np.packbits(np.atleast_2d(bits).astype(np.uint8, copy=False), axis=1)


def hamming_to_all(query_code: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Hamming distances from one packed code to many (popcount LUT)."""
    xor = np.bitwise_xor(codes, query_code[None, :])
    return _POPCOUNT[xor].sum(axis=1).astype(np.int64, copy=False)


class BinaryHashIndex(VectorIndex):
    """Shared scaffolding: learn bits, rank by Hamming, re-rank exactly.

    Subclasses implement :meth:`_fit` (learn the hash from data) and
    :meth:`_bits` (map vectors to a {0,1} bit matrix).
    """

    family = "table"

    def __init__(self, score: Score | str = "l2", nbits: int = 32, rerank: int = 100):
        super().__init__(score)
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        self.nbits = nbits
        self.rerank = rerank
        self._codes: np.ndarray | None = None

    def _fit(self, data: np.ndarray) -> None:
        raise NotImplementedError

    def _bits(self, vectors: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        self._fit(data)
        self._codes = pack_bits(self._bits(data))

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Packed binary codes for arbitrary vectors."""
        self._require_built()
        return pack_bits(self._bits(np.atleast_2d(np.asarray(vectors, np.float64))))

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        rerank: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(
                f"{type(self).__name__}.search got unknown params {sorted(params)}"
            )
        budget = max(k, rerank if rerank is not None else self.rerank)
        qcode = self.encode(query)[0]
        hd = hamming_to_all(qcode, self._codes)
        stats.candidates_examined += hd.shape[0]
        n = hd.shape[0]
        take = min(budget, n)
        part = np.argpartition(hd, take - 1)[:take] if n > take else np.arange(n)
        return self._brute_force(
            query, k, part.astype(np.int64, copy=False), allowed, stats
        )

    def memory_bytes(self) -> int:
        return 0 if self._codes is None else self._codes.nbytes


class SpectralHashIndex(BinaryHashIndex):
    """Spectral hashing: thresholded PCA-direction sinusoids."""

    name = "spectral_hash"

    def _fit(self, data: np.ndarray) -> None:
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        top = min(self.nbits, vt.shape[0])
        self._axes = vt[:top].T  # (d, top)
        proj = centered @ self._axes
        lo = proj.min(axis=0)
        hi = proj.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        # Enumerate eigenfunctions Phi_m(x) = sin(pi/2 + m*pi*x/span) per
        # direction with eigenvalue ~ (m/span)^2; keep the nbits smallest.
        max_modes = int(np.ceil(self.nbits / top)) + 1
        entries = []
        for axis in range(top):
            for mode in range(1, max_modes + 1):
                entries.append(((mode / span[axis]) ** 2, axis, mode))
        entries.sort()
        self._modes = entries[: self.nbits]
        self._lo = lo
        self._span = span

    def _bits(self, vectors: np.ndarray) -> np.ndarray:
        proj = (vectors - self._mean) @ self._axes
        bits = np.empty((vectors.shape[0], len(self._modes)), dtype=np.uint8)
        for out, (_, axis, mode) in enumerate(self._modes):
            phase = np.pi / 2 + mode * np.pi * (
                (proj[:, axis] - self._lo[axis]) / self._span[axis]
            )
            bits[:, out] = (np.sin(phase) >= 0).astype(np.uint8, copy=False)
        return bits


class ItqHashIndex(BinaryHashIndex):
    """Iterative quantization: PCA + learned rotation, sign binarization."""

    name = "itq_hash"

    def __init__(
        self,
        score: Score | str = "l2",
        nbits: int = 32,
        rerank: int = 100,
        iterations: int = 25,
        seed: int = 0,
    ):
        super().__init__(score, nbits=nbits, rerank=rerank)
        self.iterations = iterations
        self.seed = seed

    def _fit(self, data: np.ndarray) -> None:
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        top = min(self.nbits, vt.shape[0])
        self._axes = vt[:top].T
        v = centered @ self._axes  # (n, top)
        rng = np.random.default_rng(self.seed)
        # Random orthogonal init.
        q, _ = np.linalg.qr(rng.standard_normal((top, top)))
        rotation = q
        for _ in range(self.iterations):
            b = np.sign(v @ rotation)
            b[b == 0] = 1.0
            # Procrustes: argmin_R ||B - V R||_F.
            u, _, wt = np.linalg.svd(v.T @ b)
            rotation = u @ wt
        self._rotation = rotation

    def _bits(self, vectors: np.ndarray) -> np.ndarray:
        proj = (vectors - self._mean) @ self._axes @ self._rotation
        return (proj >= 0).astype(np.uint8, copy=False)
