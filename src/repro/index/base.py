"""The search-index interface every index in §2.2 implements.

Conventions shared by all indexes:

* Indexes are built over **dense integer ids** ``0..n-1`` paired row-wise
  with an (n, d) float32 matrix.  The collection layer owns the mapping
  from user-facing keys to these dense ids, so indexes never deal with
  arbitrary keys, deletions, or attributes directly.
* ``search`` may receive an ``allowed`` boolean mask indexed by id; an
  index must never return a hit whose mask entry is False.  This is the
  hook block-first scans use (§2.3): the optimizer computes the bitmask
  with attribute filtering and hands it to the index scan.
* ``stats`` (when given) is mutated in place with the counters defined in
  :class:`~repro.core.types.SearchStats`, which the cost model calibrates
  against.
* Distances follow the library-wide "smaller is better" convention of
  :mod:`repro.scores.basic`.
"""

from __future__ import annotations

import abc
import time
from typing import Any

import numpy as np

from ..core.errors import IndexNotBuiltError
from ..core.types import SearchHit, SearchStats, as_matrix, as_vector, topk_from_arrays
from ..scores import Score, get_score


class VectorIndex(abc.ABC):
    """Abstract base class for vector search indexes."""

    #: registry name; subclasses override.
    name: str = "abstract"
    #: structural family per the tutorial's taxonomy: table | tree | graph | flat
    family: str = "abstract"
    #: whether incremental :meth:`add` is supported after :meth:`build`.
    supports_updates: bool = False

    def __init__(self, score: Score | str = "l2"):
        self.score = get_score(score)
        self._ids: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------- lifecycle

    @property
    def is_built(self) -> bool:
        return self._vectors is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError(f"{type(self).__name__} has not been built")

    def build(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> "VectorIndex":
        """Build the index over ``vectors`` (ids default to 0..n-1).

        The stored matrix is guaranteed float32 C-contiguous
        (:func:`repro.index._kernels.ensure_f32c` layout) so the search
        kernels never hit strided gathers or silent upcasts.
        """
        from ._kernels import ensure_f32c

        matrix = ensure_f32c(as_matrix(vectors))
        if ids is None:
            ids = np.arange(matrix.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != matrix.shape[0]:
                raise ValueError("ids and vectors length mismatch")
        self._ids = ids
        self._vectors = matrix
        start = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - start
        return self

    @abc.abstractmethod
    def _build(self) -> None:
        """Construct internal structures from ``self._vectors``/``self._ids``."""

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Incrementally insert vectors (only if ``supports_updates``)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental updates;"
            " rebuild instead (or wrap the collection with an LSM buffer)"
        )

    # ---------------------------------------------------------------- search

    def search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None = None,
        stats: SearchStats | None = None,
        span: Any = None,
        **params: Any,
    ) -> list[SearchHit]:
        """Return up to k nearest hits (ascending distance).

        ``params`` are index-specific search-time knobs (``nprobe``,
        ``ef_search``, ``beam_width``, ...); unknown ones raise TypeError
        inside the concrete ``_search`` so typos fail loudly.

        ``span`` (a :class:`repro.observability.Span`, or None) makes
        the scan emit a child span carrying this index's name/family and
        the :class:`SearchStats` delta attributed to the traversal.
        """
        self._require_built()
        if k <= 0:
            return []
        query = as_vector(query, self._vectors.shape[1])
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
        stats = stats if stats is not None else SearchStats()
        if span is None:
            return self._search(query, k, allowed, stats, **params)
        with span.child(
            f"index:{self.name}", **self._span_attributes(k, params)
        ).attach_stats(stats) as scan_span:
            hits = self._search(query, k, allowed, stats, **params)
            scan_span.set(hits=len(hits))
            return hits

    def _span_attributes(self, k: int, params: dict[str, Any]) -> dict[str, Any]:
        """Attributes stamped on this index's search span; subclasses
        extend with their own knobs (see :class:`GraphIndex`)."""
        return {"family": self.family, "n": len(self), "k": k, **params}

    @abc.abstractmethod
    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        **params: Any,
    ) -> list[SearchHit]:
        """Concrete search; inputs are validated by :meth:`search`."""

    def range_search(
        self,
        query: np.ndarray,
        radius: float,
        allowed: np.ndarray | None = None,
        stats: SearchStats | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        """All hits with distance <= radius (default: oversampled k-NN).

        Indexes with a natural range traversal override this; the generic
        fallback repeatedly doubles k until the farthest hit exceeds the
        radius or the whole collection has been ranked.
        """
        self._require_built()
        n = self._vectors.shape[0]
        k = 64
        while True:
            hits = self.search(query, min(k, n), allowed=allowed, stats=stats, **params)
            if len(hits) < min(k, n) or (hits and hits[-1].distance > radius) or k >= n:
                return [h for h in hits if h.distance <= radius]
            k *= 2

    # ------------------------------------------------------------- utilities

    def _mask_for(self, ids: np.ndarray, allowed: np.ndarray | None) -> np.ndarray:
        """Boolean keep-mask for an id array under an ``allowed`` mask."""
        if allowed is None:
            return np.ones(ids.shape[0], dtype=bool)
        return allowed[ids]

    def _brute_force(
        self,
        query: np.ndarray,
        k: int,
        candidate_positions: np.ndarray,
        allowed: np.ndarray | None,
        stats: SearchStats,
    ) -> list[SearchHit]:
        """Exact scoring of a candidate subset (by row position)."""
        if candidate_positions.shape[0] == 0:
            return []
        ids = self._ids[candidate_positions]
        keep = self._mask_for(ids, allowed)
        stats.predicate_evaluations += int(
            0 if allowed is None else candidate_positions.shape[0]
        )
        stats.predicate_rejections += int(
            0 if allowed is None else np.count_nonzero(~keep)
        )
        positions = candidate_positions[keep]
        if positions.shape[0] == 0:
            return []
        dists = self.score.distances(query, self._vectors[positions])
        stats.distance_computations += positions.shape[0]
        stats.candidates_examined += positions.shape[0]
        return topk_from_arrays(self._ids[positions], dists, k)

    def memory_bytes(self) -> int:
        """Approximate resident size of the structure (vectors excluded)."""
        return 0

    def __len__(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[0]

    @property
    def dim(self) -> int:
        self._require_built()
        return self._vectors.shape[1]

    def __repr__(self) -> str:
        state = f"n={len(self)}" if self.is_built else "unbuilt"
        return f"{type(self).__name__}({state}, score={self.score.name})"
