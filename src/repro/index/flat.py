"""Flat (brute-force) index: exact search by full similarity projection.

The tutorial notes a relational system "can already answer vector queries
via brute-force scan" (SingleStore, §2.4).  Flat search is also the
ground-truth oracle every approximate index is measured against, and the
executor's fallback plan when no index fits a query.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from .base import VectorIndex


class FlatIndex(VectorIndex):
    """Exact nearest-neighbor search via a full scan."""

    name = "flat"
    family = "flat"
    supports_updates = True

    def _build(self) -> None:
        # Nothing to construct: the matrix itself is the "index".
        return

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._require_built()
        from ..core.types import as_matrix
        from ._kernels import ensure_f32c

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        self._vectors = ensure_f32c(np.vstack([self._vectors, matrix]))
        self._ids = np.concatenate([self._ids, ids])

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"FlatIndex.search got unknown params {sorted(params)}")
        positions = np.arange(self._vectors.shape[0])
        return self._brute_force(query, k, positions, allowed, stats)

    def range_search(self, query, radius, allowed=None, stats=None, **params):
        """Exact range query: one scan, threshold filter."""
        self._require_built()
        stats = stats if stats is not None else SearchStats()
        from ..core.types import as_vector

        query = as_vector(query, self._vectors.shape[1])
        dists = self.score.distances(query, self._vectors)
        stats.distance_computations += self._vectors.shape[0]
        within = dists <= radius
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            within &= allowed[self._ids]
        order = np.argsort(dists[within], kind="stable")
        ids = self._ids[within][order]
        d = dists[within][order]
        return [SearchHit(int(i), float(x)) for i, x in zip(ids, d)]
