"""Locality-sensitive hashing index (§2.2, table-based).

The classic L-tables-of-K-concatenated-functions scheme: each of L hash
tables buckets vectors by the concatenation of K hash values drawn from a
hash family.  A query is hashed into every table and the union of its
collision buckets is re-ranked exactly.

Two hash families are provided, matching the tutorial's examples:

* ``hyperplane`` — random-hyperplane sign bits (IndexLSH [1] / angular
  distance); K sign bits form a K-bit bucket key.
* ``pstable`` — p-stable projections ``floor((a.x + b) / w)`` of Datar et
  al. [35] (E2LSH), the family with guarantees for Euclidean distance.

Raising L raises recall (more chances to collide); raising K shrinks
buckets (higher precision per bucket, lower per-table recall) — the
bucket-size tradeoff the tutorial describes for all table-based indexes.
**Multi-probe** querying (``num_probes > 1``) recovers recall without
more tables by also visiting the buckets whose keys differ from the
query's in the least-confident positions (hyperplane family: smallest
projection magnitudes; p-stable family: +-1 on the closest boundaries).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from .base import VectorIndex


class LshIndex(VectorIndex):
    """L hash tables of K concatenated hash functions.

    Parameters
    ----------
    num_tables:
        L — number of independent hash tables.
    hashes_per_table:
        K — concatenated hash functions per table.
    family:
        ``"hyperplane"`` or ``"pstable"``.
    bucket_width:
        w for the p-stable family (ignored for hyperplane).
    """

    name = "lsh"
    family = "table"
    supports_updates = True

    def __init__(
        self,
        score: Score | str = "l2",
        num_tables: int = 8,
        hashes_per_table: int = 12,
        hash_family: str = "hyperplane",
        bucket_width: float = 4.0,
        num_probes: int = 1,
        seed: int = 0,
    ):
        super().__init__(score)
        if num_tables <= 0 or hashes_per_table <= 0:
            raise ValueError("num_tables and hashes_per_table must be positive")
        if hash_family not in ("hyperplane", "pstable"):
            raise ValueError(f"unknown hash family {hash_family!r}")
        if num_probes < 1:
            raise ValueError("num_probes must be >= 1")
        self.num_tables = num_tables
        self.hashes_per_table = hashes_per_table
        self.hash_family = hash_family
        self.bucket_width = bucket_width
        self.num_probes = num_probes
        self.seed = seed
        self._projections: np.ndarray | None = None  # (L, K, d)
        self._offsets: np.ndarray | None = None  # (L, K) for pstable
        self._tables: list[dict[tuple, list[int]]] = []

    def _init_functions(self, dim: int) -> None:
        rng = np.random.default_rng(self.seed)
        shape = (self.num_tables, self.hashes_per_table, dim)
        self._projections = rng.standard_normal(shape)
        if self.hash_family == "pstable":
            self._offsets = rng.uniform(
                0, self.bucket_width, size=(self.num_tables, self.hashes_per_table)
            )

    def _hash_keys(self, vectors: np.ndarray) -> np.ndarray:
        """(n, L) array of hashable bucket keys (as tuples via object view)."""
        vectors = np.atleast_2d(vectors)
        # (L, K, n): project every vector through every function.
        proj = np.einsum("lkd,nd->lkn", self._projections, vectors)
        if self.hash_family == "hyperplane":
            codes = (proj >= 0).astype(np.int64)
        else:
            codes = np.floor(
                (proj + self._offsets[:, :, None]) / self.bucket_width
            ).astype(np.int64)
        # -> (n, L, K) then tuple per (n, L)
        return codes.transpose(2, 0, 1)

    def _build(self) -> None:
        self._init_functions(self._vectors.shape[1])
        self._tables = [{} for _ in range(self.num_tables)]
        keys = self._hash_keys(self._vectors)
        for pos in range(self._vectors.shape[0]):
            for t in range(self.num_tables):
                key = tuple(keys[pos, t])
                self._tables[t].setdefault(key, []).append(pos)

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._require_built()
        from ..core.types import as_matrix

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, ids])
        keys = self._hash_keys(matrix)
        for offset in range(matrix.shape[0]):
            pos = start + offset
            for t in range(self.num_tables):
                self._tables[t].setdefault(tuple(keys[offset, t]), []).append(pos)

    def _probe_keys(self, query: np.ndarray, num_probes: int) -> list[list[tuple]]:
        """Per table: the query's bucket key plus its most likely
        perturbations (multi-probe LSH), ordered by confidence."""
        proj = np.einsum("lkd,d->lk", self._projections, query)
        if self.hash_family == "hyperplane":
            base_codes = (proj >= 0).astype(np.int64, copy=False)
            confidence = np.abs(proj)  # distance to each hyperplane
        else:
            shifted = (proj + self._offsets) / self.bucket_width
            base_codes = np.floor(shifted).astype(np.int64, copy=False)
            frac = shifted - base_codes
            # Distance to the nearer bucket boundary.
            confidence = np.minimum(frac, 1.0 - frac)
        per_table: list[list[tuple]] = []
        for t in range(self.num_tables):
            keys = [tuple(base_codes[t])]
            if num_probes > 1:
                order = np.argsort(confidence[t])  # least confident first
                for slot in order[: num_probes - 1]:
                    perturbed = base_codes[t].copy()
                    if self.hash_family == "hyperplane":
                        perturbed[slot] ^= 1
                    else:
                        frac_val = (proj[t, slot] + self._offsets[t, slot]) / \
                            self.bucket_width - base_codes[t, slot]
                        perturbed[slot] += 1 if frac_val >= 0.5 else -1
                    keys.append(tuple(perturbed))
            per_table.append(keys)
        return per_table

    def _candidates(self, query: np.ndarray, num_probes: int) -> np.ndarray:
        found: set[int] = set()
        for t, keys in enumerate(self._probe_keys(query, num_probes)):
            table = self._tables[t]
            for key in keys:
                found.update(table.get(key, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        num_probes: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"LshIndex.search got unknown params {sorted(params)}")
        probes = max(1, num_probes if num_probes is not None else self.num_probes)
        candidates = self._candidates(query, probes)
        stats.nodes_visited += self.num_tables * probes
        return self._brute_force(query, k, candidates, allowed, stats)

    def bucket_sizes(self) -> list[int]:
        """All bucket sizes across tables (for the E3 tradeoff bench)."""
        return [len(b) for table in self._tables for b in table.values()]

    def memory_bytes(self) -> int:
        proj = 0 if self._projections is None else self._projections.nbytes
        entries = sum(len(b) for t in self._tables for b in t.values())
        return proj + entries * 8
