"""Index registry: resolve names (Figure 1's index zoo) to classes."""

from __future__ import annotations

from typing import Any, Type

from ..core.errors import UnknownIndexError
from .annoy import AnnoyIndex
from .base import VectorIndex
from .diskann import DiskAnnIndex
from .fanng import FanngIndex
from .filtered_graph import FilteredHnswIndex
from .flat import FlatIndex
from .hnsw import HnswIndex
from .ivf import IvfAdcIndex, IvfFlatIndex, IvfSqIndex
from .kdtree import KdTreeIndex
from .knng import KnngIndex
from .l2h import ItqHashIndex, SpectralHashIndex
from .lsh import LshIndex
from .ngt import NgtIndex
from .nndescent import NnDescentIndex
from .nsg import NsgIndex
from .nsw import NswIndex
from .pcatree import PcaTreeIndex
from .quantized import PqIndex, SqIndex
from .randkd import RandomizedKdForestIndex
from .rptree import RpTreeIndex
from .spann import SpannIndex
from .vamana import VamanaIndex

_REGISTRY: dict[str, Type[VectorIndex]] = {
    cls.name: cls
    for cls in (
        AnnoyIndex,
        DiskAnnIndex,
        FanngIndex,
        FilteredHnswIndex,
        FlatIndex,
        HnswIndex,
        ItqHashIndex,
        IvfAdcIndex,
        IvfFlatIndex,
        IvfSqIndex,
        KdTreeIndex,
        KnngIndex,
        LshIndex,
        NgtIndex,
        NnDescentIndex,
        NsgIndex,
        NswIndex,
        PcaTreeIndex,
        PqIndex,
        RandomizedKdForestIndex,
        RpTreeIndex,
        SpannIndex,
        SpectralHashIndex,
        SqIndex,
        VamanaIndex,
    )
}
_REGISTRY["opq"] = PqIndex  # created with optimized=True via make_index


def register_index(name: str, cls: Type[VectorIndex]) -> None:
    """Register a custom index class under ``name``."""
    _REGISTRY[name.lower()] = cls


def available_indexes() -> list[str]:
    return sorted(_REGISTRY)


def index_families() -> dict[str, list[str]]:
    """Indexes grouped by the tutorial's structural taxonomy."""
    families: dict[str, list[str]] = {}
    for name, cls in _REGISTRY.items():
        families.setdefault(cls.family, []).append(name)
    return {fam: sorted(names) for fam, names in sorted(families.items())}


def make_index(name: str, **kwargs: Any) -> VectorIndex:
    """Instantiate an index by registry name with constructor kwargs."""
    key = name.lower()
    if key == "opq":
        kwargs.setdefault("optimized", True)
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise UnknownIndexError(
            f"unknown index {name!r}; available: {', '.join(available_indexes())}"
        ) from None
    return cls(**kwargs)
