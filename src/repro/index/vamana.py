"""Vamana graph [74] — the in-memory core of DiskANN (§2.2, MSN family).

Vamana starts from a random regular graph, then makes two passes over
the nodes in random order: search the current graph from the medoid for
the node's vector, collect the visited set, and re-select the node's
out-edges with **RobustPrune**.  The second pass uses ``alpha > 1``,
which deliberately keeps some longer edges — the ingredient that makes
the graph traversable with a small beam (and hence few disk reads in
DiskANN, see :mod:`repro.index.diskann`).
"""

from __future__ import annotations

import numpy as np

from ..scores import Score
from ._graph import Adjacency, beam_search, ensure_connected, medoid, robust_prune
from ._kernels import ensure_f32c
from .graph_base import GraphIndex


def build_vamana_graph(
    vectors: np.ndarray,
    max_degree: int,
    beam_width: int,
    alpha: float,
    score: Score,
    seed: int = 0,
) -> tuple[Adjacency, int]:
    """Construct a Vamana graph; returns (adjacency, medoid position)."""
    # Kernel boundary: the beam searches below assume float32
    # C-contiguous (a no-op for the in-tree callers, which pass the
    # ingest-blessed ``self._vectors``).
    vectors = ensure_f32c(vectors)
    n = vectors.shape[0]
    if n == 0:
        return [], 0
    rng = np.random.default_rng(seed)
    degree = min(max_degree, n - 1)
    adjacency: Adjacency = []
    for v in range(n):
        if degree <= 0:
            adjacency.append(np.empty(0, dtype=np.int64))
            continue
        nbrs = rng.choice(n - 1, size=degree, replace=False)
        nbrs[nbrs >= v] += 1
        adjacency.append(nbrs.astype(np.int64))
    start = medoid(vectors.astype(np.float64))

    for pass_alpha in (1.0, alpha):
        order = rng.permutation(n)
        for v in order:
            v = int(v)
            pairs = beam_search(
                vectors[v], vectors, adjacency, [start], beam_width, score
            )
            pool = {p: d for d, p in pairs if p != v}
            for nb in adjacency[v]:
                nb = int(nb)
                if nb != v and nb not in pool:
                    pool[nb] = float(
                        score.distances(vectors[v], vectors[nb : nb + 1])[0]
                    )
            if not pool:
                continue
            positions = np.fromiter(pool.keys(), dtype=np.int64, count=len(pool))
            dists = np.fromiter(pool.values(), dtype=np.float64, count=len(pool))
            adjacency[v] = robust_prune(
                positions, dists, vectors, max_degree, score, alpha=pass_alpha
            )
            # Back-edges with overflow pruning.
            for nb in adjacency[v]:
                nb = int(nb)
                if v in adjacency[nb]:
                    continue
                merged = np.append(adjacency[nb], v)
                if merged.shape[0] > max_degree:
                    d = score.distances(vectors[nb], vectors[merged])
                    merged = robust_prune(
                        merged, d, vectors, max_degree, score, alpha=pass_alpha
                    )
                adjacency[nb] = merged

    ensure_connected(adjacency, vectors, start, score, max_degree)
    return adjacency, start


class VamanaIndex(GraphIndex):
    """In-memory Vamana (DiskANN's graph without the disk).

    Parameters
    ----------
    max_degree:
        R — degree cap.
    beam_width:
        L — construction beam width.
    alpha:
        Second-pass RobustPrune slack (> 1 keeps long-range edges).
    """

    name = "vamana"

    def __init__(
        self,
        score: Score | str = "l2",
        max_degree: int = 16,
        beam_width: int = 64,
        alpha: float = 1.2,
        ef_search: int = 64,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        self.max_degree = max_degree
        self.beam_width = beam_width
        self.alpha = alpha

    def _build_graph(self) -> Adjacency:
        adjacency, start = build_vamana_graph(
            self._vectors,
            self.max_degree,
            self.beam_width,
            self.alpha,
            self.score,
            seed=self.seed,
        )
        self._entry_point = start
        return adjacency

    def _default_entry_point(self) -> int:
        return getattr(self, "_entry_point", 0)
