"""ANNOY-style index [2] (§2.2, tree-based).

Spotify's ANNOY is "similar to RPTree but selects the splitting
threshold based on random medians": each split direction is the
perpendicular bisector of two randomly sampled points, and the threshold
is the midpoint of their projections — so splits adapt to data geometry
without any PCA preprocessing.  Recall comes from a forest searched
through a single shared priority queue.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._tree import TreeNode, best_first_search, build_tree, tree_stats, unit
from .base import VectorIndex


def _annoy_split(rows: np.ndarray, rng: np.random.Generator):
    """Perpendicular bisector of two random points, midpoint threshold."""
    n = rows.shape[0]
    # A few attempts to sample two distinct points.
    for _ in range(8):
        i, j = rng.integers(n), rng.integers(n)
        direction = rows[i] - rows[j]
        norm = np.linalg.norm(direction)
        if norm > 0:
            w = direction / norm
            midpoint = (rows[i] + rows[j]) / 2.0
            t = float(w @ midpoint)
            proj = rows @ w
            if proj.min() < t <= proj.max():
                return w, t
    # Fallback: random direction at the median (degenerate local data).
    w = unit(rng.standard_normal(rows.shape[1]))
    proj = rows @ w
    if proj.max() == proj.min():
        return None
    return w, float(np.median(proj))


class AnnoyIndex(VectorIndex):
    """Forest of two-point-bisector trees with shared-queue search.

    Parameters
    ----------
    num_trees:
        Forest size; ANNOY's main recall knob.
    search_k:
        Default leaf budget per query (ANNOY's ``search_k`` is node
        visits; ours counts leaves, same role).
    """

    name = "annoy"
    family = "tree"

    def __init__(
        self,
        score: Score | str = "l2",
        num_trees: int = 8,
        leaf_size: int = 16,
        search_k: int = 64,
        seed: int = 0,
    ):
        super().__init__(score)
        if num_trees <= 0:
            raise ValueError("num_trees must be positive")
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.search_k = search_k
        self.seed = seed
        self._roots: list[TreeNode] = []

    def _build(self) -> None:
        data = self._vectors.astype(np.float64)
        positions = np.arange(data.shape[0], dtype=np.int64)
        self._roots = [
            build_tree(
                positions,
                data,
                _annoy_split,
                self.leaf_size,
                np.random.default_rng(self.seed + t),
            )
            for t in range(self.num_trees)
        ]

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        search_k: int | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        if params:
            raise TypeError(f"AnnoyIndex.search got unknown params {sorted(params)}")
        budget = max(1, search_k if search_k is not None else self.search_k)
        positions, leaves = best_first_search(
            self._roots, query.astype(np.float64), max_leaves=budget
        )
        stats.nodes_visited += leaves
        return self._brute_force(query, k, positions, allowed, stats)

    def stats(self) -> list[dict[str, float]]:
        self._require_built()
        return [tree_stats(r) for r in self._roots]
