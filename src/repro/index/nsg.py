"""Navigating spreading-out graph (NSG) [40] (§2.2, MSN family).

NSG approximates a monotonic search network cheaply: instead of FANNG's
many random-pair search trials, it designates one "navigating node" (the
medoid) as the source of *all* trials.  For every node, a best-first
search from the navigating node collects a candidate pool, edges are
selected with the MRNG occlusion rule (our ``robust_prune`` with
alpha=1), and a final spanning pass reattaches any node the pruning
disconnected.  Queries always start at the navigating node.
"""

from __future__ import annotations

import numpy as np

from ..scores import Score
from ._graph import Adjacency, beam_search, ensure_connected, robust_prune
from .graph_base import GraphIndex
from .nndescent import nn_descent


class NsgIndex(GraphIndex):
    """NSG built on an NN-Descent initial graph.

    Parameters
    ----------
    max_degree:
        R — out-degree cap after pruning.
    candidate_pool:
        Beam width of the per-node construction search (C in the paper).
    knng_k:
        Width of the NN-Descent graph used for initialization.
    """

    name = "nsg"

    def __init__(
        self,
        score: Score | str = "l2",
        max_degree: int = 16,
        candidate_pool: int = 64,
        knng_k: int = 16,
        ef_search: int = 64,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        self.max_degree = max_degree
        self.candidate_pool = candidate_pool
        self.knng_k = knng_k
        self.edges_added_for_connectivity = 0

    def _build_graph(self) -> Adjacency:
        n = self._vectors.shape[0]
        if n <= 1:
            return [np.empty(0, dtype=np.int64) for _ in range(n)]
        knng = nn_descent(
            self._vectors,
            min(self.knng_k, n - 1),
            self.score,
            seed=self.seed,
        ).to_adjacency()
        nav = self._default_entry_point()

        adjacency: Adjacency = [np.empty(0, dtype=np.int64) for _ in range(n)]
        for v in range(n):
            pairs = beam_search(
                self._vectors[v],
                self._vectors,
                knng,
                [nav],
                self.candidate_pool,
                self.score,
            )
            pool = {p: d for d, p in pairs if p != v}
            # The paper unions in the KNNG neighbors of v.
            for nb in knng[v]:
                nb = int(nb)
                if nb != v and nb not in pool:
                    pool[nb] = float(
                        self.score.distances(self._vectors[v], self._vectors[nb : nb + 1])[0]
                    )
            if not pool:
                continue
            positions = np.fromiter(pool.keys(), dtype=np.int64, count=len(pool))
            dists = np.fromiter(pool.values(), dtype=np.float64, count=len(pool))
            adjacency[v] = robust_prune(
                positions, dists, self._vectors, self.max_degree, self.score, alpha=1.0
            )

        # Reverse edges, re-pruning overflowing nodes.
        for v in range(n):
            for nb in adjacency[v]:
                nb = int(nb)
                if v not in adjacency[nb]:
                    merged = np.append(adjacency[nb], v)
                    if merged.shape[0] > self.max_degree:
                        d = self.score.distances(
                            self._vectors[nb], self._vectors[merged]
                        )
                        merged = robust_prune(
                            merged, d, self._vectors, self.max_degree, self.score, 1.0
                        )
                    adjacency[nb] = merged

        self.edges_added_for_connectivity = ensure_connected(
            adjacency, self._vectors, nav, self.score, self.max_degree
        )
        self._entry_point = nav
        return adjacency

    def _default_entry_point(self) -> int:
        from ._graph import medoid

        return medoid(self._vectors.astype(np.float64)) if len(self) else 0

    def _entry_points(self, query: np.ndarray) -> list[int]:
        return [self._entry_point]  # all searches start at the navigating node
