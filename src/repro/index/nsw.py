"""Navigable small world graph (NSW) [57] (§2.2, graph-based).

Malkov et al.'s construction is beautifully simple: insert nodes one at
a time, and connect each to its ``f`` nearest neighbors *among nodes
already in the graph*, found by searching the graph built so far.  Early
edges become long-range "highways" as the graph densifies, giving the
small-world property; searches use several random restarts to escape
local minima (the flaw HNSW's layers later fixed).
"""

from __future__ import annotations

import numpy as np

from ..scores import Score
from ._graph import Adjacency, beam_search
from .graph_base import GraphIndex


class NswIndex(GraphIndex):
    """Incrementally-built navigable small world graph.

    Parameters
    ----------
    connections:
        f — bidirectional edges added per inserted node.
    ef_construction:
        Beam width when locating a new node's neighbors.
    num_entry_points:
        Random restarts per search (NSW's recall knob besides ef).
    """

    name = "nsw"
    supports_updates = True

    def __init__(
        self,
        score: Score | str = "l2",
        connections: int = 8,
        ef_construction: int = 64,
        ef_search: int = 64,
        num_entry_points: int = 2,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        if connections <= 0:
            raise ValueError("connections must be positive")
        self.connections = connections
        self.ef_construction = ef_construction
        self.num_entry_points = num_entry_points

    def _insert_position(self, pos: int, adjacency: Adjacency) -> None:
        """Connect node ``pos`` to its f nearest current members."""
        if pos == 0:
            return
        query = self._vectors[pos]
        entry = [0] if pos < 4 else list(range(min(2, pos)))
        pairs = beam_search(
            query,
            self._vectors,
            lambda node: adjacency[node],
            entry,
            max(self.connections, self.ef_construction),
            self.score,
        )
        targets = [p for _, p in pairs[: self.connections]]
        adjacency[pos] = np.asarray(targets, dtype=np.int64)
        for t in targets:
            adjacency[t] = np.append(adjacency[t], pos)

    def _build_graph(self) -> Adjacency:
        n = self._vectors.shape[0]
        adjacency: Adjacency = [np.empty(0, dtype=np.int64) for _ in range(n)]
        for pos in range(n):
            self._insert_position(pos, adjacency)
        return adjacency

    def add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """NSW inserts are the same operation as construction."""
        self._require_built()
        from ..core.types import as_matrix

        matrix = as_matrix(vectors, self._vectors.shape[1])
        ids = np.asarray(ids, dtype=np.int64)
        start = self._vectors.shape[0]
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, ids])
        for offset in range(matrix.shape[0]):
            self._adjacency.append(np.empty(0, dtype=np.int64))
            self._insert_position(start + offset, self._adjacency)
        self._invalidate_csr()

    def _entry_points(self, query: np.ndarray) -> list[int]:
        n = self._vectors.shape[0]
        rng = np.random.default_rng(self.seed)
        count = min(self.num_entry_points, n)
        points = [self._entry_point]
        points.extend(int(p) for p in rng.choice(n, size=count, replace=False))
        return points
