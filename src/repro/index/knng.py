"""Exact k-nearest-neighbor graph (KNNG) index (§2.2, graph-based).

The brute-force construction is O(N^2) — the tutorial notes this
"appears to be a fundamental limit" [86] — which is exactly what makes
it the baseline bench E6 compares NN-Descent against.  Once built, a
member query is answered in O(1) by returning the node's stored
neighbor list; non-member queries fall back to beam search over the
graph (seeded from several random nodes, since plain KNNGs are not
guaranteed navigable).
"""

from __future__ import annotations

import numpy as np

from ..scores import Score
from ._graph import Adjacency
from .graph_base import GraphIndex


def brute_force_knng(
    vectors: np.ndarray,
    k: int,
    score: Score,
    block_size: int = 512,
) -> Adjacency:
    """Exact directed KNNG via blocked pairwise distances.

    Blocking keeps peak memory at O(block * n) instead of O(n^2).
    """
    n = vectors.shape[0]
    k = min(k, n - 1)
    adjacency: Adjacency = []
    if k <= 0:
        return [np.empty(0, dtype=np.int64) for _ in range(n)]
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        dmat = score.pairwise(vectors[start:stop], vectors)
        # Exclude self-edges by inflating the diagonal entries.
        rows = np.arange(start, stop)
        dmat[np.arange(stop - start), rows] = np.inf
        part = np.argpartition(dmat, k - 1, axis=1)[:, :k]
        row_idx = np.arange(stop - start)[:, None]
        order = np.argsort(dmat[row_idx, part], axis=1, kind="stable")
        sorted_nbrs = part[row_idx, order]
        adjacency.extend(np.asarray(row, dtype=np.int64) for row in sorted_nbrs)
    return adjacency


class KnngIndex(GraphIndex):
    """Exact KNNG with O(1) member lookups and beam search otherwise.

    Parameters
    ----------
    graph_k:
        Out-degree of the graph (k of the KNNG).
    num_entry_points:
        Random seeds per search; KNNGs can have poor navigability, so
        multiple restarts recover recall.
    """

    name = "knng"

    def __init__(
        self,
        score: Score | str = "l2",
        graph_k: int = 16,
        ef_search: int = 64,
        num_entry_points: int = 4,
        seed: int = 0,
    ):
        super().__init__(score, ef_search=ef_search, seed=seed)
        if graph_k <= 0:
            raise ValueError("graph_k must be positive")
        self.graph_k = graph_k
        self.num_entry_points = num_entry_points

    def _build_graph(self) -> Adjacency:
        return brute_force_knng(self._vectors, self.graph_k, self.score)

    def _entry_points(self, query: np.ndarray) -> list[int]:
        n = self._vectors.shape[0]
        rng = np.random.default_rng(self.seed)
        count = min(self.num_entry_points, n)
        points = [self._entry_point]
        points.extend(int(p) for p in rng.choice(n, size=count, replace=False))
        return points

    def member_neighbors(self, position: int) -> np.ndarray:
        """O(1) exact k-NN of a member vector — the KNNG's party trick."""
        self._require_built()
        return self._adjacency[position]
