"""Attribute-aware graph construction (§2.3 offline blocking on graphs).

"Online blocking can cause a graph-based index to become disconnected
... these techniques construct the graph in a way that can prevent
disconnections from occurring by considering attribute values during
edge selection" [3, 43, 87].

:class:`FilteredHnswIndex` implements the *stitched* flavor
(Filtered-DiskANN's FilteredVamana/StitchedVamana [43], on our HNSW):

* a standard HNSW is built over the full collection (cross-label
  navigability for unfiltered queries);
* per label, a same-label KNNG is stitched into the bottom layer, so
  the subgraph induced by any single label is itself connected and
  navigable;
* per label, an entry point (the label's medoid) is recorded.

``search(..., label=v)`` then traverses *only* same-label edges from
the label's own entry point — no wasted hops on blocked nodes, no
disconnection, which is precisely the failure mode of naive bitmask
blocking at low selectivity (ablated in bench E15).
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..scores import Score
from ._graph import beam_search, ensure_connected, medoid
from .hnsw import HnswIndex
from .knng import brute_force_knng


class FilteredHnswIndex(HnswIndex):
    """HNSW stitched with per-label subgraph edges.

    Parameters
    ----------
    label_k:
        Same-label neighbors stitched per node (the per-label KNNG
        width).  Bigger = better filtered recall, more edges.
    m, ef_construction, ...:
        As in :class:`HnswIndex`.

    Build with :meth:`build_with_labels` (labels are per-row attribute
    values); plain :meth:`build` falls back to unlabeled HNSW.
    """

    name = "filtered_hnsw"

    def __init__(
        self,
        score: Score | str = "l2",
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        label_k: int = 8,
        seed: int = 0,
    ):
        super().__init__(
            score, m=m, ef_construction=ef_construction, ef_search=ef_search,
            seed=seed,
        )
        self.label_k = label_k
        self.labels: np.ndarray | None = None
        self._label_edges: dict[int, np.ndarray] = {}
        self._label_entries: dict[Hashable, int] = {}

    # ------------------------------------------------------------------ build

    def build_with_labels(
        self, vectors: np.ndarray, labels, ids: np.ndarray | None = None
    ) -> "FilteredHnswIndex":
        """Build the stitched graph; ``labels`` is one value per row."""
        labels = np.asarray(labels)
        if labels.shape[0] != np.atleast_2d(vectors).shape[0]:
            raise ValueError("one label per vector is required")
        self.labels = labels
        self.build(vectors, ids=ids)
        return self

    def _build(self) -> None:
        super()._build()
        self._label_edges = {}
        self._label_entries = {}
        if self.labels is None:
            return
        for value in np.unique(self.labels):
            members = np.flatnonzero(self.labels == value)
            if members.size == 0:
                continue
            key = value.item() if isinstance(value, np.generic) else value
            sub_vectors = self._vectors[members]
            local_entry = medoid(sub_vectors.astype(np.float64))
            self._label_entries[key] = int(members[local_entry])
            if members.size == 1:
                self._label_edges.setdefault(int(members[0]), np.empty(0, np.int64))
                continue
            k = min(self.label_k, members.size - 1)
            # Directed KNNG edges alone need not be reachable from the
            # entry; symmetrize, then repair connectivity the same way
            # NSG/FilteredVamana do.
            local = brute_force_knng(sub_vectors, k, self.score)
            for a, neighbors in enumerate(list(local)):
                for b in neighbors:
                    b = int(b)
                    if a not in local[b]:
                        local[b] = np.append(local[b], a)
            ensure_connected(
                local, sub_vectors, local_entry, self.score,
                max_degree=max(4, 2 * k),
            )
            for a, neighbors in enumerate(local):
                node = int(members[a])
                stitched = members[np.asarray(neighbors, dtype=np.int64)]
                existing = self._label_edges.get(node)
                self._label_edges[node] = (
                    np.unique(stitched) if existing is None
                    else np.unique(np.concatenate([existing, stitched]))
                )

    # ----------------------------------------------------------------- search

    def _stitched_neighbors(self, node: int) -> np.ndarray:
        base = self._layers[0].get(node, np.empty(0, dtype=np.int64))
        extra = self._label_edges.get(node)
        if extra is None or extra.size == 0:
            return base
        return np.unique(np.concatenate([base, extra]))

    def _label_subgraph_neighbors(self, label_mask: np.ndarray):
        def neighbors(node: int) -> np.ndarray:
            stitched = self._stitched_neighbors(node)
            return stitched[label_mask[stitched]]

        return neighbors

    def _search(
        self,
        query: np.ndarray,
        k: int,
        allowed: np.ndarray | None,
        stats: SearchStats,
        ef_search: int | None = None,
        label: Any = None,
        **params: Any,
    ) -> list[SearchHit]:
        if label is None:
            # Unfiltered (or bitmask-blocked) search over the stitched
            # bottom layer; the extra edges only help connectivity.
            return super()._search(
                query, k, allowed, stats, ef_search=ef_search, **params
            )
        if params:
            raise TypeError(
                f"FilteredHnswIndex.search got unknown params {sorted(params)}"
            )
        if self.labels is None:
            raise ValueError("index was built without labels")
        key = label.item() if isinstance(label, np.generic) else label
        entry = self._label_entries.get(key)
        if entry is None:
            return []
        label_mask = self.labels == label
        ef = max(k, ef_search if ef_search is not None else self.ef_search)
        pairs = beam_search(
            query,
            self._vectors,
            self._label_subgraph_neighbors(label_mask),
            [entry],
            ef,
            self.score,
            stats=stats,
            allowed=allowed,
            ids=self._ids,
        )
        stats.candidates_examined += len(pairs)
        return [SearchHit(int(self._ids[p]), float(d)) for d, p in pairs[:k]]

    def stitched_edge_count(self) -> int:
        return int(sum(e.size for e in self._label_edges.values()))

    def memory_bytes(self) -> int:
        stitched = sum(e.nbytes + 16 for e in self._label_edges.values())
        return super().memory_bytes() + stitched
