"""Log-structured merge (LSM) storage for out-of-place updates (§2.3).

Vector indexes are data-dependent and expensive to update in place, so
several VDBMSs (Milvus [6, 79], Manu [45]) buffer writes in an LSM tree:
inserts and deletes land in a memtable, immutable sorted runs are flushed
when the memtable fills, and size-tiered compaction merges runs in the
background.  Searches consult the memtable plus every run (newest wins).

Keys are integer item ids; values are float32 vectors plus an optional
attribute dict.  Deletes are tombstones until compaction drops them.

Durable mode (crash-safe flush; torture-rig tentpole): pass a
``directory`` and every frozen run is committed to disk through the
blessed atomic writer — run file first (``run-<seq>.npz``, temp +
``os.replace``), then ``lsm_manifest.json`` rewritten atomically as the
commit point listing the live runs with per-file CRC-32 checksums, then
superseded run files garbage-collected.  A crash at *any* step leaves
the manifest pointing at a complete, checksummed set of runs: reopening
with :meth:`LsmVectorStore.open` always yields exactly the state before
or after the interrupted flush/compaction, never a torn hybrid (the
seeded crash-recovery loop in ``repro.torture`` replays every prefix to
prove it).  The memtable is volatile by design — durability is acquired
at flush, as in the real LSM engines this models.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..core.errors import StorageError
from ..core.types import VECTOR_DTYPE, as_vector
from .atomic import (
    OS_FS,
    TMP_SUFFIX,
    Filesystem,
    atomic_write_bytes,
    atomic_write_json,
    checksum,
    load_json_bytes,
    load_npz_bytes,
    npz_bytes,
    read_snapshot_file,
)

LSM_MANIFEST_VERSION = 1
LSM_MANIFEST_NAME = "lsm_manifest.json"


@dataclass(frozen=True, slots=True)
class _Record:
    """One versioned entry.  ``vector is None`` marks a tombstone."""

    key: int
    vector: np.ndarray | None
    attributes: dict[str, Any] | None = None

    @property
    def is_tombstone(self) -> bool:
        return self.vector is None


class SortedRun:
    """An immutable run of records sorted by key, binary-searchable."""

    def __init__(self, records: list[_Record]):
        records = sorted(records, key=lambda r: r.key)
        keys = [r.key for r in records]
        if len(set(keys)) != len(keys):
            raise StorageError("duplicate keys within one run")
        self._records = records
        self._keys = np.asarray(keys, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: int) -> _Record | None:
        i = int(np.searchsorted(self._keys, key))
        if i < len(self._records) and self._records[i].key == key:
            return self._records[i]
        return None

    def __iter__(self) -> Iterator[_Record]:
        return iter(self._records)

    @property
    def key_range(self) -> tuple[int, int]:
        if not self._records:
            return (0, -1)
        return (int(self._keys[0]), int(self._keys[-1]))


def _jsonable_attrs(attributes: dict[str, Any] | None) -> Any:
    if attributes is None:
        return None
    return {
        key: (value.item() if isinstance(value, np.generic) else value)
        for key, value in attributes.items()
    }


def _run_payload(run: SortedRun, dim: int) -> bytes:
    """Serialize a run to ``.npz`` bytes (tombstones as zeroed rows)."""
    records = list(run)
    keys = np.array([r.key for r in records], dtype=np.int64)
    vectors = np.zeros((len(records), dim), dtype=VECTOR_DTYPE)
    alive = np.zeros(len(records), dtype=bool)
    for row, record in enumerate(records):
        if not record.is_tombstone:
            vectors[row] = record.vector
            alive[row] = True
    attrs_json = json.dumps(
        [_jsonable_attrs(r.attributes) for r in records]
    ).encode("utf-8")
    return npz_bytes(
        keys=keys,
        vectors=vectors,
        alive=alive,
        attrs=np.frombuffer(attrs_json, dtype=np.uint8),
    )


def _run_from_payload(data: bytes, dim: int, name: str) -> SortedRun:
    """Rebuild a run from verified ``.npz`` bytes (errors name the file)."""
    arrays = load_npz_bytes(data, name)
    for field_name in ("keys", "vectors", "alive", "attrs"):
        if field_name not in arrays:
            raise StorageError(
                f"corrupt snapshot file {name}: missing {field_name!r} array"
            )
    keys = arrays["keys"]
    vectors = arrays["vectors"]
    alive = arrays["alive"]
    attrs_list = load_json_bytes(arrays["attrs"].tobytes(), name)
    if vectors.ndim != 2 or vectors.shape[1] != dim or len(attrs_list) != len(keys):
        raise StorageError(
            f"corrupt snapshot file {name}: inconsistent run shapes"
        )
    records = []
    for row, key in enumerate(keys):
        if alive[row]:
            vector = np.ascontiguousarray(vectors[row], dtype=VECTOR_DTYPE)
            records.append(_Record(int(key), vector, attrs_list[row]))
        else:
            records.append(_Record(int(key), None))
    return SortedRun(records)


@dataclass
class LsmStats:
    flushes: int = 0
    compactions: int = 0
    records_written: int = 0
    records_compacted: int = 0


class LsmVectorStore:
    """An LSM tree over (id -> vector, attributes) entries.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    memtable_capacity:
        Number of entries buffered before an automatic flush.
    max_runs:
        Size-tiered trigger: when the number of runs exceeds this, all
        runs are merged into one (full compaction), dropping tombstones
        and shadowed versions.
    """

    def __init__(
        self,
        dim: int,
        memtable_capacity: int = 1024,
        max_runs: int = 4,
        directory=None,
        fs: Filesystem | None = None,
    ):
        if memtable_capacity <= 0:
            raise ValueError("memtable_capacity must be positive")
        self.dim = dim
        self.memtable_capacity = memtable_capacity
        self.max_runs = max_runs
        self._memtable: dict[int, _Record] = {}
        self._runs: list[SortedRun] = []  # newest first
        self.stats = LsmStats()
        # Durable mode: flushes/compactions commit through `fs` (the
        # torture rig swaps in a journaling filesystem via this field).
        self.fs = fs if fs is not None else OS_FS
        self._dir = pathlib.Path(directory) if directory is not None else None
        self._run_files: list[str] = []  # parallel to _runs (durable mode)
        self._run_checksums: dict[str, str] = {}
        self._next_run_seq = 1
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ durability

    @property
    def durable(self) -> bool:
        return self._dir is not None

    @classmethod
    def open(
        cls,
        directory,
        memtable_capacity: int = 1024,
        max_runs: int = 4,
        fs: Filesystem | None = None,
    ) -> "LsmVectorStore":
        """Recover a durable store from its committed manifest.

        The memtable is volatile, so the recovered state is exactly the
        state as of the last committed flush/compaction.  Corrupt or
        checksum-failing files raise :class:`StorageError` naming the
        offending file.
        """
        path = pathlib.Path(directory)
        manifest_path = path / LSM_MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(f"no LSM manifest at {path}")
        manifest = load_json_bytes(manifest_path.read_bytes(), LSM_MANIFEST_NAME)
        if not isinstance(manifest, dict) or manifest.get("version") != LSM_MANIFEST_VERSION:
            raise StorageError(
                f"corrupt snapshot file {LSM_MANIFEST_NAME}: unsupported "
                f"version {manifest.get('version') if isinstance(manifest, dict) else manifest!r}"
            )
        try:
            dim = int(manifest["dim"])
            next_seq = int(manifest["next_run_seq"])
            run_names = list(manifest["runs"])
            checksums = dict(manifest["checksums"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"corrupt snapshot file {LSM_MANIFEST_NAME}: {exc!r}"
            ) from exc
        store = cls(
            dim,
            memtable_capacity=memtable_capacity,
            max_runs=max_runs,
            directory=path,
            fs=fs,
        )
        store._next_run_seq = next_seq
        for name in run_names:  # newest first, as committed
            payload = read_snapshot_file(path, name, checksums)
            store._runs.append(_run_from_payload(payload, dim, name))
            store._run_files.append(name)
            store._run_checksums[name] = checksums[name]
        return store

    def _commit_manifest(self) -> None:
        """Atomically publish the current run set, then GC orphans."""
        assert self._dir is not None
        self._run_checksums = {
            name: self._run_checksums[name] for name in self._run_files
        }
        manifest = {
            "version": LSM_MANIFEST_VERSION,
            "dim": self.dim,
            "next_run_seq": self._next_run_seq,
            "runs": list(self._run_files),  # newest first
            "checksums": self._run_checksums,
        }
        atomic_write_json(self._dir / LSM_MANIFEST_NAME, manifest, fs=self.fs)
        keep = set(self._run_files) | {LSM_MANIFEST_NAME}
        for entry in sorted(self._dir.iterdir()):
            name = entry.name
            if name in keep or not entry.is_file():
                continue
            if name.endswith(TMP_SUFFIX) or name.startswith("run-"):
                self.fs.remove(entry)

    def _write_run_file(self, run: SortedRun) -> str:
        assert self._dir is not None
        name = f"run-{self._next_run_seq:08d}.npz"
        self._next_run_seq += 1
        payload = _run_payload(run, self.dim)
        atomic_write_bytes(self._dir / name, payload, fs=self.fs)
        self._run_checksums[name] = checksum(payload)
        return name

    # ------------------------------------------------------------------ writes

    def put(
        self, key: int, vector: np.ndarray, attributes: dict[str, Any] | None = None
    ) -> None:
        vec = as_vector(vector, self.dim).astype(VECTOR_DTYPE)
        self._memtable[int(key)] = _Record(int(key), vec, attributes)
        self.stats.records_written += 1
        if len(self._memtable) >= self.memtable_capacity:
            self.flush()

    def delete(self, key: int) -> None:
        self._memtable[int(key)] = _Record(int(key), None)
        self.stats.records_written += 1
        if len(self._memtable) >= self.memtable_capacity:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new sorted run.

        Durable mode commits the run before the manifest: the run file
        lands first (atomic in itself), then the manifest rewrite
        publishes it.  A crash between the two leaves an unreferenced
        run file that the next commit garbage-collects.
        """
        if not self._memtable:
            return
        run = SortedRun(list(self._memtable.values()))
        self._runs.insert(0, run)
        if self._dir is not None:
            self._run_files.insert(0, self._write_run_file(run))
            self._commit_manifest()
        self._memtable = {}
        self.stats.flushes += 1
        if len(self._runs) > self.max_runs:
            self.compact()

    def compact(self) -> None:
        """Merge all runs into one, dropping tombstones and old versions.

        Also rewrites a single run when it carries tombstones: with no
        older runs left to shadow, dropping them is always safe.  In
        durable mode the merged run is written first, the manifest
        rewrite is the commit point, and the superseded run files are
        garbage-collected after it.
        """
        if not self._runs:
            return
        if len(self._runs) == 1 and not any(
            r.is_tombstone for r in self._runs[0]
        ):
            return
        live: dict[int, _Record] = {}
        # Oldest first so newer versions overwrite older ones.
        for run in reversed(self._runs):
            for record in run:
                live[record.key] = record
                self.stats.records_compacted += 1
        survivors = [r for r in live.values() if not r.is_tombstone]
        merged = [SortedRun(survivors)] if survivors else []
        self._runs = merged
        if self._dir is not None:
            self._run_files = [self._write_run_file(run) for run in merged]
            self._commit_manifest()
        self.stats.compactions += 1

    # ------------------------------------------------------------------- reads

    def get(self, key: int) -> tuple[np.ndarray, dict[str, Any] | None] | None:
        """Point lookup: memtable first, then runs newest-to-oldest."""
        key = int(key)
        record = self._memtable.get(key)
        if record is None:
            for run in self._runs:
                lo, hi = run.key_range
                if lo <= key <= hi:
                    record = run.get(key)
                    if record is not None:
                        break
        if record is None or record.is_tombstone:
            return None
        return record.vector, record.attributes

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def live_items(self) -> Iterator[tuple[int, np.ndarray, dict[str, Any] | None]]:
        """Iterate the current (post-shadowing) live records, any order."""
        seen: set[int] = set()
        for record in self._memtable.values():
            seen.add(record.key)
            if not record.is_tombstone:
                yield record.key, record.vector, record.attributes
        for run in self._runs:
            for record in run:
                if record.key in seen:
                    continue
                seen.add(record.key)
                if not record.is_tombstone:
                    yield record.key, record.vector, record.attributes

    def live_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All live records as (ids, matrix) for brute-force search."""
        items = list(self.live_items())
        if not items:
            return np.empty(0, dtype=np.int64), np.empty((0, self.dim), VECTOR_DTYPE)
        ids = np.array([k for k, _, _ in items], dtype=np.int64)
        matrix = np.vstack([v for _, v, _ in items]).astype(VECTOR_DTYPE, copy=False)
        return ids, matrix

    def __len__(self) -> int:
        return sum(1 for _ in self.live_items())

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)
