"""Log-structured merge (LSM) storage for out-of-place updates (§2.3).

Vector indexes are data-dependent and expensive to update in place, so
several VDBMSs (Milvus [6, 79], Manu [45]) buffer writes in an LSM tree:
inserts and deletes land in a memtable, immutable sorted runs are flushed
when the memtable fills, and size-tiered compaction merges runs in the
background.  Searches consult the memtable plus every run (newest wins).

Keys are integer item ids; values are float32 vectors plus an optional
attribute dict.  Deletes are tombstones until compaction drops them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..core.errors import StorageError
from ..core.types import VECTOR_DTYPE, as_vector


@dataclass(frozen=True, slots=True)
class _Record:
    """One versioned entry.  ``vector is None`` marks a tombstone."""

    key: int
    vector: np.ndarray | None
    attributes: dict[str, Any] | None = None

    @property
    def is_tombstone(self) -> bool:
        return self.vector is None


class SortedRun:
    """An immutable run of records sorted by key, binary-searchable."""

    def __init__(self, records: list[_Record]):
        records = sorted(records, key=lambda r: r.key)
        keys = [r.key for r in records]
        if len(set(keys)) != len(keys):
            raise StorageError("duplicate keys within one run")
        self._records = records
        self._keys = np.asarray(keys, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: int) -> _Record | None:
        i = int(np.searchsorted(self._keys, key))
        if i < len(self._records) and self._records[i].key == key:
            return self._records[i]
        return None

    def __iter__(self) -> Iterator[_Record]:
        return iter(self._records)

    @property
    def key_range(self) -> tuple[int, int]:
        if not self._records:
            return (0, -1)
        return (int(self._keys[0]), int(self._keys[-1]))


@dataclass
class LsmStats:
    flushes: int = 0
    compactions: int = 0
    records_written: int = 0
    records_compacted: int = 0


class LsmVectorStore:
    """An LSM tree over (id -> vector, attributes) entries.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    memtable_capacity:
        Number of entries buffered before an automatic flush.
    max_runs:
        Size-tiered trigger: when the number of runs exceeds this, all
        runs are merged into one (full compaction), dropping tombstones
        and shadowed versions.
    """

    def __init__(self, dim: int, memtable_capacity: int = 1024, max_runs: int = 4):
        if memtable_capacity <= 0:
            raise ValueError("memtable_capacity must be positive")
        self.dim = dim
        self.memtable_capacity = memtable_capacity
        self.max_runs = max_runs
        self._memtable: dict[int, _Record] = {}
        self._runs: list[SortedRun] = []  # newest first
        self.stats = LsmStats()

    # ------------------------------------------------------------------ writes

    def put(
        self, key: int, vector: np.ndarray, attributes: dict[str, Any] | None = None
    ) -> None:
        vec = as_vector(vector, self.dim).astype(VECTOR_DTYPE)
        self._memtable[int(key)] = _Record(int(key), vec, attributes)
        self.stats.records_written += 1
        if len(self._memtable) >= self.memtable_capacity:
            self.flush()

    def delete(self, key: int) -> None:
        self._memtable[int(key)] = _Record(int(key), None)
        self.stats.records_written += 1
        if len(self._memtable) >= self.memtable_capacity:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new sorted run."""
        if not self._memtable:
            return
        self._runs.insert(0, SortedRun(list(self._memtable.values())))
        self._memtable = {}
        self.stats.flushes += 1
        if len(self._runs) > self.max_runs:
            self.compact()

    def compact(self) -> None:
        """Merge all runs into one, dropping tombstones and old versions.

        Also rewrites a single run when it carries tombstones: with no
        older runs left to shadow, dropping them is always safe.
        """
        if not self._runs:
            return
        if len(self._runs) == 1 and not any(
            r.is_tombstone for r in self._runs[0]
        ):
            return
        live: dict[int, _Record] = {}
        # Oldest first so newer versions overwrite older ones.
        for run in reversed(self._runs):
            for record in run:
                live[record.key] = record
                self.stats.records_compacted += 1
        survivors = [r for r in live.values() if not r.is_tombstone]
        self._runs = [SortedRun(survivors)] if survivors else []
        self.stats.compactions += 1

    # ------------------------------------------------------------------- reads

    def get(self, key: int) -> tuple[np.ndarray, dict[str, Any] | None] | None:
        """Point lookup: memtable first, then runs newest-to-oldest."""
        key = int(key)
        record = self._memtable.get(key)
        if record is None:
            for run in self._runs:
                lo, hi = run.key_range
                if lo <= key <= hi:
                    record = run.get(key)
                    if record is not None:
                        break
        if record is None or record.is_tombstone:
            return None
        return record.vector, record.attributes

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def live_items(self) -> Iterator[tuple[int, np.ndarray, dict[str, Any] | None]]:
        """Iterate the current (post-shadowing) live records, any order."""
        seen: set[int] = set()
        for record in self._memtable.values():
            seen.add(record.key)
            if not record.is_tombstone:
                yield record.key, record.vector, record.attributes
        for run in self._runs:
            for record in run:
                if record.key in seen:
                    continue
                seen.add(record.key)
                if not record.is_tombstone:
                    yield record.key, record.vector, record.attributes

    def live_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All live records as (ids, matrix) for brute-force search."""
        items = list(self.live_items())
        if not items:
            return np.empty(0, dtype=np.int64), np.empty((0, self.dim), VECTOR_DTYPE)
        ids = np.array([k for k, _, _ in items], dtype=np.int64)
        matrix = np.vstack([v for _, v, _ in items]).astype(VECTOR_DTYPE)
        return ids, matrix

    def __len__(self) -> int:
        return sum(1 for _ in self.live_items())

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)
