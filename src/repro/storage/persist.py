"""Crash-consistent snapshot persistence for collections and databases.

Saves a collection's vectors + attributes (npz + JSON sidecar) and a
database's configuration (score, index definitions with their
constructor arguments).  Loading restores the data exactly and rebuilds
the indexes deterministically — every index here takes an explicit
``seed``, so a reloaded database answers queries identically.

Layout of a snapshot directory (generation ``g``)::

    snapshot/
      collection-0000000g.npz   # vectors, alive mask (generation-named)
      attributes-0000000g.json  # columnar attribute values
      manifest.json             # commit point: generation, file map,
                                # checksums, db config (dim/score/indexes)

Crash-consistency protocol (torture-rig tentpole; see docs/torture.md):

1. Data files are written under *fresh generation-numbered names* via
   the blessed atomic writer (temp file + fsync + ``os.replace``), so
   they never clobber the files the current manifest points to.
2. ``manifest.json`` is replaced *last* — the atomic commit point.  Any
   crash before that rename leaves the old manifest pointing at the old
   (untouched) generation; any crash after it leaves the new snapshot
   fully readable.  A reopened snapshot is therefore always exactly the
   old state or the new state, never a torn hybrid.
3. After the commit, superseded generations and temp orphans are
   garbage-collected; a crash mid-GC leaves harmless unreferenced files.
4. The manifest records a CRC-32 per data file; loads verify it, so bit
   rot or a torn write surfaces as a :class:`StorageError` naming the
   offending file instead of a downstream ``JSONDecodeError``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from ..core.errors import StorageError
from .atomic import (
    OS_FS,
    TMP_SUFFIX,
    Filesystem,
    atomic_write_bytes,
    atomic_write_json,
    checksum,
    load_json_bytes,
    load_npz_bytes,
    npz_bytes,
    read_snapshot_file,
)

MANIFEST_VERSION = 2
MANIFEST_NAME = "manifest.json"

#: Generation-named snapshot members (prefix, suffix).
_DATA_PREFIXES = ("collection-", "attributes-")


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


# ------------------------------------------------------------------ manifest


def _read_manifest(path: pathlib.Path) -> dict:
    """Read + validate the snapshot manifest (errors name the file)."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no snapshot manifest at {path}")
    manifest = load_json_bytes(manifest_path.read_bytes(), MANIFEST_NAME)
    if not isinstance(manifest, dict):
        raise StorageError(
            f"corrupt snapshot file {MANIFEST_NAME}: expected an object, "
            f"got {type(manifest).__name__}"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"unsupported snapshot version {manifest.get('version')!r} "
            f"in {MANIFEST_NAME}"
        )
    return manifest


def _manifest_field(manifest: dict, *keys: str) -> Any:
    """Fetch a nested manifest field; absence names manifest.json."""
    value: Any = manifest
    for key in keys:
        if not isinstance(value, dict) or key not in value:
            raise StorageError(
                f"corrupt snapshot file {MANIFEST_NAME}: missing field "
                f"{'.'.join(keys)!r}"
            )
        value = value[key]
    return value


def _current_generation(path: pathlib.Path) -> int:
    """Best-effort generation of the committed snapshot (0 if none).

    A corrupt existing manifest must not block overwriting the snapshot,
    so decode failures fall back to a fresh generation counter derived
    from the on-disk file names (never reusing a name that exists).
    """
    generation = 0
    try:
        value = _read_manifest(path).get("generation")
        if isinstance(value, int) and value >= 0:
            generation = value
    except StorageError:
        pass
    for entry in path.iterdir() if path.exists() else ():
        name = entry.name
        for prefix in _DATA_PREFIXES:
            if name.startswith(prefix):
                stem = name[len(prefix):].split(".", 1)[0]
                if stem.isdigit():
                    generation = max(generation, int(stem))
    return generation


# ------------------------------------------------------------------- writing


def _collection_payloads(collection) -> tuple[bytes, bytes]:
    """Serialize a collection to (npz bytes, attributes-JSON bytes)."""
    vectors_payload = npz_bytes(
        vectors=collection.vectors, alive=collection.alive
    )
    attributes = {
        name: [_jsonable(v) for v in collection._columns_raw[name]]
        for name in collection.attribute_names
    }
    attrs_payload = json.dumps({
        "schema": list(collection.attribute_names),
        "columns": attributes,
    }).encode("utf-8")
    return vectors_payload, attrs_payload


def _collect_garbage(
    path: pathlib.Path, keep: set[str], fs: Filesystem | None
) -> None:
    """Drop superseded generations and temp orphans (post-commit)."""
    fs = fs if fs is not None else OS_FS
    for entry in sorted(path.iterdir()):
        name = entry.name
        if name in keep or not entry.is_file():
            continue
        if name.endswith(TMP_SUFFIX) or name.startswith(_DATA_PREFIXES):
            fs.remove(entry)


def _write_snapshot(
    collection,
    directory,
    database: dict | None,
    fs: Filesystem | None,
) -> pathlib.Path:
    """Commit a snapshot: data files first, manifest last, then GC."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    generation = _current_generation(path) + 1
    collection_name = f"collection-{generation:08d}.npz"
    attributes_name = f"attributes-{generation:08d}.json"
    vectors_payload, attrs_payload = _collection_payloads(collection)
    atomic_write_bytes(path / collection_name, vectors_payload, fs=fs)
    atomic_write_bytes(path / attributes_name, attrs_payload, fs=fs)
    manifest = {
        "version": MANIFEST_VERSION,
        "generation": generation,
        "files": {
            "collection": collection_name,
            "attributes": attributes_name,
        },
        "checksums": {
            collection_name: checksum(vectors_payload),
            attributes_name: checksum(attrs_payload),
        },
    }
    if database is not None:
        manifest["database"] = database
    atomic_write_json(path / MANIFEST_NAME, manifest, fs=fs)  # commit point
    _collect_garbage(
        path, keep={collection_name, attributes_name, MANIFEST_NAME}, fs=fs
    )
    return path


def save_collection(
    collection, directory, fs: Filesystem | None = None
) -> pathlib.Path:
    """Write a collection snapshot; returns the directory path."""
    return _write_snapshot(collection, directory, database=None, fs=fs)


def save_database(db, directory, fs: Filesystem | None = None) -> pathlib.Path:
    """Snapshot a database: collection + score + index definitions.

    Index constructor kwargs are recorded from the instances' public
    attributes; anything non-JSON (e.g. a shared SimulatedDisk) must be
    re-supplied at load time, and such indexes are recorded by type only.
    Build-time side inputs that are not constructor kwargs (e.g. the
    labels of a FilteredHnswIndex) are not captured — re-apply them
    after loading.
    """
    indexes = {}
    for name, index in db.indexes.items():
        kwargs = {}
        for attr in ("m", "ef_construction", "ef_search", "nlist", "nprobe",
                     "num_tables", "hashes_per_table", "hash_family",
                     "bucket_width", "num_trees", "leaf_size", "search_k",
                     "max_degree", "beam_width", "alpha", "graph_k",
                     "connections", "num_postings", "closure_epsilon",
                     "max_replicas", "nbits", "rerank", "max_leaves",
                     "num_trials", "init_knng_k", "knng_k", "candidate_pool",
                     "label_k", "jitter", "top_axes", "num_axes", "rotate",
                     "seed"):
            if hasattr(index, attr):
                value = getattr(index, attr)
                if isinstance(value, (int, float, str, bool)) or value is None:
                    kwargs[attr] = value
        indexes[name] = {"type": index.name, "kwargs": kwargs}
    database = {
        "dim": db.dim,
        "score": db.score.name,
        "indexes": indexes,
    }
    return _write_snapshot(db.collection, directory, database=database, fs=fs)


# ------------------------------------------------------------------- loading


def _restore_collection(path: pathlib.Path, manifest: dict):
    """Rebuild a VectorCollection from a committed, verified snapshot."""
    # Imported here: storage must not import core at module load time
    # (core.database itself imports the storage package).
    from ..core.collection import VectorCollection

    checksums = manifest.get("checksums")
    checksums = checksums if isinstance(checksums, dict) else {}
    collection_name = _manifest_field(manifest, "files", "collection")
    attributes_name = _manifest_field(manifest, "files", "attributes")

    arrays = load_npz_bytes(
        read_snapshot_file(path, collection_name, checksums), collection_name
    )
    if "vectors" not in arrays or "alive" not in arrays:
        raise StorageError(
            f"corrupt snapshot file {collection_name}: missing "
            "'vectors'/'alive' arrays"
        )
    vectors = arrays["vectors"]
    alive = arrays["alive"]

    meta = load_json_bytes(
        read_snapshot_file(path, attributes_name, checksums), attributes_name
    )
    if not isinstance(meta, dict) or "schema" not in meta or "columns" not in meta:
        raise StorageError(
            f"corrupt snapshot file {attributes_name}: missing "
            "'schema'/'columns' fields"
        )
    schema = tuple(meta["schema"])
    columns = meta["columns"]

    collection = VectorCollection(vectors.shape[1] if vectors.size else 1)
    if vectors.shape[0]:
        collection._vectors = np.ascontiguousarray(vectors)
        collection._alive = np.ones(vectors.shape[0], dtype=bool)
        collection._schema = schema
        try:
            collection._columns_raw = {
                name: list(columns[name]) for name in schema
            }
        except (KeyError, TypeError) as exc:
            raise StorageError(
                f"corrupt snapshot file {attributes_name}: column data does "
                f"not match schema ({exc})"
            ) from exc
        # Restore tombstones after rows exist.
        collection._alive = alive.astype(bool)
        collection._columns_cache = None
    elif schema:
        collection._schema = schema
        collection._columns_raw = {name: [] for name in schema}
    return collection


def load_collection(directory):
    """Restore a collection snapshot (ids, tombstones, attributes exact)."""
    path = pathlib.Path(directory)
    if not (path / MANIFEST_NAME).exists():
        raise StorageError(f"no collection snapshot at {path}")
    manifest = _read_manifest(path)
    return _restore_collection(path, manifest)


def load_database(directory, selector: str = "cost"):
    """Restore a database snapshot; indexes are rebuilt deterministically."""
    from ..core.database import VectorDatabase

    path = pathlib.Path(directory)
    if not (path / MANIFEST_NAME).exists():
        raise StorageError(f"no database manifest at {path}")
    manifest = _read_manifest(path)
    if "database" not in manifest:
        raise StorageError(
            f"snapshot at {path} is a collection snapshot, not a database "
            "snapshot (no 'database' section in manifest.json)"
        )
    collection = _restore_collection(path, manifest)
    dim = _manifest_field(manifest, "database", "dim")
    score = _manifest_field(manifest, "database", "score")
    index_specs = _manifest_field(manifest, "database", "indexes")
    db = VectorDatabase(dim=dim, score=score, selector=selector)
    db.collection = collection
    # Rewire the executor onto the restored collection.
    db._executor.collection = collection
    if not isinstance(index_specs, dict):
        raise StorageError(
            f"corrupt snapshot file {MANIFEST_NAME}: 'database.indexes' "
            "must be an object"
        )
    for name, spec in index_specs.items():
        try:
            index_type = spec["type"]
            kwargs = spec["kwargs"]
        except (KeyError, TypeError) as exc:
            raise StorageError(
                f"corrupt snapshot file {MANIFEST_NAME}: malformed index "
                f"spec for {name!r} ({exc})"
            ) from exc
        db.create_index(name, index_type, **{
            k: v for k, v in kwargs.items() if k != "score"
        })
    return db
