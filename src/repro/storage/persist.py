"""Snapshot persistence for collections and databases.

Saves a collection's vectors + attributes (npz + JSON sidecar) and a
database's configuration (score, index definitions with their
constructor arguments).  Loading restores the data exactly and rebuilds
the indexes deterministically — every index here takes an explicit
``seed``, so a reloaded database answers queries identically.

Layout of a snapshot directory::

    snapshot/
      collection.npz       # vectors, alive mask
      attributes.json      # columnar attribute values
      manifest.json        # dim, score, index definitions, versions
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from ..core.errors import StorageError

MANIFEST_VERSION = 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


def save_collection(collection, directory) -> pathlib.Path:
    """Write a collection snapshot; returns the directory path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path / "collection.npz",
        vectors=collection.vectors,
        alive=collection.alive,
    )
    attributes = {
        name: [_jsonable(v) for v in collection._columns_raw[name]]
        for name in collection.attribute_names
    }
    (path / "attributes.json").write_text(json.dumps({
        "schema": list(collection.attribute_names),
        "columns": attributes,
    }))
    return path


def load_collection(directory):
    """Restore a collection snapshot (ids, tombstones, attributes exact)."""
    # Imported here: storage must not import core at module load time
    # (core.database itself imports the storage package).
    from ..core.collection import VectorCollection

    path = pathlib.Path(directory)
    npz_path = path / "collection.npz"
    if not npz_path.exists():
        raise StorageError(f"no collection snapshot at {path}")
    data = np.load(npz_path)
    vectors = data["vectors"]
    alive = data["alive"]
    meta = json.loads((path / "attributes.json").read_text())
    schema = tuple(meta["schema"])
    columns = meta["columns"]

    collection = VectorCollection(vectors.shape[1] if vectors.size else 1)
    if vectors.shape[0]:
        collection._vectors = np.ascontiguousarray(vectors)
        collection._alive = np.ones(vectors.shape[0], dtype=bool)
        collection._schema = schema
        collection._columns_raw = {name: list(columns[name]) for name in schema}
        # Restore tombstones after rows exist.
        collection._alive = alive.astype(bool)
        collection._columns_cache = None
    elif schema:
        collection._schema = schema
        collection._columns_raw = {name: [] for name in schema}
    return collection


def save_database(db, directory) -> pathlib.Path:
    """Snapshot a database: collection + score + index definitions.

    Index constructor kwargs are recorded from the instances' public
    attributes; anything non-JSON (e.g. a shared SimulatedDisk) must be
    re-supplied at load time, and such indexes are recorded by type only.
    Build-time side inputs that are not constructor kwargs (e.g. the
    labels of a FilteredHnswIndex) are not captured — re-apply them
    after loading.
    """
    path = save_collection(db.collection, directory)
    indexes = {}
    for name, index in db.indexes.items():
        kwargs = {}
        for attr in ("m", "ef_construction", "ef_search", "nlist", "nprobe",
                     "num_tables", "hashes_per_table", "hash_family",
                     "bucket_width", "num_trees", "leaf_size", "search_k",
                     "max_degree", "beam_width", "alpha", "graph_k",
                     "connections", "num_postings", "closure_epsilon",
                     "max_replicas", "nbits", "rerank", "max_leaves",
                     "num_trials", "init_knng_k", "knng_k", "candidate_pool",
                     "label_k", "jitter", "top_axes", "num_axes", "rotate",
                     "seed"):
            if hasattr(index, attr):
                value = getattr(index, attr)
                if isinstance(value, (int, float, str, bool)) or value is None:
                    kwargs[attr] = value
        indexes[name] = {"type": index.name, "kwargs": kwargs}
    manifest = {
        "version": MANIFEST_VERSION,
        "dim": db.dim,
        "score": db.score.name,
        "indexes": indexes,
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return path


def load_database(directory, selector: str = "cost"):
    """Restore a database snapshot; indexes are rebuilt deterministically."""
    from ..core.database import VectorDatabase

    path = pathlib.Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise StorageError(f"no database manifest at {path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"unsupported snapshot version {manifest.get('version')!r}"
        )
    collection = load_collection(path)
    db = VectorDatabase(dim=manifest["dim"], score=manifest["score"],
                        selector=selector)
    db.collection = collection
    # Rewire the executor onto the restored collection.
    db._executor.collection = collection
    for name, spec in manifest["indexes"].items():
        db.create_index(name, spec["type"], **{
            k: v for k, v in spec["kwargs"].items() if k != "score"
        })
    return db
