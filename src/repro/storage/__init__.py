"""Storage substrate: simulated disk, paged vector store, LSM tree."""

from .atomic import OS_FS, Filesystem, atomic_write_bytes, checksum, npz_bytes
from .disk import DiskStats, SimulatedDisk
from .lsm import LsmStats, LsmVectorStore, SortedRun
from .pager import BufferPool, PagedVectorStore
from .persist import (
    load_collection,
    load_database,
    save_collection,
    save_database,
)

__all__ = [
    "BufferPool",
    "DiskStats",
    "Filesystem",
    "OS_FS",
    "atomic_write_bytes",
    "checksum",
    "npz_bytes",
    "LsmStats",
    "LsmVectorStore",
    "PagedVectorStore",
    "SimulatedDisk",
    "SortedRun",
    "load_collection",
    "load_database",
    "save_collection",
    "save_database",
]
