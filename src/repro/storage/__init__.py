"""Storage substrate: simulated disk, paged vector store, LSM tree."""

from .disk import DiskStats, SimulatedDisk
from .lsm import LsmStats, LsmVectorStore, SortedRun
from .pager import BufferPool, PagedVectorStore
from .persist import (
    load_collection,
    load_database,
    save_collection,
    save_database,
)

__all__ = [
    "BufferPool",
    "DiskStats",
    "LsmStats",
    "LsmVectorStore",
    "PagedVectorStore",
    "SimulatedDisk",
    "SortedRun",
    "load_collection",
    "load_database",
    "save_collection",
    "save_database",
]
