"""The blessed atomic-writer: crash-safe file commits for the storage layer.

The VDBMS bug study (arXiv:2506.02617) ranks recovery anomalies — torn
snapshots, half-applied flushes — among the top real-world VDBMS bug
classes, and they all share one root cause: persistence code that calls
``open(...).write`` / ``Path.write_text`` / ``np.savez`` directly, so a
crash between two writes leaves a state no reader was ever meant to see.

This module is the *only* place in ``repro.storage`` allowed to perform
raw file I/O (enforced by vdblint rule VDB601).  Everything else builds
durability from three journalable primitives:

* :meth:`Filesystem.write_file` — durable write of a whole payload
  (write + flush + fsync) to a *temporary* path;
* :meth:`Filesystem.replace` — atomic rename onto the final path
  (``os.replace``), the only operation that publishes data;
* :meth:`Filesystem.remove` — garbage collection of superseded files.

:func:`atomic_write_bytes` composes them into the standard temp-file +
rename commit.  Because callers receive the primitives through a
:class:`Filesystem` instance, the torture rig
(:mod:`repro.torture.fsshim`) can substitute a journaling implementation
that records every primitive and replays any operation prefix — turning
"what if we crash between op k and k+1?" into an exhaustive, seeded
loop instead of a hope.

Checksums (:func:`checksum`) are CRC-32 over the exact payload bytes;
manifests record them so a reader can distinguish "old snapshot" from
"bit-rotted snapshot" and fail with a :class:`StorageError` naming the
offending file.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import zlib
from typing import Any

import numpy as np

from ..core.errors import StorageError

#: Suffix of in-flight temp files; readers ignore them, GC deletes them.
TMP_SUFFIX = ".tmp"

__all__ = [
    "OS_FS",
    "TMP_SUFFIX",
    "Filesystem",
    "atomic_write_bytes",
    "atomic_write_json",
    "checksum",
    "load_json_bytes",
    "load_npz_bytes",
    "npz_bytes",
    "read_snapshot_file",
]


class Filesystem:
    """Primitive durable-write operations (pass-through to the OS).

    The storage layer never touches the OS directly; it asks an instance
    of this class.  Substituting a recording implementation (the torture
    rig's ``TortureFS``) journals every primitive, which is what makes
    crash points enumerable.
    """

    def write_file(self, path: os.PathLike | str, data: bytes) -> None:
        """Durably write ``data`` to ``path`` (create or truncate)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def replace(self, src: os.PathLike | str, dst: os.PathLike | str) -> None:
        """Atomically rename ``src`` onto ``dst`` (the commit primitive)."""
        os.replace(src, dst)

    def remove(self, path: os.PathLike | str) -> None:
        """Delete ``path`` if it exists (idempotent garbage collection)."""
        try:
            os.remove(path)
        except FileNotFoundError:
            pass


#: The default pass-through filesystem shared by all storage call sites.
OS_FS = Filesystem()


def atomic_write_bytes(
    path: os.PathLike | str, data: bytes, fs: Filesystem | None = None
) -> None:
    """Write ``data`` to ``path`` via the temp-file + rename commit.

    After this returns, ``path`` holds exactly ``data``; if the process
    dies at any point before the rename, ``path`` is untouched (at worst
    a ``*.tmp`` orphan exists, which readers ignore).
    """
    fs = fs if fs is not None else OS_FS
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    fs.write_file(tmp, bytes(data))
    fs.replace(tmp, path)


def atomic_write_json(
    path: os.PathLike | str, obj: Any, fs: Filesystem | None = None
) -> bytes:
    """Atomically write ``obj`` as indented JSON; returns the payload."""
    data = json.dumps(obj, indent=2, sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, data, fs=fs)
    return data


def npz_bytes(**arrays: np.ndarray) -> bytes:
    """Serialize arrays to compressed-``.npz`` bytes (for atomic commit)."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def checksum(data: bytes) -> str:
    """CRC-32 of a payload, as a stable ``crc32:xxxxxxxx`` string."""
    return f"crc32:{zlib.crc32(data) & 0xFFFFFFFF:08x}"


# --------------------------------------------------------------------- reads
#
# Readers convert every decode failure into a StorageError that names
# the offending file — a truncated attributes.json must never surface
# as a raw JSONDecodeError (satellite of the torture-rig PR).


def read_snapshot_file(
    directory: os.PathLike | str,
    name: str,
    checksums: dict[str, str] | None = None,
) -> bytes:
    """Read one snapshot member, verifying its recorded checksum."""
    path = pathlib.Path(directory) / name
    if not path.exists():
        raise StorageError(f"snapshot file {name} missing from {directory}")
    data = path.read_bytes()
    expected = (checksums or {}).get(name)
    if expected is not None and checksum(data) != expected:
        raise StorageError(
            f"checksum mismatch in snapshot file {name}: manifest says "
            f"{expected}, file is {checksum(data)} (torn or bit-rotted write)"
        )
    return data


def load_json_bytes(data: bytes, name: str) -> Any:
    """Decode JSON payload bytes; corrupt data names the file."""
    try:
        return json.loads(data.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"corrupt snapshot file {name}: {exc}") from exc


def load_npz_bytes(data: bytes, name: str) -> dict[str, np.ndarray]:
    """Decode ``.npz`` payload bytes; corrupt data names the file."""
    import zipfile

    try:
        with np.load(io.BytesIO(data)) as npz:
            return {key: npz[key] for key in npz.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) as exc:
        raise StorageError(f"corrupt snapshot file {name}: {exc}") from exc
