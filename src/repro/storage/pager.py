"""Paged vector storage over a :class:`SimulatedDisk` (§2.2).

The tutorial highlights that "each vector may be large, possibly spanning
multiple disk pages, and the cost of retrieval is more expensive compared
to simple attributes".  :class:`PagedVectorStore` lays float32 vectors out
on fixed-size pages and retrieves them page-at-a-time through an optional
LRU buffer pool, so page-read counts reflect the layout (vectors per
page, locality of access) exactly as in a real system.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..core.errors import PageReadError, StorageError
from ..core.types import VECTOR_DTYPE, as_matrix
from ..observability.instrument import DISABLED, Observability
from ..reliability.retry import RetryPolicy
from .disk import SimulatedDisk


class BufferPool:
    """A tiny LRU page cache.  Hits avoid disk reads; capacity 0 disables."""

    def __init__(self, capacity: int = 0):
        self.capacity = capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, page_id: int) -> bytes | None:
        data = self._pages.get(page_id)
        if data is None:
            self.misses += 1
            return None
        self._pages.move_to_end(page_id)
        self.hits += 1
        return data

    def put(self, page_id: int, data: bytes) -> None:
        if self.capacity <= 0:
            return
        self._pages[page_id] = data
        self._pages.move_to_end(page_id)
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)

    def invalidate(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        self._pages.clear()


class PagedVectorStore:
    """Fixed-dimension vectors stored on disk pages, addressed by slot id.

    Vectors are packed ``vectors_per_page`` to a page.  Each stored vector
    gets a dense slot id (its insertion order); the mapping slot -> (page,
    offset) is arithmetic, so lookups cost exactly one page read (or a
    buffer-pool hit).
    """

    def __init__(
        self,
        dim: int,
        disk: SimulatedDisk | None = None,
        buffer_pool_pages: int = 0,
        retry_policy: RetryPolicy | None = None,
        observability: Observability | None = None,
    ):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.disk = disk or SimulatedDisk()
        self.pool = BufferPool(buffer_pool_pages)
        # Transient page-read errors (injected I/O faults) are retried
        # under this policy; ``read_retries`` counts the extra attempts.
        self.retry_policy = retry_policy or RetryPolicy()
        self.read_retries = 0
        self._obs = observability if observability is not None else DISABLED
        self._vector_bytes = dim * np.dtype(VECTOR_DTYPE).itemsize
        if self._vector_bytes > self.disk.page_size:
            raise StorageError(
                f"a {dim}-d float32 vector ({self._vector_bytes} B) does not fit"
                f" in one {self.disk.page_size} B page"
            )
        self.vectors_per_page = self.disk.page_size // self._vector_bytes
        self._page_ids: list[int] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def num_pages(self) -> int:
        return len(self._page_ids)

    def _locate(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self._count:
            raise StorageError(f"slot {slot} out of range (count={self._count})")
        return divmod(slot, self.vectors_per_page)

    def append(self, vectors: np.ndarray) -> list[int]:
        """Append vectors; returns the slot ids assigned."""
        matrix = as_matrix(vectors, self.dim)
        slots = list(range(self._count, self._count + matrix.shape[0]))
        for row in matrix:
            page_index, offset = divmod(self._count, self.vectors_per_page)
            if page_index == len(self._page_ids):
                self._page_ids.append(self.disk.allocate())
                page_data = b""
            else:
                page_data = self._read_page_raw(page_index)
            assert offset * self._vector_bytes == len(page_data)
            page_data += row.tobytes()
            page_id = self._page_ids[page_index]
            self.disk.write_page(page_id, page_data)
            self.pool.invalidate(page_id)
            self._count += 1
        return slots

    def _read_page_raw(self, page_index: int) -> bytes:
        page_id = self._page_ids[page_index]
        cached = self.pool.get(page_id)
        if cached is not None:
            if self._obs.enabled:
                self._obs.metrics.counter(
                    "vdbms_buffer_pool_requests_total", "Buffer-pool lookups."
                ).inc(outcome="hit")
                self._record_hit_ratio()
            return cached
        attempt = 0
        retries = 0
        while True:
            try:
                data = self.disk.read_page(page_id)
            except PageReadError:
                attempt += 1
                if attempt >= self.retry_policy.max_attempts:
                    raise
                self.read_retries += 1
                retries += 1
                continue
            break
        self.pool.put(page_id, data)
        if self._obs.enabled:
            m = self._obs.metrics
            m.counter(
                "vdbms_buffer_pool_requests_total", "Buffer-pool lookups."
            ).inc(outcome="miss")
            m.counter(
                "vdbms_storage_page_reads_total", "Pages read from disk."
            ).inc()
            if retries:
                m.counter(
                    "vdbms_storage_page_read_retries_total",
                    "Page reads retried after transient I/O faults.",
                ).inc(retries)
            self._record_hit_ratio()
        return data

    def _record_hit_ratio(self) -> None:
        """Keep the buffer-pool hit ratio queryable as a gauge (the
        counters alone force scrape-side math)."""
        counter = self._obs.metrics.counter(
            "vdbms_buffer_pool_requests_total", "Buffer-pool lookups."
        )
        hits = counter.value(outcome="hit")
        total = hits + counter.value(outcome="miss")
        if total:
            self._obs.metrics.gauge(
                "vdbms_buffer_pool_hit_ratio",
                "Fraction of buffer-pool lookups served from memory.",
            ).set(hits / total)

    def get(self, slot: int) -> np.ndarray:
        """Fetch one vector (one page read unless cached)."""
        page_index, offset = self._locate(slot)
        data = self._read_page_raw(page_index)
        start = offset * self._vector_bytes
        return np.frombuffer(
            data[start : start + self._vector_bytes], dtype=VECTOR_DTYPE
        ).copy()

    def get_many(self, slots: list[int]) -> np.ndarray:
        """Fetch several vectors, coalescing reads of the same page."""
        out = np.empty((len(slots), self.dim), dtype=VECTOR_DTYPE)
        by_page: dict[int, list[tuple[int, int]]] = {}
        for pos, slot in enumerate(slots):
            page_index, offset = self._locate(slot)
            by_page.setdefault(page_index, []).append((pos, offset))
        if self._obs.enabled and slots:
            # Pages touched per batched fetch: the locality signal that
            # predicts I/O cost (1.0 page/batch = perfect coalescing).
            self._obs.sketch("page_batch_span").observe(len(by_page))
        for page_index, entries in by_page.items():
            data = self._read_page_raw(page_index)
            arr = np.frombuffer(data, dtype=VECTOR_DTYPE).reshape(-1, self.dim)
            for pos, offset in entries:
                out[pos] = arr[offset]
        return out

    def scan(self) -> np.ndarray:
        """Read the whole collection back (num_pages page reads)."""
        if self._count == 0:
            return np.empty((0, self.dim), dtype=VECTOR_DTYPE)
        chunks = []
        for page_index in range(len(self._page_ids)):
            data = self._read_page_raw(page_index)
            chunks.append(np.frombuffer(data, dtype=VECTOR_DTYPE).reshape(-1, self.dim))
        return np.vstack(chunks)
