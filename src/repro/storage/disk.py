"""Simulated block device with I/O accounting (§2.2 disk-resident indexes).

DiskANN [74] and SPANN [32] are evaluated by the number of disk reads a
query incurs; reproducing them requires a storage layer where reads are
*observable*.  :class:`SimulatedDisk` stores pages in memory but counts
every read/write and can inject per-read latency, so benchmarks measure
exactly what the papers measure (I/Os per query) while remaining
deterministic and laptop-fast.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import PageReadError, StorageError


@dataclass
class DiskStats:
    """Counters for one device (resettable between benchmark phases)."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_errors: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_errors = 0


@dataclass
class SimulatedDisk:
    """An addressable page store with explicit I/O counters.

    Parameters
    ----------
    page_size:
        Bytes per page; used only for accounting (pages hold arbitrary
        Python bytes, but writes longer than ``page_size`` are rejected to
        keep layouts honest).
    read_latency_seconds:
        Optional synthetic delay per page read, to make wall-clock numbers
        reflect an I/O-bound device.  Defaults to 0 for fast tests.
    injector:
        Optional :class:`~repro.reliability.faults.FaultInjector`; its
        ``page_error`` faults make :meth:`read_page` raise
        :class:`~repro.core.errors.PageReadError` (counted in
        ``stats.read_errors``) so crash-consistency and retry paths can
        be exercised deterministically.
    """

    page_size: int = 4096
    read_latency_seconds: float = 0.0
    stats: DiskStats = field(default_factory=DiskStats)
    injector: Any = None

    def __post_init__(self) -> None:
        self._pages: dict[int, bytes] = {}
        self._next_page_id = 0

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        """Reserve a fresh page id (contents start empty)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = b""
        return page_id

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise StorageError(f"write to unallocated page {page_id}")
        if len(data) > self.page_size:
            raise StorageError(
                f"page overflow: {len(data)} bytes > page size {self.page_size}"
            )
        self._pages[page_id] = bytes(data)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def read_page(self, page_id: int) -> bytes:
        try:
            data = self._pages[page_id]
        except KeyError:
            raise StorageError(f"read of unallocated page {page_id}") from None
        if self.injector is not None and self.injector.on_page_read(page_id):
            self.stats.read_errors += 1
            raise PageReadError(page_id)
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        if self.read_latency_seconds > 0:
            time.sleep(self.read_latency_seconds)
        return data

    def free(self, page_id: int) -> None:
        if self._pages.pop(page_id, None) is None:
            raise StorageError(f"free of unallocated page {page_id}")
