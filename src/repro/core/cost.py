"""Linear cost model for hybrid plan selection (§2.3 "Cost Based").

AnalyticDB-V [84] and Milvus [6, 79] "devise costs for several vector
operators in order to use a linear cost model that aggregates the I/O
and computation cost of each plan operator".  We do the same: each plan
is decomposed into operator work estimates (distance computations,
predicate evaluations, page reads), each multiplied by a unit weight.

Unit weights can be set analytically or *calibrated* by timing the
primitive operations on the actual data (:meth:`CostModel.calibrate`),
which is how the reproduction keeps the model honest across machines.

The per-strategy formulas are deliberately transparent; bench E9 checks
that ranking plans by these estimates tracks the true best plan across
the selectivity sweep, and §2.6(3) ("cost estimation is difficult")
shows up as the documented inflation heuristics for blocked scans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np


@dataclass
class CostWeights:
    """Unit costs (seconds per operation, or any consistent unit)."""

    distance: float = 1.0
    predicate: float = 0.02
    page_read: float = 50.0
    lookup: float = 0.05  # one quantized-code table lookup


@dataclass
class WorkEstimate:
    """Predicted operator work for one plan execution."""

    distance_computations: float = 0.0
    predicate_evaluations: float = 0.0
    page_reads: float = 0.0
    lookups: float = 0.0

    def total(self, weights: CostWeights) -> float:
        return (
            weights.distance * self.distance_computations
            + weights.predicate * self.predicate_evaluations
            + weights.page_read * self.page_reads
            + weights.lookup * self.lookups
        )


def _index_scan_work(index, n: int, k: int, fetch: int) -> WorkEstimate:
    """Base (unpredicated) scan work for an index, by structure.

    ``fetch`` is the result-set size actually requested (k, or a*k for
    post-filtering) — it inflates beam widths / rerank candidates.
    """
    family = getattr(index, "family", "flat")
    est = WorkEstimate()
    if family == "flat":
        est.distance_computations = n
    elif family == "table":
        nlist = getattr(index, "nlist", None) or getattr(index, "num_postings", None)
        nprobe = getattr(index, "nprobe", None)
        if nlist and nprobe:
            est.distance_computations = nlist + (n / nlist) * min(nprobe, nlist)
            pages = getattr(index, "expected_pages_per_probe", None)
            if callable(pages):
                est.page_reads = pages() * min(nprobe, nlist)
        elif hasattr(index, "num_tables"):  # LSH
            # Expected candidates: n * L / 2^K for sign hashes is usually
            # pessimistic; use measured mean bucket size when available.
            sizes = index.bucket_sizes() if index.is_built else []
            mean_bucket = float(np.mean(sizes)) if sizes else n / 16
            est.distance_computations = index.num_tables * mean_bucket
        elif hasattr(index, "nbits"):  # binary-hash indexes
            est.lookups = n  # Hamming pass
            est.distance_computations = getattr(index, "rerank", 100)
        else:  # PQ/SQ flat codes
            est.lookups = n
            est.distance_computations = getattr(index, "rerank", 0) or 0
    elif family == "tree":
        leaves = (
            getattr(index, "max_leaves", None)
            or getattr(index, "search_k", None)
            or 32
        )
        leaf_size = getattr(index, "leaf_size", 16)
        est.distance_computations = max(fetch, leaves * leaf_size)
    elif family == "graph":
        ef = max(fetch, getattr(index, "ef_search", None) or getattr(index, "beam_width", 16))
        degree = getattr(index, "m", None) or getattr(index, "max_degree", 16)
        est.distance_computations = ef * degree
        if type(index).__name__ == "DiskAnnIndex":
            est.page_reads = max(fetch, getattr(index, "beam_width", 16))
    else:
        est.distance_computations = n
    return est


class CostModel:
    """Estimates and compares plan costs; optionally self-calibrating."""

    #: Inflation exponents for blocked traversal: searching a graph/tree
    #: index under a mask of selectivity s costs roughly base/(s^beta).
    #: Visit-first's predicate bias makes it cheaper than block-first at
    #: the same s (smaller beta); both are heuristics — §2.6(3) is open.
    BLOCK_FIRST_BETA = 0.5
    VISIT_FIRST_BETA = 0.3

    def __init__(self, weights: CostWeights | None = None):
        self.weights = weights or CostWeights()

    def calibrate(self, vectors: np.ndarray, score, sample: int = 2048,
                  page_read_seconds: float = 100e-6) -> "CostModel":
        """Measure the real per-distance cost on this data; anchor others.

        Predicate evaluations are charged at ~1/50 of a distance (one
        vectorized compare vs a d-dim kernel); page reads at the supplied
        device latency.
        """
        sample = min(sample, vectors.shape[0])
        if sample >= 2:
            block = vectors[:sample]
            start = time.perf_counter()
            score.distances(block[0], block)
            per_distance = (time.perf_counter() - start) / sample
        else:
            per_distance = 1e-7
        self.weights = CostWeights(
            distance=per_distance,
            predicate=per_distance / 50.0,
            page_read=page_read_seconds,
            lookup=per_distance / 10.0,
        )
        return self

    # ------------------------------------------------------------ estimators

    def estimate(self, plan, index, n: int, k: int, selectivity: float) -> float:
        """Total estimated cost of a plan (see planner for strategies)."""
        s = min(max(selectivity, 1e-6), 1.0)
        strategy = plan.strategy
        est = WorkEstimate()
        if strategy == "brute_force":
            est.distance_computations = n
        elif strategy == "pre_filter":
            est.predicate_evaluations = n
            est.distance_computations = s * n
        elif strategy == "index_scan":
            est = _index_scan_work(index, n, k, fetch=k)
        elif strategy == "block_first":
            est = _index_scan_work(index, n, k, fetch=k)
            est.predicate_evaluations += n  # online bitmask construction
            family = getattr(index, "family", "flat")
            if family in ("graph", "tree"):
                inflation = (1.0 / s) ** self.BLOCK_FIRST_BETA
                est.distance_computations *= inflation
                est.page_reads *= inflation
        elif strategy == "post_filter":
            oversample = getattr(plan, "oversample", None) or 1.0 / s
            fetch = min(n, int(np.ceil(oversample * k)))
            est = _index_scan_work(index, n, k, fetch=fetch)
            est.predicate_evaluations += fetch
        elif strategy == "visit_first":
            est = _index_scan_work(index, n, k, fetch=k)
            inflation = (1.0 / s) ** self.VISIT_FIRST_BETA
            est.distance_computations *= inflation
            est.predicate_evaluations += est.distance_computations
        elif strategy == "partition":
            # Offline blocking: scan one partition of expected size s*n.
            est = _index_scan_work(index, max(1, int(s * n)), k, fetch=k) if index \
                else WorkEstimate(distance_computations=s * n)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return est.total(self.weights)

    def measured_cost(self, stats) -> float:
        """Price an executed query's actual counters (for validation)."""
        est = WorkEstimate(
            distance_computations=stats.distance_computations,
            predicate_evaluations=stats.predicate_evaluations,
            page_reads=stats.page_reads,
        )
        return est.total(self.weights)


class EmpiricalCostModel(CostModel):
    """A cost model whose unit weights are *fitted*, not assumed.

    Feed it (SearchStats, measured latency) samples from real plan
    executions; :meth:`fit` solves the non-negative least-squares
    problem  latency ~ w_dist*dists + w_pred*preds + w_page*pages
    (projected gradient keeps weights >= 0).  This addresses the §2.6(3)
    complaint that blocked-scan costs are hard to model analytically:
    measure instead.
    """

    def __init__(self):
        super().__init__()
        self._features: list[list[float]] = []
        self._targets: list[float] = []
        self.fitted = False
        self.residual_rms: float | None = None

    def observe(self, stats, latency_seconds: float) -> None:
        """Record one executed query."""
        self._features.append([
            float(stats.distance_computations),
            float(stats.predicate_evaluations),
            float(stats.page_reads),
        ])
        self._targets.append(float(latency_seconds))

    @property
    def num_observations(self) -> int:
        return len(self._targets)

    def fit(self, iterations: int = 500, learning_rate: float | None = None) -> "EmpiricalCostModel":
        if len(self._targets) < 3:
            raise ValueError("need at least 3 observations to fit")
        x = np.asarray(self._features)
        y = np.asarray(self._targets)
        # Column scaling for conditioning.
        scale = np.where(x.max(axis=0) > 0, x.max(axis=0), 1.0)
        xs = x / scale
        w = np.full(3, y.mean() / max(1e-12, xs.sum(axis=1).mean()))
        lr = learning_rate if learning_rate is not None else 1.0 / max(
            1e-12, (xs * xs).sum()
        )
        for _ in range(iterations):
            grad = xs.T @ (xs @ w - y)
            w = np.clip(w - lr * grad, 0.0, None)
        w = w / scale
        self.weights = CostWeights(
            distance=float(w[0]), predicate=float(w[1]), page_read=float(w[2]),
            lookup=float(w[0]) / 10.0,
        )
        pred = x @ w
        self.residual_rms = float(np.sqrt(np.mean((pred - y) ** 2)))
        self.fitted = True
        return self

    def predict_latency(self, stats) -> float:
        """Predicted latency for a query with these counters."""
        return self.measured_cost(stats)
