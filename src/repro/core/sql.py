"""A small SQL extension for vector search (§2.1 Query Interfaces).

Extended systems (pgvector, PASE, AnalyticDB-V) expose vector search by
extending SQL with a distance operator used in ORDER BY.  We implement
the same surface over :class:`~repro.core.database.VectorDatabase`:

    SELECT * FROM items
    WHERE price < 20 AND (category = 'shoes' OR category = 'boots')
    ORDER BY DISTANCE(vec, [0.1, 0.2, 0.3])
    LIMIT 10

Supported grammar (case-insensitive keywords)::

    query   := SELECT '*' FROM name [WHERE pred] ORDER BY
               DISTANCE '(' name ',' vector ')' LIMIT int
    pred    := term (OR term)*
    term    := factor (AND factor)*
    factor  := NOT factor | '(' pred ')' | comparison
    comparison := name op literal | name BETWEEN lit AND lit
                | name IN '(' lit (',' lit)* ')'
    op      := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    vector  := '[' number (',' number)* ']'
    literal := number | 'single-quoted string'

Parsing a statement yields a :class:`ParsedQuery`; :func:`execute_sql`
runs it through the database's regular planner/optimizer — exactly the
"underlying relational optimizer performs plan enumeration" design of
§2.3(2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..hybrid.predicates import Between, Comparison, In, Predicate
from .errors import SqlError

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # single-quoted string
      | [-+]?\d+\.\d*(?:[eE][-+]?\d+)? | [-+]?\.?\d+(?:[eE][-+]?\d+)?  # number
      | <> | <= | >= | != | == | [=<>(),*\[\]]
      | [A-Za-z_][A-Za-z_0-9]*
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "order", "by", "limit", "and", "or", "not",
    "between", "in", "distance",
}


def tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise SqlError(f"cannot tokenize near: {text[pos:pos + 20]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


@dataclass
class ParsedQuery:
    table: str
    predicate: Predicate | None
    distance_column: str
    vector: np.ndarray
    k: int


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.pos += 1
        return token

    def _expect(self, *expected: str) -> str:
        token = self._next()
        if token.lower() not in expected:
            raise SqlError(f"expected {'/'.join(expected)}, got {token!r}")
        return token

    def _is_keyword(self, token: str | None, word: str) -> bool:
        return token is not None and token.lower() == word

    # ----------------------------------------------------------- literals

    def _literal(self):
        token = self._next()
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            raise SqlError(f"expected a literal, got {token!r}") from None

    def _vector(self) -> np.ndarray:
        self._expect("[")
        values = [float(self._next())]
        while self._is_keyword(self._peek(), ","):
            self._next()
            values.append(float(self._next()))
        self._expect("]")
        return np.asarray(values, dtype=np.float32)

    # --------------------------------------------------------- predicates

    def _comparison(self) -> Predicate:
        name = self._next()
        if name.lower() in _KEYWORDS:
            raise SqlError(f"expected an attribute name, got keyword {name!r}")
        op_token = self._next().lower()
        if op_token == "between":
            low = self._literal()
            self._expect("and")
            high = self._literal()
            return Between(name, low, high)
        if op_token == "in":
            self._expect("(")
            values = [self._literal()]
            while self._is_keyword(self._peek(), ","):
                self._next()
                values.append(self._literal())
            self._expect(")")
            return In(name, values)
        op_map = {"=": "==", "==": "==", "!=": "!=", "<>": "!=",
                  "<": "<", "<=": "<=", ">": ">", ">=": ">="}
        if op_token not in op_map:
            raise SqlError(f"unknown comparison operator {op_token!r}")
        return Comparison(name, op_map[op_token], self._literal())

    def _factor(self) -> Predicate:
        token = self._peek()
        if self._is_keyword(token, "not"):
            self._next()
            return ~self._factor()
        if token == "(":
            self._next()
            inner = self._pred()
            self._expect(")")
            return inner
        return self._comparison()

    def _term(self) -> Predicate:
        left = self._factor()
        while self._is_keyword(self._peek(), "and"):
            self._next()
            left = left & self._factor()
        return left

    def _pred(self) -> Predicate:
        left = self._term()
        while self._is_keyword(self._peek(), "or"):
            self._next()
            left = left | self._term()
        return left

    # ------------------------------------------------------------- query

    def parse(self) -> ParsedQuery:
        self._expect("select")
        self._expect("*")
        self._expect("from")
        table = self._next()
        predicate = None
        if self._is_keyword(self._peek(), "where"):
            self._next()
            predicate = self._pred()
        self._expect("order")
        self._expect("by")
        self._expect("distance")
        self._expect("(")
        column = self._next()
        self._expect(",")
        vector = self._vector()
        self._expect(")")
        self._expect("limit")
        k = int(self._next())
        if self._peek() is not None:
            raise SqlError(f"unexpected trailing token {self._peek()!r}")
        return ParsedQuery(table, predicate, column, vector, k)


def parse_sql(statement: str) -> ParsedQuery:
    """Parse one SELECT ... ORDER BY DISTANCE(...) LIMIT statement."""
    tokens = tokenize(statement)
    if not tokens:
        raise SqlError("empty statement")
    return _Parser(tokens).parse()


def execute_sql(database, statement: str):
    """Parse and run a statement on a VectorDatabase; returns its
    :class:`~repro.core.types.SearchResult`."""
    parsed = parse_sql(statement)
    return database.search(
        vector=parsed.vector, k=parsed.k, predicate=parsed.predicate
    )
