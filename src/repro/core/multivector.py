"""Multi-vector *entities* (§2.1 query variants, §2.6(6)).

"In a multi-vector query, multiple feature vectors are used to
represent either the query, each entity, or both."  The executor
handles the query side; this module adds the entity side: a collection
where each entity owns several facet vectors (a person with many face
shots, a product with multiple images), searched at the *entity* level.

Search follows the decomposition [79] uses: a facet-level index
retrieves candidate facets per query vector, candidates are grouped to
entities, and surviving entities are re-ranked with the exact aggregate
score over all their facets.  ``search_exact`` provides the
brute-force oracle the decomposition is measured against.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.errors import CollectionError, QueryError
from ..core.types import SearchHit, SearchResult, SearchStats, as_matrix
from ..scores import AggregateScore, Score, get_score
from ..scores.aggregate import WeightedSumAggregator


class MultiVectorEntityCollection:
    """Entities with multiple facet vectors, searched by aggregate score.

    Parameters
    ----------
    dim:
        Facet vector dimensionality.
    score:
        Per-facet score; combined per entity by the query's aggregator.
    index_factory:
        Zero-arg callable producing the facet-level index (defaults to
        flat/exact).  Call :meth:`build_index` after loading.
    """

    def __init__(
        self,
        dim: int,
        score: Score | str = "l2",
        index_factory: Callable[[], Any] | None = None,
    ):
        if dim <= 0:
            raise CollectionError("dim must be positive")
        self.dim = dim
        self.score = get_score(score)
        if index_factory is None:
            from ..index.flat import FlatIndex

            index_factory = lambda: FlatIndex(self.score)  # noqa: E731
        self.index_factory = index_factory
        self._entity_vectors: list[np.ndarray] = []
        self._entity_attributes: list[dict[str, Any]] = []
        self._facet_matrix: np.ndarray | None = None
        self._facet_entity: np.ndarray | None = None  # facet row -> entity id
        self._index = None

    # ------------------------------------------------------------------- DML

    def insert(
        self,
        vectors: np.ndarray,
        attributes: Mapping[str, Any] | None = None,
    ) -> int:
        """Insert one entity with one or more facet vectors."""
        matrix = as_matrix(vectors, self.dim)
        if matrix.shape[0] == 0:
            raise CollectionError("an entity needs at least one facet vector")
        entity_id = len(self._entity_vectors)
        self._entity_vectors.append(matrix)
        self._entity_attributes.append(dict(attributes or {}))
        self._facet_matrix = None  # invalidate
        self._index = None
        return entity_id

    def insert_many(
        self,
        entities: Sequence[np.ndarray],
        attributes: Sequence[Mapping[str, Any]] | None = None,
    ) -> list[int]:
        if attributes is not None and len(attributes) != len(entities):
            raise CollectionError("one attribute dict per entity is required")
        return [
            self.insert(vectors, attributes[i] if attributes else None)
            for i, vectors in enumerate(entities)
        ]

    def __len__(self) -> int:
        return len(self._entity_vectors)

    @property
    def num_facets(self) -> int:
        return sum(v.shape[0] for v in self._entity_vectors)

    def entity_vectors(self, entity_id: int) -> np.ndarray:
        return self._entity_vectors[entity_id]

    def attributes(self, entity_id: int) -> dict[str, Any]:
        return self._entity_attributes[entity_id]

    # ----------------------------------------------------------------- index

    def _facets(self) -> tuple[np.ndarray, np.ndarray]:
        if self._facet_matrix is None:
            if not self._entity_vectors:
                self._facet_matrix = np.empty((0, self.dim), dtype=np.float32)
                self._facet_entity = np.empty(0, dtype=np.int64)
            else:
                self._facet_matrix = np.vstack(self._entity_vectors)
                self._facet_entity = np.concatenate([
                    np.full(v.shape[0], e, dtype=np.int64)
                    for e, v in enumerate(self._entity_vectors)
                ])
        return self._facet_matrix, self._facet_entity

    def build_index(self) -> "MultiVectorEntityCollection":
        """(Re)build the facet-level index over all facets."""
        matrix, _ = self._facets()
        self._index = self.index_factory()
        if matrix.shape[0]:
            self._index.build(matrix)
        return self

    # ---------------------------------------------------------------- search

    def _aggregator(self, aggregator, weights):
        if weights is not None:
            return AggregateScore(self.score, WeightedSumAggregator(weights))
        return AggregateScore(self.score, aggregator)

    def search_exact(
        self,
        query_vectors: np.ndarray,
        k: int,
        aggregator: Any = "mean",
        weights: np.ndarray | None = None,
    ) -> SearchResult:
        """Brute-force entity ranking (the oracle)."""
        queries = as_matrix(query_vectors, self.dim)
        agg = self._aggregator(aggregator, weights)
        stats = SearchStats(plan_name="entity_exact")
        distances = agg.distances(queries, self._entity_vectors)
        stats.distance_computations = self.num_facets * queries.shape[0]
        from ..index._kernels import topk_indices

        order = topk_indices(distances, k)
        hits = [SearchHit(int(e), float(distances[e])) for e in order]
        return SearchResult(hits=hits, stats=stats)

    def search(
        self,
        query_vectors: np.ndarray,
        k: int,
        aggregator: Any = "mean",
        weights: np.ndarray | None = None,
        facet_fetch: int | None = None,
    ) -> SearchResult:
        """Index-accelerated entity search (candidate union + rerank).

        ``facet_fetch`` controls how many facet hits each query vector
        contributes to the candidate set (default 4k).
        """
        if self._index is None:
            raise QueryError("call build_index() before searching")
        queries = as_matrix(query_vectors, self.dim)
        if queries.shape[0] == 0:
            raise QueryError("at least one query vector is required")
        fetch = facet_fetch if facet_fetch is not None else max(4 * k, 20)
        _, facet_entity = self._facets()
        stats = SearchStats(plan_name="entity_index_union")
        candidates: set[int] = set()
        for q in queries:
            for hit in self._index.search(q, fetch, stats=stats):
                candidates.add(int(facet_entity[hit.id]))
        if not candidates:
            return SearchResult(hits=[], stats=stats)
        agg = self._aggregator(aggregator, weights)
        entity_ids = sorted(candidates)
        distances = agg.distances(
            queries, [self._entity_vectors[e] for e in entity_ids]
        )
        stats.distance_computations += int(
            sum(self._entity_vectors[e].shape[0] for e in entity_ids)
            * queries.shape[0]
        )
        stats.candidates_examined += len(entity_ids)
        from ..index._kernels import topk_indices

        order = topk_indices(distances, k)
        hits = [
            SearchHit(int(entity_ids[i]), float(distances[i])) for i in order
        ]
        return SearchResult(hits=hits, stats=stats)
