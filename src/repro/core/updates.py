"""Out-of-place updates (§2.3): an LSM-buffered index.

Graph and learned indexes are expensive to update in place, so VDBMSs
buffer writes out-of-place and merge them in bulk [6, 10, 45, 79, 84].
:class:`BufferedVectorIndex` implements the pattern end to end:

* inserts/deletes land in an :class:`~repro.storage.lsm.LsmVectorStore`
  (memtable + runs), never touching the built index;
* searches merge the index's results (minus deleted/overwritten ids)
  with an exact scan of the small buffer — search stays correct while
  writes stay cheap;
* :meth:`merge` (manual, or automatic past ``merge_threshold`` buffered
  items) rebuilds the index over the union, emptying the buffer —
  the "apply them in bulk at a more appropriate time" step.

Bench E12 measures the write-throughput and recall consequences against
rebuild-per-insert.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..storage.lsm import LsmVectorStore
from .types import SearchHit, SearchStats, as_vector


class BufferedVectorIndex:
    """An index plus an LSM write buffer, searched together.

    Parameters
    ----------
    index_factory:
        Zero-arg callable producing a fresh unbuilt index for rebuilds.
    dim:
        Vector dimensionality.
    merge_threshold:
        Buffered-item count that triggers an automatic merge (None
        disables auto-merge).
    """

    def __init__(
        self,
        index_factory: Callable[[], Any],
        dim: int,
        merge_threshold: int | None = 1024,
        memtable_capacity: int = 256,
    ):
        self.index_factory = index_factory
        self.dim = dim
        self.merge_threshold = merge_threshold
        self.buffer = LsmVectorStore(dim, memtable_capacity=memtable_capacity)
        self.index = index_factory()
        self._indexed_ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._indexed_vectors: np.ndarray | None = None
        self._shadowed: set[int] = set()  # ids overwritten or deleted
        self._next_id = 0
        self._buffered_ops = 0  # cheap counter; len(buffer) walks all runs
        self.merges = 0
        self.merge_seconds = 0.0

    # ----------------------------------------------------------------- writes

    def insert(self, vector: np.ndarray) -> int:
        """Buffer an insert; returns the assigned id."""
        item_id = self._next_id
        self._next_id += 1
        self.buffer.put(item_id, as_vector(vector, self.dim))
        self._buffered_ops += 1
        self._maybe_merge()
        return item_id

    def update(self, item_id: int, vector: np.ndarray) -> None:
        """Out-of-place overwrite: old version shadowed, new buffered."""
        self._shadowed.add(int(item_id))
        self.buffer.put(int(item_id), as_vector(vector, self.dim))
        self._buffered_ops += 1
        self._maybe_merge()

    def delete(self, item_id: int) -> None:
        self._shadowed.add(int(item_id))
        self.buffer.delete(int(item_id))
        self._buffered_ops += 1
        self._maybe_merge()

    def _maybe_merge(self) -> None:
        if self.merge_threshold is None:
            return
        if self._buffered_ops >= self.merge_threshold:
            self.merge()

    def merge(self) -> None:
        """Fold the buffer into a rebuilt index (bulk apply)."""
        start = time.perf_counter()
        ids_list: list[int] = []
        vecs_list: list[np.ndarray] = []
        if self._indexed_vectors is not None:
            for pos, item_id in enumerate(self._indexed_ids):
                if int(item_id) not in self._shadowed:
                    ids_list.append(int(item_id))
                    vecs_list.append(self._indexed_vectors[pos])
        for item_id, vector, _ in self.buffer.live_items():
            ids_list.append(int(item_id))
            vecs_list.append(vector)
        self.index = self.index_factory()
        if ids_list:
            matrix = np.vstack(vecs_list)
            order = np.argsort(ids_list, kind="stable")
            self._indexed_ids = np.asarray(ids_list, dtype=np.int64)[order]
            self._indexed_vectors = matrix[order]
            self.index.build(self._indexed_vectors, ids=self._indexed_ids)
        else:
            self._indexed_ids = np.empty(0, dtype=np.int64)
            self._indexed_vectors = None
        self.buffer = LsmVectorStore(
            self.dim, memtable_capacity=self.buffer.memtable_capacity
        )
        self._shadowed = set()
        self._buffered_ops = 0
        self.merges += 1
        self.merge_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------ reads

    def search(
        self, query: np.ndarray, k: int, stats: SearchStats | None = None, **params: Any
    ) -> list[SearchHit]:
        """Merged search: index results (minus shadowed) + buffer scan."""
        stats = stats if stats is not None else SearchStats()
        query = as_vector(query, self.dim)
        hits: list[SearchHit] = []
        if self._indexed_vectors is not None and self.index.is_built:
            # Over-fetch to survive shadowed-id removal.
            fetch = k + len(self._shadowed)
            for hit in self.index.search(query, fetch, stats=stats, **params):
                if hit.id not in self._shadowed:
                    hits.append(hit)
        buf_ids, buf_vectors = self.buffer.live_arrays()
        if buf_ids.size:
            distances = self.index.score.distances(query, buf_vectors)
            stats.distance_computations += buf_ids.size
            hits.extend(
                SearchHit(int(i), float(d)) for i, d in zip(buf_ids, distances)
            )
        hits.sort()
        return hits[:k]

    def get(self, item_id: int) -> np.ndarray | None:
        """Point lookup: buffer first (newest), then the indexed snapshot."""
        found = self.buffer.get(item_id)
        if found is not None:
            return found[0]
        if int(item_id) in self._shadowed:
            return None
        where = np.searchsorted(self._indexed_ids, item_id)
        if (
            self._indexed_vectors is not None
            and where < self._indexed_ids.shape[0]
            and self._indexed_ids[where] == item_id
        ):
            return self._indexed_vectors[where].copy()
        return None

    def __len__(self) -> int:
        indexed_live = sum(
            1 for i in self._indexed_ids if int(i) not in self._shadowed
        )
        return indexed_live + len(self.buffer)

    @property
    def buffered_count(self) -> int:
        return len(self.buffer)
