"""Batched graph search with shared traversal (§2.3 batched queries).

"Several techniques have been proposed to exploit commonalities between
the queries in order to speed up processing the batch" [50, 79].  For
graph indexes the exploitable commonality is the *route*: similar
queries descend through the same region, so the entry-finding work can
be shared.

:func:`batched_graph_search` clusters the batch (k-means over the query
vectors), runs one full search per cluster centroid, and seeds each
member query's bottom-layer beam search from the centroid's results —
skipping the per-query descent/entry phase.  Dissimilar queries land in
different clusters, so sharing never forces unrelated routes together.
"""

from __future__ import annotations

import math

import numpy as np

from ..index._graph import beam_search
from ..quantization.kmeans import kmeans
from .types import SearchHit, SearchStats


def _graph_surface(index):
    """(neighbors_of, fallback_entries) for any graph index."""
    from ..hybrid.visitfirst import graph_entry_and_adjacency

    return graph_entry_and_adjacency(index)


def batched_graph_search(
    index,
    queries: np.ndarray,
    k: int,
    ef_search: int | None = None,
    group_size: int = 8,
    stats: SearchStats | None = None,
) -> list[list[SearchHit]]:
    """Answer a query batch over a graph index with shared entries.

    Parameters
    ----------
    group_size:
        Target queries per shared route; the batch is k-means-clustered
        into ``ceil(b / group_size)`` groups.

    Returns per-query hit lists in batch order.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    b = queries.shape[0]
    if b == 0:
        return []
    stats = stats if stats is not None else SearchStats()
    ef = max(k, ef_search if ef_search is not None else getattr(index, "ef_search", 64))
    neighbors_of, fallback_entries = _graph_surface(index)

    num_groups = max(1, math.ceil(b / group_size))
    if num_groups >= b:
        assignments = np.arange(b)
        centroids = queries.astype(np.float64)
    else:
        result = kmeans(queries.astype(np.float64), num_groups, seed=0)
        assignments = result.assignments
        centroids = result.centroids

    # External id -> row position map, once per call.  Identity ids (the
    # common case) skip the dict.
    ids = index._ids
    identity_ids = bool(
        ids.shape[0] == 0 or np.array_equal(ids, np.arange(ids.shape[0]))
    )
    id_to_pos = None if identity_ids else {
        int(e): p for p, e in enumerate(ids)
    }

    out: list[list[SearchHit] | None] = [None] * b
    for group in range(centroids.shape[0]):
        members = np.flatnonzero(assignments == group)
        if members.size == 0:
            continue
        # One full search for the shared route.
        centroid_hits = index.search(
            centroids[group].astype(np.float32), k, ef_search=ef, stats=stats
        )
        entries = [
            hit.id if id_to_pos is None else id_to_pos[hit.id]
            for hit in centroid_hits
        ]
        if not entries:
            entries = [fallback_entries[0]]
        for member in members:
            pairs = beam_search(
                queries[member],
                index._vectors,
                neighbors_of,
                entries,
                ef,
                index.score,
                stats=stats,
            )
            stats.candidates_examined += len(pairs)
            out[member] = [
                SearchHit(int(index._ids[p]), float(d)) for d, p in pairs[:k]
            ]
    return [hits if hits is not None else [] for hits in out]
