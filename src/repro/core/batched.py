"""Batched graph search with shared traversal (§2.3 batched queries).

"Several techniques have been proposed to exploit commonalities between
the queries in order to speed up processing the batch" [50, 79].  For
graph indexes the exploitable commonality is the *route*: similar
queries descend through the same region, so both the entry-finding work
and the traversal itself can be shared.

:func:`batched_graph_search` clusters the batch (k-means over the query
vectors), runs one full search per cluster centroid, seeds each member
query from the centroid's results — skipping the per-query descent —
and then answers the whole group with **one shared-frontier kernel
call** (:func:`~repro.index._graph.batched_beam_search`): the group
expands a single merged frontier over the cached CSR adjacency — per
round, one concatenated neighbor gather, one fused
``distances_batch`` score pass against every member, and one vectorized
prune of every member's top-``ef`` pool.  Dissimilar queries land in
different clusters, so sharing never forces unrelated routes together.

:func:`batched_graph_search_reference` is the previous implementation —
per-member scalar ``beam_search`` loops over the same shared entries —
kept verbatim as the differential oracle.  The merged traversal is not
bitwise-identical to per-member beams (its beam bound is the loosest
member's, so it explores a superset; pool tie-breaking differs), so the
differential contract is *bounded recall*: on clustered batches the
kernel's recall against exact ground truth must be at or above the
reference's (see ``tests/test_multivector_batched.py``), and both paths
stay deterministic for fixed inputs.
"""

from __future__ import annotations

import math

import numpy as np

from ..index._graph import batched_beam_search, beam_search
from ..quantization.kmeans import kmeans
from .types import SearchHit, SearchStats


def _graph_surface(index):
    """(neighbors_of, fallback_entries) for any graph index."""
    from ..hybrid.visitfirst import graph_entry_and_adjacency

    return graph_entry_and_adjacency(index)


def _group_queries(queries: np.ndarray, group_size: int):
    """K-means the batch into shared-route groups.

    Returns (assignments, centroids); trivial groups (one query each)
    skip the clustering pass entirely.
    """
    b = queries.shape[0]
    num_groups = max(1, math.ceil(b / group_size))
    if num_groups >= b:
        return np.arange(b), queries.astype(np.float64)
    result = kmeans(queries.astype(np.float64), num_groups, seed=0)
    return result.assignments, result.centroids


def _entry_positions(index, centroid, k, ef, stats, id_to_pos, fallback_entries):
    """One full search for the group's shared route -> entry positions."""
    centroid_hits = index.search(
        centroid.astype(np.float32, copy=False), k, ef_search=ef, stats=stats
    )
    entries = [
        hit.id if id_to_pos is None else id_to_pos[hit.id] for hit in centroid_hits
    ]
    return entries if entries else [fallback_entries[0]]


def _identity_map(index):
    """External-id -> row-position map, or None when ids are identity."""
    ids = index._ids
    identity_ids = bool(
        ids.shape[0] == 0 or np.array_equal(ids, np.arange(ids.shape[0]))
    )
    return None if identity_ids else {int(e): p for p, e in enumerate(ids)}


def batched_graph_search(
    index,
    queries: np.ndarray,
    k: int,
    ef_search: int | None = None,
    group_size: int = 8,
    stats: SearchStats | None = None,
) -> list[list[SearchHit]]:
    """Answer a query batch over a graph index with shared traversal.

    Parameters
    ----------
    group_size:
        Target queries per shared route; the batch is k-means-clustered
        into ``ceil(b / group_size)`` groups, and each group runs as one
        shared-frontier kernel call.

    Returns per-query hit lists in batch order.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    b = queries.shape[0]
    if b == 0:
        return []
    stats = stats if stats is not None else SearchStats()
    ef = max(k, ef_search if ef_search is not None else getattr(index, "ef_search", 64))
    neighbors_of, fallback_entries = _graph_surface(index)
    assignments, centroids = _group_queries(queries, group_size)
    id_to_pos = _identity_map(index)

    out: list[list[SearchHit] | None] = [None] * b
    index_ids = index._ids
    for group in range(centroids.shape[0]):
        members = np.flatnonzero(assignments == group)
        if members.size == 0:
            continue
        entries = _entry_positions(
            index, centroids[group], k, ef, stats, id_to_pos, fallback_entries
        )
        group_pairs = batched_beam_search(
            queries[members],
            index._vectors,
            neighbors_of,
            entries,
            ef,
            index.score,
            stats=stats,
        )
        for member, pairs in zip(members, group_pairs):
            stats.candidates_examined += len(pairs)
            out[member] = [
                SearchHit(int(index_ids[p]), float(d)) for d, p in pairs[:k]
            ]
    return [hits if hits is not None else [] for hits in out]


def batched_graph_search_reference(
    index,
    queries: np.ndarray,
    k: int,
    ef_search: int | None = None,
    group_size: int = 8,
    stats: SearchStats | None = None,
) -> list[list[SearchHit]]:
    """The previous per-member-loop implementation, kept as the oracle.

    Shares entries per group exactly like :func:`batched_graph_search`
    but traverses with one scalar ``beam_search`` per member.  Do not
    optimize this — it is both the perf baseline the bench suite holds
    the merged-frontier kernel against and the recall oracle the
    differential tests compare it to.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    b = queries.shape[0]
    if b == 0:
        return []
    stats = stats if stats is not None else SearchStats()
    ef = max(k, ef_search if ef_search is not None else getattr(index, "ef_search", 64))
    neighbors_of, fallback_entries = _graph_surface(index)
    assignments, centroids = _group_queries(queries, group_size)
    id_to_pos = _identity_map(index)

    out: list[list[SearchHit] | None] = [None] * b
    for group in range(centroids.shape[0]):
        members = np.flatnonzero(assignments == group)
        if members.size == 0:
            continue
        entries = _entry_positions(
            index, centroids[group], k, ef, stats, id_to_pos, fallback_entries
        )
        for member in members:
            pairs = beam_search(
                queries[member],
                index._vectors,
                neighbors_of,
                entries,
                ef,
                index.score,
                stats=stats,
            )
            stats.candidates_examined += len(pairs)
            out[member] = [
                SearchHit(int(index._ids[p]), float(d)) for d, p in pairs[:k]
            ]
    return [hits if hits is not None else [] for hits in out]
