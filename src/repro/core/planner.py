"""Plan enumeration (§2.3).

A query plan names a filtering strategy plus (optionally) the index it
scans.  The strategies are exactly the tutorial's taxonomy:

* ``brute_force`` — full table scan (always available; exact).
* ``index_scan`` — unrestricted index scan (non-predicated queries).
* ``pre_filter`` — predicate first, exact scan of survivors.
* ``block_first`` — online bitmask + masked index scan.
* ``post_filter`` — unrestricted scan of a·k, filter after.
* ``visit_first`` — single-stage predicate-aware graph traversal.
* ``partition`` — offline blocking through an attribute-partitioned
  index.

Two enumeration modes mirror §2.3(1)-(2): :class:`PredefinedPlanner`
maps each query type to one fixed plan (Vearch/Weaviate style), and
:class:`AutomaticPlanner` enumerates every applicable combination for a
selector to choose from (pgvector/PASE style, via the relational-ish
optimizer).

:class:`PlanCache` memoizes the selector's decision per prepared query
shape: repeat queries (same k/c/predicate/params against an unchanged
collection and index set) skip enumeration, selectivity estimation, and
selection entirely — the pure-Python dispatch cost that dominates
sub-millisecond ANN scans.  Entries are keyed by the collection's
mutation generation plus the database's index epoch, so any insert,
delete, vector update, or index DDL makes every previously cached plan
unreachable rather than merely flushed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from .errors import PlanningError

STRATEGIES = (
    "brute_force",
    "index_scan",
    "pre_filter",
    "block_first",
    "post_filter",
    "visit_first",
    "partition",
)


@dataclass
class QueryPlan:
    """One executable plan choice."""

    strategy: str
    index_name: str | None = None
    oversample: float | None = None  # post_filter's a
    params: dict[str, Any] = field(default_factory=dict)
    estimated_cost: float | None = None

    def __post_init__(self):
        if self.strategy not in STRATEGIES:
            raise PlanningError(
                f"unknown strategy {self.strategy!r}; known: {STRATEGIES}"
            )

    def describe(self) -> str:
        index = f" via {self.index_name}" if self.index_name else ""
        cost = (
            f" (est. cost {self.estimated_cost:.3g})"
            if self.estimated_cost is not None
            else ""
        )
        extra = f" a={self.oversample:g}" if self.oversample else ""
        return f"{self.strategy}{index}{extra}{cost}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view (used by EXPLAIN ANALYZE exports)."""
        return {
            "strategy": self.strategy,
            "index_name": self.index_name,
            "oversample": self.oversample,
            "params": dict(self.params),
            "estimated_cost": self.estimated_cost,
        }


class PlanCache:
    """LRU cache of (chosen plan, candidate plans) per prepared query.

    Keys are built by the owner (:meth:`VectorDatabase.plan`) and must
    embed every input the planning decision depends on — query shape,
    ``k``/``c``, the predicate, search params, the collection's mutation
    ``generation``, and the database's index ``epoch``.  Because stale
    state changes the key instead of the cached value, invalidation is
    structural: a mutated collection simply never produces the old key
    again, and the dead entries age out of the LRU.

    The cache never stores unhashable keys (the owner skips caching for
    those queries) and is bounded by ``capacity`` with least-recently-
    used eviction.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise PlanningError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[QueryPlan, tuple[QueryPlan, ...]]]
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> tuple[QueryPlan, tuple[QueryPlan, ...]] | None:
        """Return the cached (chosen, candidates) or None; counts the probe."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self, key: Hashable, chosen: QueryPlan, candidates: list[QueryPlan]
    ) -> None:
        self._entries[key] = (chosen, tuple(candidates))
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict[str, int]:
        """Counters + occupancy, as surfaced by ``explain_analyze``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }


def _is_graph(index) -> bool:
    return getattr(index, "family", "") == "graph"


class AutomaticPlanner:
    """Enumerate every applicable plan for a query (§2.3 Automatic)."""

    def enumerate(
        self,
        is_hybrid: bool,
        indexes: dict[str, Any],
        partitioned: dict[str, Any] | None = None,
        predicate=None,
    ) -> list[QueryPlan]:
        plans: list[QueryPlan] = []
        if not is_hybrid:
            plans.append(QueryPlan("brute_force"))
            plans.extend(QueryPlan("index_scan", name) for name in indexes)
            return plans
        plans.append(QueryPlan("pre_filter"))
        for name, index in indexes.items():
            plans.append(QueryPlan("block_first", name))
            plans.append(QueryPlan("post_filter", name))
            if _is_graph(index):
                plans.append(QueryPlan("visit_first", name))
        for name, part in (partitioned or {}).items():
            if predicate is not None and part.covers(predicate):
                plans.append(QueryPlan("partition", name))
        return plans


class PredefinedPlanner:
    """One fixed plan per query shape (§2.3 Predefined).

    Parameters
    ----------
    plain_plan / hybrid_plan:
        Templates applied to non-predicated / predicated searches.  The
        index name ``"*"`` resolves to the first registered index.
    """

    def __init__(
        self,
        plain_plan: QueryPlan | None = None,
        hybrid_plan: QueryPlan | None = None,
    ):
        self.plain_plan = plain_plan or QueryPlan("index_scan", "*")
        self.hybrid_plan = hybrid_plan or QueryPlan("post_filter", "*")

    def _resolve(self, template: QueryPlan, indexes: dict[str, Any]) -> QueryPlan:
        name = template.index_name
        if name == "*":
            if not indexes:
                return QueryPlan(
                    "brute_force" if template.strategy == "index_scan" else "pre_filter"
                )
            name = next(iter(indexes))
        return QueryPlan(
            template.strategy, name, template.oversample, dict(template.params)
        )

    def enumerate(
        self,
        is_hybrid: bool,
        indexes: dict[str, Any],
        partitioned: dict[str, Any] | None = None,
        predicate=None,
    ) -> list[QueryPlan]:
        template = self.hybrid_plan if is_hybrid else self.plain_plan
        return [self._resolve(template, indexes)]
