"""Core value types shared across the VDBMS.

The types here are deliberately small, immutable where practical, and free
of behaviour beyond validation and convenience accessors, so that every
layer (indexes, operators, executor, distributed nodes) can exchange them
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from .errors import DimensionMismatchError

# Dtype used for all stored vectors.  float32 matches what real VDBMSs
# (Faiss, Milvus, pgvector) store and halves memory vs float64.
VECTOR_DTYPE = np.float32


def as_matrix(vectors: Any, dim: int | None = None) -> np.ndarray:
    """Coerce input into a contiguous (n, d) float32 matrix.

    Accepts a single vector (returned as shape (1, d)), a sequence of
    vectors, or an ndarray.  Raises :class:`DimensionMismatchError` when
    ``dim`` is given and does not match.
    """
    arr = np.asarray(vectors, dtype=VECTOR_DTYPE)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise DimensionMismatchError(dim, arr.shape[1])
    return np.ascontiguousarray(arr)


def as_vector(vector: Any, dim: int | None = None) -> np.ndarray:
    """Coerce input into a contiguous (d,) float32 vector."""
    arr = np.asarray(vector, dtype=VECTOR_DTYPE)
    if arr.ndim == 2 and arr.shape[0] == 1:
        arr = arr[0]
    if arr.ndim != 1:
        raise ValueError(f"expected a single vector, got shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionMismatchError(dim, arr.shape[0])
    return np.ascontiguousarray(arr)


@dataclass(frozen=True, slots=True)
class SearchHit:
    """A single search result: an item id and its distance to the query.

    ``distance`` is always "smaller is better"; similarity scores such as
    inner product are negated internally so that every layer sorts the
    same way (see :mod:`repro.scores.basic`).
    """

    id: int
    distance: float
    attributes: dict[str, Any] | None = None

    def __lt__(self, other: "SearchHit") -> bool:
        return (self.distance, self.id) < (other.distance, other.id)


@dataclass(slots=True)
class SearchResult:
    """An ordered result set for one query, plus execution statistics."""

    hits: list[SearchHit]
    stats: "SearchStats" = field(default_factory=lambda: SearchStats())

    @property
    def ids(self) -> list[int]:
        return [h.id for h in self.hits]

    @property
    def distances(self) -> list[float]:
        return [h.distance for h in self.hits]

    @property
    def is_partial(self) -> bool:
        """True when some routed shards failed and the result set is a
        best-effort answer over the reachable fraction of the data."""
        return self.stats.partial

    @property
    def coverage_fraction(self) -> float:
        return self.stats.coverage_fraction

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[SearchHit]:
        return iter(self.hits)

    def __getitem__(self, i: int) -> SearchHit:
        return self.hits[i]

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{h.id}@{h.distance:.3g}" for h in self.hits[:5]
        )
        more = f", ... +{len(self.hits) - 5}" if len(self.hits) > 5 else ""
        plan = f" plan={self.stats.plan_name!r}" if self.stats.plan_name else ""
        part = (
            f" PARTIAL coverage={self.stats.coverage_fraction:.2f}"
            if self.stats.partial else ""
        )
        return f"SearchResult([{preview}{more}]{plan}{part})"


@dataclass(slots=True)
class SearchStats:
    """Counters accumulated while executing one query.

    These are the quantities the tutorial's cost models reason about:
    the number of similarity computations, index nodes visited, disk page
    reads, and candidates filtered by predicates.
    """

    distance_computations: int = 0
    nodes_visited: int = 0
    page_reads: int = 0
    candidates_examined: int = 0
    predicate_evaluations: int = 0
    predicate_rejections: int = 0
    plan_name: str = ""
    elapsed_seconds: float = 0.0
    # Degraded-mode accounting (distributed/faulty execution, §2.3):
    # ``partial`` marks a result produced with less than full coverage;
    # ``coverage_fraction`` is the fraction of routed shards that
    # answered (1.0 for single-node execution).
    partial: bool = False
    coverage_fraction: float = 1.0
    shards_ok: int = 0
    shards_failed: int = 0
    # How many per-query stats objects were merged into this one (1 for a
    # fresh object).  Batch provenance: merged counters are sums, so
    # batch-level *averages* are ``counter / merged_count``.
    merged_count: int = 1

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats object into this one (for batches)."""
        self.distance_computations += other.distance_computations
        self.nodes_visited += other.nodes_visited
        self.page_reads += other.page_reads
        self.candidates_examined += other.candidates_examined
        self.predicate_evaluations += other.predicate_evaluations
        self.predicate_rejections += other.predicate_rejections
        self.elapsed_seconds += other.elapsed_seconds
        self.partial = self.partial or other.partial
        self.coverage_fraction = min(
            self.coverage_fraction, other.coverage_fraction
        )
        self.shards_ok += other.shards_ok
        self.shards_failed += other.shards_failed
        self.merged_count += other.merged_count

    def averages(self) -> dict[str, float]:
        """Per-constituent-query means of the counter fields.

        For a merged batch object this is the batch-level average; for a
        fresh (``merged_count == 1``) object it is the counters as-is.
        """
        n = max(1, self.merged_count)
        return {
            "distance_computations": self.distance_computations / n,
            "nodes_visited": self.nodes_visited / n,
            "page_reads": self.page_reads / n,
            "candidates_examined": self.candidates_examined / n,
            "predicate_evaluations": self.predicate_evaluations / n,
            "predicate_rejections": self.predicate_rejections / n,
            "elapsed_seconds": self.elapsed_seconds / n,
        }

    def __repr__(self) -> str:
        parts = []
        if self.plan_name:
            parts.append(f"plan={self.plan_name!r}")
        for label, value in (
            ("dist", self.distance_computations),
            ("nodes", self.nodes_visited),
            ("pages", self.page_reads),
            ("cand", self.candidates_examined),
            ("pred", self.predicate_evaluations),
            ("rej", self.predicate_rejections),
        ):
            if value:
                parts.append(f"{label}={value}")
        if self.elapsed_seconds:
            parts.append(f"elapsed={self.elapsed_seconds * 1e3:.3f}ms")
        if self.partial:
            parts.append(f"PARTIAL coverage={self.coverage_fraction:.2f}")
        if self.shards_ok or self.shards_failed:
            parts.append(f"shards={self.shards_ok}ok/{self.shards_failed}failed")
        if self.merged_count > 1:
            parts.append(f"merged={self.merged_count}")
        return f"SearchStats({', '.join(parts)})"


def topk_from_arrays(
    ids: Sequence[int] | np.ndarray,
    distances: np.ndarray,
    k: int,
) -> list[SearchHit]:
    """Build the k smallest-distance hits from parallel id/distance arrays.

    Selection runs through the shared partition-based kernel
    (:func:`repro.index._kernels.topk_indices`): O(n + k log k) instead
    of a full sort.
    """
    distances = np.asarray(distances)
    if distances.shape[0] == 0 or k <= 0:
        return []
    ids_arr = np.asarray(ids)
    from ..index._kernels import topk_indices  # local: avoids an import cycle

    order = topk_indices(distances, k)
    return [SearchHit(int(ids_arr[i]), float(distances[i])) for i in order]
