"""Plan selection (§2.3): rule-based and cost-based selectors.

* :class:`RuleBasedSelector` — Qdrant/Vespa style [3, 4]: thresholds on
  the estimated predicate selectivity decide pre-filter vs post-filter
  vs single-stage scanning.  Cheap, and close to optimal when the
  thresholds sit near the true crossovers (bench E9 checks this).
* :class:`CostBasedSelector` — AnalyticDB-V/Milvus style [6, 79, 84]:
  score every enumerated plan with the linear :class:`CostModel` and
  take the minimum.
"""

from __future__ import annotations

from typing import Any

from .cost import CostModel
from .errors import PlanningError
from .planner import QueryPlan


class PlanSelector:
    """Interface: pick one plan from the enumerated candidates.

    ``span`` (optional, trailing) is an observability
    :class:`~repro.observability.tracing.Span`; selectors record one
    ``candidate`` event per considered plan and a ``chosen`` event for
    the winner so EXPLAIN ANALYZE can show *why* a plan won.
    """

    def select(
        self,
        plans: list[QueryPlan],
        indexes: dict[str, Any],
        n: int,
        k: int,
        selectivity: float,
        span: Any = None,
    ) -> QueryPlan:
        raise NotImplementedError


class FirstPlanSelector(PlanSelector):
    """Take the only/first plan (pairs with :class:`PredefinedPlanner`)."""

    def select(self, plans, indexes, n, k, selectivity, span=None):
        if not plans:
            raise PlanningError("no plans to select from")
        if span is not None:
            span.event("chosen", plan=plans[0].describe(), rule="first")
        return plans[0]


class RuleBasedSelector(PlanSelector):
    """Selectivity-threshold rules.

    * s < ``prefilter_below`` -> pre-filter (few survivors; exact scan of
      them is cheapest and guarantees k results).
    * s > ``postfilter_above`` -> post-filter (filter rarely rejects, so
      plain index speed wins).
    * otherwise -> single-stage (visit-first on a graph index when
      available, else block-first).
    """

    def __init__(self, prefilter_below: float = 0.01, postfilter_above: float = 0.5):
        if not 0 <= prefilter_below <= postfilter_above <= 1:
            raise PlanningError("thresholds must satisfy 0<=low<=high<=1")
        self.prefilter_below = prefilter_below
        self.postfilter_above = postfilter_above

    @staticmethod
    def _pick(plans: list[QueryPlan], *strategies: str) -> QueryPlan | None:
        for strategy in strategies:
            for plan in plans:
                if plan.strategy == strategy:
                    return plan
        return None

    def select(self, plans, indexes, n, k, selectivity, span=None):
        if not plans:
            raise PlanningError("no plans to select from")
        if len(plans) == 1:
            chosen = plans[0]
        elif plans[0].strategy in ("brute_force", "index_scan"):
            # Non-hybrid: prefer any index over brute force.
            chosen = self._pick(plans, "index_scan") or plans[0]
        else:
            if selectivity < self.prefilter_below:
                chosen = self._pick(plans, "partition", "pre_filter")
            elif selectivity > self.postfilter_above:
                chosen = self._pick(plans, "post_filter")
            else:
                chosen = self._pick(
                    plans, "partition", "visit_first", "block_first"
                )
            if chosen is None:
                chosen = plans[0]
        if chosen.strategy == "post_filter" and chosen.oversample is None:
            chosen.oversample = max(1.0, 1.0 / max(selectivity, 1e-6))
        if span is not None:
            for plan in plans:
                span.event("candidate", plan=plan.describe())
            span.event(
                "chosen",
                plan=chosen.describe(),
                rule="selectivity_threshold",
                selectivity=round(float(selectivity), 6),
            )
        return chosen


class CostBasedSelector(PlanSelector):
    """Minimum-estimated-cost selection through :class:`CostModel`."""

    def __init__(self, cost_model: CostModel | None = None):
        self.cost_model = cost_model or CostModel()

    def select(self, plans, indexes, n, k, selectivity, span=None):
        if not plans:
            raise PlanningError("no plans to select from")
        best: QueryPlan | None = None
        for plan in plans:
            if plan.strategy == "post_filter" and plan.oversample is None:
                plan.oversample = max(1.0, 1.0 / max(selectivity, 1e-6))
            index = indexes.get(plan.index_name) if plan.index_name else None
            plan.estimated_cost = self.cost_model.estimate(
                plan, index, n, k, selectivity
            )
            if span is not None:
                span.event(
                    "candidate",
                    plan=plan.describe(),
                    cost=round(float(plan.estimated_cost), 3),
                )
            if best is None or plan.estimated_cost < best.estimated_cost:
                best = plan
        if span is not None:
            span.event(
                "chosen",
                plan=best.describe(),
                rule="min_cost",
                selectivity=round(float(selectivity), 6),
            )
        return best
