"""The vector collection: vectors + structured attributes (§2.1).

A :class:`VectorCollection` stores an (n, d) float32 matrix row-aligned
with a columnar attribute store, assigning each item a dense integer id
(its insertion order).  Dense ids are the contract the index layer
builds on, and the columnar layout is what makes online bitmask
blocking (§2.3) a vectorized operation.

Deletes are tombstones (an ``alive`` mask) so ids stay stable — the
same reason real VDBMSs do out-of-place deletion (§2.3); compaction is
the collection-rebuild the tutorial attributes to bulk update
application.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..hybrid.predicates import ColumnStore, Predicate
from .errors import CollectionError
from .types import VECTOR_DTYPE, as_matrix


class VectorCollection:
    """Row store of vectors with a columnar attribute side-table.

    The attribute schema is inferred from the first insert and enforced
    afterwards, keeping every column dense (no NULL handling — the
    tutorial's systems likewise require declared attribute schemas).
    """

    def __init__(self, dim: int):
        if dim <= 0:
            raise CollectionError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._vectors = np.empty((0, dim), dtype=VECTOR_DTYPE)
        self._alive = np.empty(0, dtype=bool)
        self._columns_raw: dict[str, list] = {}
        self._schema: tuple[str, ...] | None = None
        self._columns_cache: ColumnStore | None = None
        self._generation = 0

    # ----------------------------------------------------------------- writes

    def insert(self, vector: np.ndarray, attributes: Mapping[str, Any] | None = None) -> int:
        """Insert one item; returns its dense id."""
        return self.insert_many([vector], [attributes] if attributes else None)[0]

    def insert_many(
        self,
        vectors: np.ndarray | Sequence[np.ndarray],
        attributes: Sequence[Mapping[str, Any]] | None = None,
    ) -> list[int]:
        """Insert a batch; returns assigned ids."""
        matrix = as_matrix(vectors, self.dim)
        count = matrix.shape[0]
        if attributes is not None and len(attributes) != count:
            raise CollectionError(
                f"{count} vectors but {len(attributes)} attribute dicts"
            )
        schema = tuple(sorted(attributes[0])) if attributes else ()
        if self._schema is None:
            self._schema = schema
            self._columns_raw = {name: [] for name in schema}
        elif schema != self._schema:
            raise CollectionError(
                f"attribute schema mismatch: expected {self._schema}, got {schema}"
            )
        for row in range(count):
            attrs = attributes[row] if attributes else {}
            if tuple(sorted(attrs)) != self._schema:
                raise CollectionError(
                    f"attribute schema mismatch at row {row}: expected"
                    f" {self._schema}, got {tuple(sorted(attrs))}"
                )
            for name in self._schema:
                self._columns_raw[name].append(attrs[name])
        start = self._vectors.shape[0]
        # Keep the row store float32 C-contiguous: every search kernel
        # (beam search gathers, blocked scans, top-k) assumes it.
        from ..index._kernels import ensure_f32c

        self._vectors = ensure_f32c(np.vstack([self._vectors, matrix]))
        self._alive = np.concatenate([self._alive, np.ones(count, dtype=bool)])
        self._columns_cache = None
        self._generation += 1
        return list(range(start, start + count))

    def delete(self, item_id: int) -> None:
        """Tombstone an item (id stays allocated)."""
        self._check_id(item_id)
        self._alive[item_id] = False
        self._generation += 1

    def update_vector(self, item_id: int, vector: np.ndarray) -> None:
        """Replace an item's vector in place (indexes become stale)."""
        self._check_id(item_id)
        from .types import as_vector

        self._vectors[item_id] = as_vector(vector, self.dim)
        self._generation += 1

    def compact(self) -> "VectorCollection":
        """Return a new collection without tombstoned rows (ids re-dense)."""
        fresh = VectorCollection(self.dim)
        keep = np.flatnonzero(self._alive)
        attrs = None
        if self._schema:
            attrs = [self.attributes(int(i)) for i in keep]
        if keep.size:
            fresh.insert_many(self._vectors[keep], attrs)
        elif self._schema is not None:
            fresh._schema = self._schema
            fresh._columns_raw = {name: [] for name in self._schema}
        return fresh

    # ------------------------------------------------------------------ reads

    def _check_id(self, item_id: int) -> None:
        if not 0 <= item_id < self._vectors.shape[0]:
            raise CollectionError(f"id {item_id} out of range")
        if not self._alive[item_id]:
            raise CollectionError(f"id {item_id} is deleted")

    def vector(self, item_id: int) -> np.ndarray:
        self._check_id(item_id)
        return self._vectors[item_id].copy()

    def attributes(self, item_id: int) -> dict[str, Any]:
        self._check_id(item_id)
        return {name: self._columns_raw[name][item_id] for name in self._schema or ()}

    @property
    def vectors(self) -> np.ndarray:
        """The full row matrix (includes tombstoned rows; see ``alive``)."""
        return self._vectors

    @property
    def alive(self) -> np.ndarray:
        """Boolean liveness mask indexed by id."""
        return self._alive

    @property
    def generation(self) -> int:
        """Mutation counter: bumps on every insert / delete / vector
        update, so anything derived from the collection's contents (plan
        choices, selectivity estimates) can be keyed to a snapshot."""
        return self._generation

    @property
    def columns(self) -> ColumnStore:
        """Columnar attribute arrays (cached; invalidated on insert)."""
        if self._columns_cache is None:
            self._columns_cache = {
                name: np.asarray(values)
                for name, values in self._columns_raw.items()
            }
        return self._columns_cache

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._schema or ()

    def predicate_mask(self, predicate: Predicate | None) -> np.ndarray:
        """Liveness-aware boolean mask for a predicate (online blocking).

        This is the "bitmask constructed with traditional attribute
        filtering techniques" of §2.3 block-first scan.
        """
        if predicate is None:
            return self._alive.copy()
        if not self.columns and predicate.attributes():
            raise CollectionError("collection has no attributes to filter on")
        return predicate.evaluate(self.columns) & self._alive

    def selectivity(self, predicate: Predicate | None, sample_size: int | None = None) -> float:
        """Fraction of live items passing the predicate."""
        live = int(self._alive.sum())
        if live == 0:
            return 0.0
        if predicate is None:
            return 1.0
        if sample_size is not None:
            return predicate.selectivity(self.columns, sample_size=sample_size)
        return float(self.predicate_mask(predicate).sum() / live)

    def __len__(self) -> int:
        return int(self._alive.sum())

    @property
    def capacity(self) -> int:
        """Allocated rows including tombstones."""
        return self._vectors.shape[0]

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in np.flatnonzero(self._alive))

    def __repr__(self) -> str:
        return (
            f"VectorCollection(dim={self.dim}, live={len(self)},"
            f" capacity={self.capacity}, attributes={list(self.attribute_names)})"
        )
