"""Index-supported incremental search (§2.6(5), an open problem).

"Applications such as e-commerce rely on incremental search, where the
result set is seamlessly fetched in parts ... it is unclear how to
support this search within vector indexes."

This module implements the natural answer for graph indexes: a
**resumable best-first search**.  :class:`IncrementalSearcher` keeps the
traversal frontier alive between calls; each ``next_batch(k)`` pops the
next k nearest unreported nodes, expanding the graph only as far as
needed to certify them.  Compared to re-running search with growing k
(the workaround real systems use), the frontier is shared across pages,
so page i+1 costs only the *additional* expansion.

For non-graph indexes the same interface is provided by the fallback
:class:`RestartIncrementalSearcher` (re-query with doubled k), which is
also the baseline the E15 ablation bench compares against.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..hybrid.predicates import Predicate


class IncrementalSearcher:
    """Resumable best-first search over a graph index.

    Parameters
    ----------
    index:
        A graph index (GraphIndex subclass or HnswIndex).
    query:
        The query vector.
    predicate / collection:
        Optional hybrid filtering: only passing items are *reported*,
        but blocked nodes remain traversable (visit-first semantics).
    slack:
        Certification slack: a node is reported once the nearest
        frontier distance exceeds ``slack`` times its distance.  1.0
        reports greedily in frontier order (may locally mis-order on an
        approximate graph); larger values delay reporting for better
        ordering.
    """

    def __init__(
        self,
        index,
        query: np.ndarray,
        predicate: Predicate | None = None,
        collection=None,
        slack: float = 1.0,
        max_visits_per_batch: int | None = None,
    ):
        from ..hybrid.visitfirst import graph_entry_and_adjacency

        self.index = index
        self.query = np.asarray(query, dtype=np.float32)
        self.score = index.score
        self._neighbors_of, entries = graph_entry_and_adjacency(index)
        self._mask = (
            collection.predicate_mask(predicate)
            if predicate is not None and collection is not None
            else None
        )
        self.slack = slack
        self.max_visits_per_batch = max_visits_per_batch
        self.stats = SearchStats(plan_name="incremental")

        self._counter = itertools.count()
        self._visited: set[int] = set()
        # Frontier of unexpanded nodes and pool of expanded-but-unreported
        # nodes, both keyed by distance.
        self._frontier: list[tuple[float, int, int]] = []
        self._pool: list[tuple[float, int, int]] = []
        self._reported: set[int] = set()
        self.exhausted = False

        entry_arr = np.asarray(list(dict.fromkeys(int(e) for e in entries)))
        if entry_arr.size:
            dists = self.score.distances(self.query, index._vectors[entry_arr])
            self.stats.distance_computations += entry_arr.size
            for d, pos in zip(dists, entry_arr):
                heapq.heappush(
                    self._frontier, (float(d), next(self._counter), int(pos))
                )
                self._visited.add(int(pos))

    def _passes(self, pos: int) -> bool:
        if self._mask is None:
            return True
        self.stats.predicate_evaluations += 1
        ok = bool(self._mask[int(self.index._ids[pos])])
        if not ok:
            self.stats.predicate_rejections += 1
        return ok

    def _expand(self) -> bool:
        """Expand the nearest frontier node into the pool; False if done."""
        if not self._frontier:
            return False
        d, _, pos = heapq.heappop(self._frontier)
        self.stats.nodes_visited += 1
        if self._passes(pos):
            heapq.heappush(self._pool, (d, next(self._counter), pos))
        fresh = [
            int(nb) for nb in self._neighbors_of(pos) if int(nb) not in self._visited
        ]
        if fresh:
            self._visited.update(fresh)
            nd = self.score.distances(
                self.query, self.index._vectors[np.asarray(fresh)]
            )
            self.stats.distance_computations += len(fresh)
            for dist, nb in zip(nd, fresh):
                heapq.heappush(
                    self._frontier, (float(dist), next(self._counter), nb)
                )
        return True

    def next_batch(self, k: int) -> list[SearchHit]:
        """Fetch the next k results (ascending distance, no repeats).

        Returns fewer than k only when the reachable (and passing) part
        of the graph is exhausted.
        """
        out: list[SearchHit] = []
        budget = self.max_visits_per_batch
        visits = 0
        while len(out) < k:
            pool_head = self._pool[0][0] if self._pool else np.inf
            frontier_head = self._frontier[0][0] if self._frontier else np.inf
            # Report the pool head once no frontier node could beat it.
            if self._pool and pool_head * self.slack <= frontier_head:
                d, _, pos = heapq.heappop(self._pool)
                ext = int(self.index._ids[pos])
                if ext not in self._reported:
                    self._reported.add(ext)
                    out.append(SearchHit(ext, float(d)))
                continue
            if not self._expand():
                # Frontier empty: drain the pool, then we are exhausted.
                while self._pool and len(out) < k:
                    d, _, pos = heapq.heappop(self._pool)
                    ext = int(self.index._ids[pos])
                    if ext not in self._reported:
                        self._reported.add(ext)
                        out.append(SearchHit(ext, float(d)))
                if not self._pool:
                    self.exhausted = True
                break
            visits += 1
            if budget is not None and visits >= budget and not self._pool:
                break
        return out

    @property
    def results_reported(self) -> int:
        return len(self._reported)


class RestartIncrementalSearcher:
    """Baseline: paginate by re-running search with a growing k.

    Works on any index; each page re-pays the whole traversal — the
    cost E15 quantifies against :class:`IncrementalSearcher`.
    """

    def __init__(self, index, query: np.ndarray, **search_params):
        self.index = index
        self.query = query
        self.search_params = search_params
        self.stats = SearchStats(plan_name="incremental_restart")
        self._served = 0
        self.exhausted = False

    def next_batch(self, k: int) -> list[SearchHit]:
        total = self._served + k
        params = dict(self.search_params)
        # Widen the beam along with k so deep pages stay accurate.
        if "ef_search" not in params:
            params["ef_search"] = max(64, 2 * total)
        hits = self.index.search(self.query, total, stats=self.stats, **params)
        page = hits[self._served :]
        self._served += len(page)
        if len(hits) < total:
            self.exhausted = True
        return page
