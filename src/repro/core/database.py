"""The VDBMS facade: Figure 1 end to end.

:class:`VectorDatabase` wires the collection, score, indexes, planner,
selector, and executor into the query pipeline of Figure 1:

    query -> (embed) -> parser/validation -> plan enumeration ->
    plan selection -> executor -> index/table scans -> top-k

It exposes the "simple API" interface (§2.1 Query Interfaces); the SQL
extension lives in :mod:`repro.core.sql` on top of the same object.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..embed.embedders import EmbeddingFunction
from ..hybrid.partitioned import AttributePartitionedIndex
from ..hybrid.predicates import Predicate
from ..index.registry import make_index
from ..observability.instrument import DISABLED, Observability
from ..scores import get_score
from .collection import VectorCollection
from .errors import PlanningError, QueryError
from .executor import QueryExecutor
from .optimizer import (
    CostBasedSelector,
    FirstPlanSelector,
    PlanSelector,
    RuleBasedSelector,
)
from .planner import AutomaticPlanner, PlanCache, PredefinedPlanner, QueryPlan
from .query import BatchQuery, MultiVectorQuery, RangeQuery, SearchQuery
from .types import SearchResult, SearchStats, as_vector


def _make_selector(selector) -> PlanSelector:
    if isinstance(selector, PlanSelector):
        return selector
    table = {
        "cost": CostBasedSelector,
        "rule": RuleBasedSelector,
        "first": FirstPlanSelector,
    }
    try:
        return table[selector]()
    except KeyError:
        raise PlanningError(
            f"unknown selector {selector!r}; expected one of {sorted(table)}"
        ) from None


class VectorDatabase:
    """A complete single-node VDBMS.

    Parameters
    ----------
    dim:
        Vector dimensionality (ignored when ``embedder`` provides one).
    score:
        Similarity score name or :class:`~repro.scores.basic.Score`.
    planner:
        ``"auto"`` (enumerate all plans) or a
        :class:`~repro.core.planner.PredefinedPlanner`.
    selector:
        ``"cost"``, ``"rule"``, ``"first"`` or a
        :class:`~repro.core.optimizer.PlanSelector`.
    embedder:
        Optional embedding function enabling indirect manipulation
        (insert/search by entity instead of vector).
    observability:
        Optional :class:`~repro.observability.Observability` bundle
        (tracer + metrics + slow-query log).  Defaults to the shared
        no-op ``DISABLED`` singleton, which costs nothing on the query
        path.
    plan_cache:
        Prepared-query plan caching: ``True`` (default) uses an LRU
        :class:`~repro.core.planner.PlanCache` of 256 entries, an int
        sets the capacity, ``False`` disables caching.  Cached plans are
        keyed to the collection's mutation generation and the database's
        index epoch, so mutations and index DDL invalidate them
        structurally (see :meth:`plan`).
    """

    def __init__(
        self,
        dim: int | None = None,
        score: str | Any = "l2",
        planner: str | Any = "auto",
        selector: str | PlanSelector = "cost",
        embedder: EmbeddingFunction | None = None,
        observability: Observability | None = None,
        plan_cache: bool | int = True,
    ):
        if dim is None:
            if embedder is None:
                raise QueryError("either dim or an embedder is required")
            dim = embedder.dim
        self.score = get_score(score)
        self.collection = VectorCollection(dim)
        self.embedder = embedder
        if planner == "auto":
            self.planner = AutomaticPlanner()
        elif isinstance(planner, (AutomaticPlanner, PredefinedPlanner)):
            self.planner = planner
        else:
            raise PlanningError(f"unknown planner {planner!r}")
        self.selector = _make_selector(selector)
        self.observability = observability if observability is not None else DISABLED
        self.indexes: dict[str, Any] = {}
        self.partitioned: dict[str, AttributePartitionedIndex] = {}
        self._executor = QueryExecutor(
            self.collection, self.score, self.indexes, self.partitioned,
            observability=self.observability,
        )
        self._stale = False
        if plan_cache is True:
            self.plan_cache: PlanCache | None = PlanCache()
        elif plan_cache is False:
            self.plan_cache = None
        else:
            self.plan_cache = PlanCache(capacity=int(plan_cache))
        # Bumped by index DDL and rebuilds; part of every plan-cache key
        # so schema changes invalidate cached plans structurally.
        self._plan_epoch = 0

    def set_observability(self, observability: Observability | None) -> None:
        """Swap the observability bundle (``None`` -> disabled no-op)."""
        self.observability = observability if observability is not None else DISABLED
        self._executor.observability = self.observability

    # ------------------------------------------------------------------- DML

    @property
    def dim(self) -> int:
        return self.collection.dim

    def _vectorize(self, vector=None, entity=None) -> np.ndarray:
        if (vector is None) == (entity is None):
            raise QueryError("provide exactly one of vector= or entity=")
        if entity is not None:
            if self.embedder is None:
                raise QueryError("no embedder configured for entity input")
            vector = self.embedder(entity)
        return as_vector(vector, self.dim)

    def insert(
        self,
        vector: np.ndarray | None = None,
        attributes: Mapping[str, Any] | None = None,
        entity: Any = None,
    ) -> int:
        """Insert one item by vector (direct) or entity (indirect)."""
        item_id = self.collection.insert(
            self._vectorize(vector, entity), attributes
        )
        self._stale = bool(self.indexes)
        return item_id

    def insert_many(
        self,
        vectors: np.ndarray | None = None,
        attributes: Sequence[Mapping[str, Any]] | None = None,
        entities: Sequence[Any] | None = None,
    ) -> list[int]:
        if entities is not None:
            if self.embedder is None:
                raise QueryError("no embedder configured for entity input")
            vectors = np.vstack([self.embedder(e) for e in entities])
        ids = self.collection.insert_many(vectors, attributes)
        self._stale = bool(self.indexes)
        return ids

    def delete(self, item_id: int) -> None:
        """Tombstone an item; masks keep it out of every plan's results."""
        self.collection.delete(item_id)

    def get(self, item_id: int) -> tuple[np.ndarray, dict[str, Any]]:
        return self.collection.vector(item_id), self.collection.attributes(item_id)

    def __len__(self) -> int:
        return len(self.collection)

    # ---------------------------------------------------------------- indexes

    def create_index(self, name: str, index_type: str, **kwargs: Any) -> Any:
        """Create and build an index over the current collection."""
        if name in self.indexes:
            raise PlanningError(f"index {name!r} already exists")
        kwargs.setdefault("score", self.score)
        index = make_index(index_type, **kwargs)
        live = np.flatnonzero(self.collection.alive)
        if live.size:
            index.build(self.collection.vectors[live], ids=live.astype(np.int64))
        self.indexes[name] = index
        self._stale = False
        self._plan_epoch += 1
        return index

    def create_partitioned_index(
        self, name: str, index_type: str, attribute: str, **kwargs: Any
    ) -> AttributePartitionedIndex:
        """Offline blocking: one sub-index per value of ``attribute``."""
        kwargs.setdefault("score", self.score)
        part = AttributePartitionedIndex(
            lambda: make_index(index_type, **kwargs), attribute
        )
        part.build(self.collection)
        self.partitioned[name] = part
        self._plan_epoch += 1
        return part

    def drop_index(self, name: str) -> None:
        if self.indexes.pop(name, None) is None and self.partitioned.pop(name, None) is None:
            raise PlanningError(f"no index named {name!r}")
        self._plan_epoch += 1

    def rebuild_indexes(self) -> None:
        """Rebuild every index over the live collection (bulk update apply)."""
        live = np.flatnonzero(self.collection.alive)
        for index in self.indexes.values():
            if live.size:
                index.build(self.collection.vectors[live], ids=live.astype(np.int64))
        for part in self.partitioned.values():
            part.build(self.collection)
        self._stale = False
        self._plan_epoch += 1

    @property
    def has_stale_indexes(self) -> bool:
        """True when inserts since the last (re)build are invisible to
        index scans (brute-force plans always see everything)."""
        return self._stale

    def health(self):
        """Operational health report (see ``docs/observability.md``).

        Combines the observability bundle's view — streaming latency
        quantiles, audited recall, SLO status, and any active burn-rate
        alerts — with database-level facts (size, index staleness).
        ``report.ok`` is False exactly when a burn-rate alert is
        currently firing; ``report.render()`` is the human view and
        ``report.to_dict()`` the machine one.  Works (trivially) on a
        database with observability disabled.
        """
        report = self.observability.health()
        report.database = {
            "items": len(self.collection),
            "indexes": len(self.indexes),
            "partitioned": len(self.partitioned),
            "stale_indexes": self._stale,
        }
        if self.plan_cache is not None:
            info = self.plan_cache.info()
            probes = info["hits"] + info["misses"]
            report.database["plan_cache"] = {
                **info,
                "hit_ratio": info["hits"] / probes if probes else 0.0,
            }
        slow_log = self.observability.slow_log
        if slow_log is not None:
            report.database["slow_queries"] = slow_log.recorded
        return report

    # ----------------------------------------------------------------- plans

    def _plan_cache_key(self, query: SearchQuery):
        """Hashable identity of a planning decision, or None.

        Embeds everything :meth:`plan` depends on: the collection
        snapshot (mutation generation), the index set (plan epoch plus
        staleness), and the query shape (dim, k, c, predicate, params).
        Predicates are frozen dataclasses and hash structurally; queries
        carrying unhashable params are simply not cached.
        """
        try:
            key = (
                self.collection.generation,
                self._plan_epoch,
                self._stale,
                query.vector.shape[0],
                query.k,
                query.c,
                query.predicate,
                tuple(sorted(query.params.items())),
            )
            hash(key)  # unhashable param *values* only surface here
            return key
        except TypeError:
            return None

    def plan(
        self, query: SearchQuery, *, parent=None
    ) -> tuple[QueryPlan, list[QueryPlan]]:
        """Enumerate and select; returns (chosen, all candidates).

        With a :class:`~repro.core.planner.PlanCache` configured, a
        repeat query (same shape against an unchanged database) returns
        the cached decision without enumerating, estimating selectivity,
        or opening a planning span; hit/miss counts are exported as
        ``vdbms_plan_cache_{hits,misses}_total`` when observability is
        enabled.  ``parent`` attaches the planning span to a caller's
        span (the serving front door passes its batch span so planning
        appears inside the request journey's trace).
        """
        obs = self.observability
        cache = self.plan_cache
        key = None if cache is None else self._plan_cache_key(query)
        if key is not None:
            entry = cache.get(key)
            if entry is not None:
                if obs.enabled:
                    obs.metrics.counter(
                        "vdbms_plan_cache_hits_total",
                        "Plans served from the prepared-query cache.",
                    ).inc()
                chosen, candidates = entry
                return chosen, list(candidates)
            if obs.enabled:
                obs.metrics.counter(
                    "vdbms_plan_cache_misses_total",
                    "Plan-cache probes that fell through to the planner.",
                ).inc()
        with obs.tracer.start_span(
            "plan", parent=parent, hybrid=query.is_hybrid
        ) as span:
            usable = {} if self._stale else self.indexes
            plans = self.planner.enumerate(
                query.is_hybrid, usable, self.partitioned, query.predicate
            )
            selectivity = self.collection.selectivity(query.predicate)
            chosen = self.selector.select(
                plans, usable, len(self.collection), query.k, selectivity,
                span=span if obs.enabled else None,
            )
            span.set(
                chosen=chosen.describe(),
                candidates=len(plans),
                selectivity=round(float(selectivity), 6),
            )
        if obs.enabled:
            obs.metrics.counter(
                "vdbms_plans_selected_total",
                "Plans chosen by the selector, by strategy.",
            ).inc(strategy=chosen.strategy)
        if key is not None:
            cache.put(key, chosen, plans)
        return chosen, plans

    def explain(self, query: SearchQuery) -> str:
        """Human-readable plan choice, like EXPLAIN."""
        chosen, plans = self.plan(query)
        lines = [f"chosen: {chosen.describe()}", "candidates:"]
        lines.extend(f"  - {p.describe()}" for p in plans)
        return "\n".join(lines)

    def explain_analyze(
        self,
        vector: np.ndarray | None = None,
        k: int = 10,
        c: float = 0.0,
        predicate: Predicate | None = None,
        entity: Any = None,
        plan: QueryPlan | None = None,
        **params: Any,
    ) -> QueryProfile:
        """Run one (c, k)-search under a private tracer and profile it.

        Returns a :class:`~repro.observability.QueryProfile` whose
        operator tree carries per-span :class:`SearchStats` deltas; the
        *self* deltas partition the query's counters exactly
        (``profile.attribution_residual()`` is all zeros).  The caller's
        observability configuration is untouched — profiling swaps in a
        tracing-only bundle for the duration of this one query.
        """
        # Lazy: the profiler is not part of the no-op-able observability
        # surface, and core must stay importable/fast without it (VDB202).
        from ..observability.profiler import QueryProfile, build_profile_tree

        query = SearchQuery(
            self._vectorize(vector, entity), k, c=c, predicate=predicate,
            params=params,
        )
        profiled = Observability(metrics=False)
        previous = self.observability
        self.set_observability(profiled)
        cache = self.plan_cache
        try:
            candidates: list[QueryPlan] = []
            if plan is not None:
                plan_source = "explicit"
            elif cache is None:
                plan_source = "disabled"
                plan, candidates = self.plan(query)
            else:
                hits_before = cache.hits
                plan, candidates = self.plan(query)
                plan_source = "hit" if cache.hits > hits_before else "miss"
            result = self._executor.execute(query, plan)
        finally:
            self.set_observability(previous)
        roots = build_profile_tree(profiled.tracer.spans)
        query_root = next((r for r in roots if r.name == "query"), roots[-1])
        plan_cache_state: dict[str, Any] = {"source": plan_source}
        if cache is not None:
            plan_cache_state.update(cache.info())
        return QueryProfile(
            result=result,
            root=query_root,
            plan=plan.describe(),
            candidates=[p.describe() for p in candidates],
            plan_cache=plan_cache_state,
        )

    # ---------------------------------------------------------------- queries

    def search(
        self,
        vector: np.ndarray | None = None,
        k: int = 10,
        c: float = 0.0,
        predicate: Predicate | None = None,
        entity: Any = None,
        plan: QueryPlan | None = None,
        **params: Any,
    ) -> SearchResult:
        """(c, k)-search; the predicate makes it hybrid."""
        query = SearchQuery(
            self._vectorize(vector, entity), k, c=c, predicate=predicate,
            params=params,
        )
        chosen = plan if plan is not None else self.plan(query)[0]
        return self._executor.execute(query, chosen)

    def range_search(
        self,
        vector: np.ndarray | None = None,
        radius: float = 1.0,
        predicate: Predicate | None = None,
        entity: Any = None,
        plan: QueryPlan | None = None,
        **params: Any,
    ) -> SearchResult:
        query = RangeQuery(
            self._vectorize(vector, entity), radius, predicate=predicate,
            params=params,
        )
        if plan is None:
            proxy = SearchQuery(query.vector, 1, predicate=predicate)
            plan = self.plan(proxy)[0]
        return self._executor.execute_range(query, plan)

    def batch_search(
        self,
        vectors: np.ndarray,
        k: int = 10,
        predicate: Predicate | None = None,
        plan: QueryPlan | None = None,
        **params: Any,
    ) -> list[SearchResult]:
        batch = BatchQuery(vectors, k, predicate=predicate, params=params)
        if plan is None:
            proxy = SearchQuery(batch.vectors[0], k, predicate=predicate)
            plan = self.plan(proxy)[0]
        return self._executor.execute_batch(batch, plan)

    def incremental_search(
        self,
        vector: np.ndarray | None = None,
        predicate: Predicate | None = None,
        entity: Any = None,
        index: str | None = None,
        **params: Any,
    ):
        """Open a resumable search cursor (§2.6(5)).

        Requires a graph index; pass ``index`` to pick one, else the
        first graph index is used.  Returns an
        :class:`~repro.core.incremental.IncrementalSearcher` whose
        ``next_batch(k)`` pages through results without re-traversal.
        """
        from .incremental import IncrementalSearcher

        query = self._vectorize(vector, entity)
        if index is not None:
            chosen = self.indexes.get(index)
            if chosen is None:
                raise PlanningError(f"no index named {index!r}")
        else:
            chosen = next(
                (idx for idx in self.indexes.values()
                 if getattr(idx, "family", "") == "graph"),
                None,
            )
            if chosen is None:
                raise PlanningError(
                    "incremental search needs a graph index; create one"
                    " (e.g. create_index('g', 'hnsw'))"
                )
        return IncrementalSearcher(
            chosen, query, predicate=predicate, collection=self.collection,
            **params,
        )

    def multi_score_search(
        self,
        vector: np.ndarray | None = None,
        k: int = 10,
        scores: Sequence[str] | None = None,
        entity: Any = None,
        **params: Any,
    ) -> dict[str, SearchResult]:
        """Answer the same query under several scores at once (§2.6(1)).

        EuclidesDB's pragmatic answer to the open score-selection
        problem: return per-score result sets and let the caller decide.
        Runs exact (brute-force) scans so the comparison reflects the
        scores, not index artifacts.
        """
        import time

        from ..scores import get_score
        from .operators import TableScan

        query = self._vectorize(vector, entity)
        names = list(scores) if scores is not None else ["l2", "cosine", "ip"]
        live = np.flatnonzero(self.collection.alive)
        out: dict[str, SearchResult] = {}
        for name in names:
            score = get_score(name)
            stats = SearchStats(plan_name=f"multi_score:{name}")
            start = time.perf_counter()
            scan = TableScan(
                self.collection.vectors[live], live.astype(np.int64), score
            )
            hits = scan.run(query, k, stats=stats)
            stats.elapsed_seconds = time.perf_counter() - start
            out[name] = SearchResult(hits=hits, stats=stats)
        return out

    def multi_vector_search(
        self,
        vectors: np.ndarray,
        k: int = 10,
        aggregator: Any = "mean",
        weights: np.ndarray | None = None,
        predicate: Predicate | None = None,
        plan: QueryPlan | None = None,
        **params: Any,
    ) -> SearchResult:
        query = MultiVectorQuery(
            vectors, k, aggregator=aggregator, weights=weights,
            predicate=predicate, params=params,
        )
        if plan is None:
            proxy = SearchQuery(query.vectors[0], k, predicate=predicate)
            plan = self.plan(proxy)[0]
        return self._executor.execute_multivector(query, plan)

    def __repr__(self) -> str:
        return (
            f"VectorDatabase(dim={self.dim}, items={len(self)},"
            f" score={self.score.name}, indexes={sorted(self.indexes)})"
        )
