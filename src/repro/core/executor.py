"""Query execution (§2.3): run a selected plan against the storage.

The executor is the only component that touches indexes, the collection,
and the hybrid operators together; everything above it (planner,
selectors, the :class:`VectorDatabase` facade) deals in plan objects.

Batched execution exploits the §2.3 observations: the predicate bitmask
is computed once per batch, and the brute-force path uses one pairwise
kernel for the whole batch (:func:`~repro.core.operators.batched_table_scan`).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from ..hybrid.blockfirst import blocked_index_scan, prefilter_scan
from ..hybrid.postfilter import adaptive_postfilter_scan, postfilter_scan
from ..hybrid.visitfirst import visit_first_scan
from ..observability.instrument import DISABLED, Observability
from ..observability.tracing import NOOP_SPAN
from ..scores import AggregateScore, Score
from .collection import VectorCollection
from .errors import PlanningError
from .operators import TableScan, batched_table_scan
from .planner import QueryPlan
from .query import BatchQuery, MultiVectorQuery, RangeQuery, SearchQuery
from .types import SearchHit, SearchResult, SearchStats, topk_from_arrays


class QueryExecutor:
    """Executes plans over one collection and its indexes.

    When ``observability`` is enabled, every execute path opens a root
    span, each operator runs under a child span carrying its
    :class:`SearchStats` delta, and per-query metrics / the slow-query
    log are recorded.  The default is the shared no-op bundle: the
    disabled path costs a handful of no-op calls per *query* (never per
    node or per candidate), which the perf suite verifies is unmeasurable.
    """

    def __init__(
        self,
        collection: VectorCollection,
        score: Score,
        indexes: dict[str, Any],
        partitioned: dict[str, Any] | None = None,
        observability: Observability | None = None,
    ):
        self.collection = collection
        self.score = score
        self.indexes = indexes
        # Keep the caller's dict object: the database registers partitioned
        # indexes after constructing the executor.
        self.partitioned = partitioned if partitioned is not None else {}
        self.observability = observability if observability is not None else DISABLED

    # -------------------------------------------------------------- plumbing

    def _index_for(self, plan: QueryPlan):
        if plan.index_name is None:
            raise PlanningError(f"plan {plan.strategy!r} needs an index")
        try:
            return self.indexes[plan.index_name]
        except KeyError:
            raise PlanningError(
                f"plan references unknown index {plan.index_name!r}"
            ) from None

    def _live_table_scan(self) -> TableScan:
        live = np.flatnonzero(self.collection.alive)
        return TableScan(
            self.collection.vectors[live],
            live.astype(np.int64, copy=False),
            self.score,
        )

    # ------------------------------------------------------------- execution

    def execute(self, query: SearchQuery, plan: QueryPlan) -> SearchResult:
        """Run one (c,k)-search under the given plan."""
        obs = self.observability
        stats = SearchStats(plan_name=plan.describe())
        root = obs.tracer.start_span(
            "query", kind="search", strategy=plan.strategy, plan=plan.describe(),
            k=query.k, hybrid=query.is_hybrid,
        ).attach_stats(stats)
        start = time.perf_counter()
        with root:
            hits = self._dispatch(query, plan, stats, span=root)
            root.set(hits=len(hits))
        stats.elapsed_seconds = time.perf_counter() - start
        if obs.enabled:
            obs.record_query("search", plan.strategy, stats)
            # The audit hook sits strictly after the query's stats and
            # metrics are finalized: an audited query's SearchStats,
            # latency histogram sample, and sketch sample are identical
            # to an unaudited one's, and all audit work lands in the
            # dedicated audit_* namespace.
            if obs.auditor is not None:
                obs.auditor.consider(
                    query.vector, query.k, hits,
                    collection=self.collection, score=self.score,
                    predicate=query.predicate, strategy=plan.strategy,
                    index=plan.index_name,
                )
        return SearchResult(hits=hits, stats=stats)

    def _dispatch(
        self,
        query: SearchQuery,
        plan: QueryPlan,
        stats: SearchStats,
        span: Any = NOOP_SPAN,
    ) -> list[SearchHit]:
        params = {**plan.params, **query.params}
        strategy = plan.strategy
        with span.child(
            f"op:{strategy}", index=plan.index_name
        ).attach_stats(stats) as op:
            if strategy == "brute_force":
                mask = None if query.predicate is None else self.collection.predicate_mask(
                    query.predicate
                )
                if mask is None:
                    mask = self.collection.alive
                return self._live_table_scan().run(
                    query.vector, query.k, mask=mask, stats=stats
                )
            if strategy == "index_scan":
                index = self._index_for(plan)
                # Deleted rows must never surface even on a plain scan.
                mask = self.collection.alive if not self.collection.alive.all() else None
                return index.search(
                    query.vector, query.k, allowed=mask, stats=stats, span=op,
                    **params,
                )
            if strategy == "pre_filter":
                return prefilter_scan(
                    self.collection, query.vector, query.k, query.predicate,
                    self.score, stats=stats, span=op,
                )
            if strategy == "block_first":
                return blocked_index_scan(
                    self._index_for(plan), self.collection, query.vector, query.k,
                    query.predicate, stats=stats, span=op, **params,
                )
            if strategy == "post_filter":
                if plan.oversample is None:
                    result = adaptive_postfilter_scan(
                        self._index_for(plan), self.collection, query.vector,
                        query.k, query.predicate, stats=stats, span=op, **params,
                    )
                    return result.hits
                return postfilter_scan(
                    self._index_for(plan), self.collection, query.vector, query.k,
                    query.predicate, oversample=plan.oversample, stats=stats,
                    span=op, **params,
                )
            if strategy == "visit_first":
                return visit_first_scan(
                    self._index_for(plan), self.collection, query.vector, query.k,
                    query.predicate, stats=stats, span=op, **params,
                )
            if strategy == "partition":
                part = self.partitioned.get(plan.index_name)
                if part is None:
                    raise PlanningError(
                        f"unknown partitioned index {plan.index_name!r}"
                    )
                return part.search(
                    query.vector, query.k, query.predicate, stats=stats, span=op,
                    **params,
                )
            raise PlanningError(f"executor cannot run strategy {strategy!r}")

    # ----------------------------------------------------------- range query

    def execute_range(self, query: RangeQuery, plan: QueryPlan) -> SearchResult:
        """Range queries run on the plan's index (or exactly, brute force)."""
        obs = self.observability
        stats = SearchStats(plan_name=f"range:{plan.describe()}")
        root = obs.tracer.start_span(
            "query", kind="range", strategy=plan.strategy, plan=plan.describe(),
            radius=query.radius,
        ).attach_stats(stats)
        start = time.perf_counter()
        with root:
            mask = self.collection.predicate_mask(query.predicate) if (
                query.predicate is not None
            ) else (None if self.collection.alive.all() else self.collection.alive)
            if plan.strategy in ("brute_force", "pre_filter"):
                from ..index.flat import FlatIndex

                with root.child("op:exact_range").attach_stats(stats):
                    live = np.flatnonzero(self.collection.alive)
                    flat = FlatIndex(self.score)
                    flat.build(
                        self.collection.vectors[live],
                        ids=live.astype(np.int64, copy=False),
                    )
                    hits = flat.range_search(
                        query.vector, query.radius, allowed=mask, stats=stats
                    )
            else:
                index = self._index_for(plan)
                with root.child(
                    "op:index_range", index=plan.index_name
                ).attach_stats(stats):
                    hits = index.range_search(
                        query.vector, query.radius, allowed=mask, stats=stats,
                        **plan.params,
                    )
            root.set(hits=len(hits))
        stats.elapsed_seconds = time.perf_counter() - start
        if obs.enabled:
            obs.record_query("range", plan.strategy, stats)
        return SearchResult(hits=hits, stats=stats)

    # ---------------------------------------------------------------- batch

    def execute_batch(self, batch: BatchQuery, plan: QueryPlan) -> list[SearchResult]:
        """Run a batch, sharing bitmask construction (and the distance
        kernel on brute-force plans) across all member queries."""
        obs = self.observability
        stats_template = plan.describe()
        root = obs.tracer.start_span(
            "batch", kind="batch", strategy=plan.strategy, plan=stats_template,
            size=len(batch), k=batch.k,
        )
        if plan.strategy in ("brute_force", "pre_filter"):
            shared = SearchStats(plan_name=f"batch:{stats_template}")
            root.attach_stats(shared)
            start = time.perf_counter()
            with root:
                with root.child(
                    "op:batched_table_scan", size=len(batch)
                ).attach_stats(shared):
                    mask = self.collection.predicate_mask(batch.predicate)
                    live = np.flatnonzero(mask)
                    per_query = batched_table_scan(
                        batch.vectors,
                        self.collection.vectors[live],
                        live.astype(np.int64, copy=False),
                        self.score,
                        batch.k,
                        stats=shared,
                    )
            shared.elapsed_seconds = time.perf_counter() - start
            # The shared stats object stands for the whole batch: keep the
            # merged provenance so per-query averages stay computable.
            shared.merged_count = len(batch)
            if obs.enabled:
                obs.record_query("batch", plan.strategy, shared)
            return [SearchResult(hits=h, stats=shared) for h in per_query]
        # Index plans: share the bitmask, run member scans individually.
        mask_cache: np.ndarray | None = None
        results = []
        with root:
            for query in batch.queries():
                stats = SearchStats(plan_name=f"batch:{stats_template}")
                member = root.child("query", k=batch.k).attach_stats(stats)
                start = time.perf_counter()
                with member:
                    if batch.predicate is not None and plan.strategy == "block_first":
                        if mask_cache is None:
                            mask_cache = self.collection.predicate_mask(
                                batch.predicate
                            )
                        index = self._index_for(plan)
                        hits = index.search(
                            query.vector, batch.k, allowed=mask_cache, stats=stats,
                            span=member, **plan.params,
                        )
                    else:
                        hits = self._dispatch(query, plan, stats, span=member)
                stats.elapsed_seconds = time.perf_counter() - start
                if obs.enabled:
                    obs.record_query("batch", plan.strategy, stats)
                results.append(SearchResult(hits=hits, stats=stats))
        return results

    # ----------------------------------------------------------- multivector

    def execute_multivector(
        self, query: MultiVectorQuery, plan: QueryPlan
    ) -> SearchResult:
        """Aggregate-score execution of a multi-vector query (§2.1).

        Brute-force plans compute the exact aggregate over all entities;
        index plans use the standard decomposition: per-query-vector
        index scans gather a candidate union, which is re-ranked with
        the exact aggregate score.
        """
        from ..scores.aggregate import WeightedSumAggregator

        obs = self.observability
        stats = SearchStats(plan_name=f"multivector:{plan.describe()}")
        root = obs.tracer.start_span(
            "query", kind="multivector", strategy=plan.strategy,
            plan=plan.describe(), vectors=query.vectors.shape[0], k=query.k,
        ).attach_stats(stats)
        start = time.perf_counter()
        with root:
            aggregator = (
                WeightedSumAggregator(query.weights)
                if query.weights is not None
                else query.aggregator
            )
            agg = AggregateScore(self.score, aggregator)
            mask = self.collection.predicate_mask(query.predicate)

            with root.child(
                "op:gather_candidates", index=plan.index_name
            ).attach_stats(stats) as gather:
                if plan.strategy in ("brute_force", "pre_filter") or (
                    plan.index_name is None
                ):
                    candidates = np.flatnonzero(mask)
                else:
                    index = self._index_for(plan)
                    fetch = max(query.k * 4, 32)
                    found: set[int] = set()
                    for vector in query.vectors:
                        for hit in index.search(
                            vector, fetch, allowed=mask, stats=stats, span=gather,
                            **plan.params,
                        ):
                            found.add(hit.id)
                    candidates = np.fromiter(found, dtype=np.int64, count=len(found))
                gather.set(candidates=int(candidates.size))
            if candidates.size == 0:
                stats.elapsed_seconds = time.perf_counter() - start
                if obs.enabled:
                    obs.record_query("multivector", plan.strategy, stats)
                return SearchResult(hits=[], stats=stats)
            with root.child(
                "op:rerank", candidates=int(candidates.size)
            ).attach_stats(stats):
                block = self.score.pairwise(
                    query.vectors, self.collection.vectors[candidates]
                )
                stats.distance_computations += block.size
                distances = self._aggregate_columns(agg, query, block)
                hits = topk_from_arrays(candidates, distances, query.k)
                stats.candidates_examined += candidates.size
            root.set(hits=len(hits))
        stats.elapsed_seconds = time.perf_counter() - start
        if obs.enabled:
            obs.record_query("multivector", plan.strategy, stats)
        return SearchResult(hits=hits, stats=stats)

    @staticmethod
    def _aggregate_columns(agg: AggregateScore, query, block: np.ndarray) -> np.ndarray:
        """Aggregate a (num_query_vectors, num_entities) distance block.

        Single-vector entities make the standard aggregators pure axis-0
        reductions, so vectorize those; arbitrary callables fall back to
        the generic per-entity path.
        """
        from ..scores.aggregate import (
            WeightedSumAggregator,
            max_aggregator,
            mean_aggregator,
            min_aggregator,
            sum_of_min_aggregator,
        )

        reducer = agg.aggregator
        if isinstance(reducer, WeightedSumAggregator):
            return reducer.weights @ block
        vectorized = {
            mean_aggregator: lambda b: b.mean(axis=0),
            min_aggregator: lambda b: b.min(axis=0),
            max_aggregator: lambda b: b.max(axis=0),
            sum_of_min_aggregator: lambda b: b.sum(axis=0),
        }.get(reducer)
        if vectorized is not None:
            return vectorized(block)
        return np.array([reducer(block[:, [j]]) for j in range(block.shape[1])])
