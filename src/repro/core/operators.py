"""Basic physical operators (§2.1 "Basic Operators", Figure 1).

Figure 1's query-executor boxes: similarity projection, sort/top-k,
table scan, index scan, and hybrid scan.  These are deliberately plain
functions/classes over numpy arrays — the executor composes them into
plans, and the cost model charges them per the counters they report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..scores import Score
from .types import SearchHit, SearchStats, topk_from_arrays


def similarity_projection(
    query: np.ndarray,
    vectors: np.ndarray,
    score: Score,
    stats: SearchStats | None = None,
) -> np.ndarray:
    """Project each vector onto its distance to the query (§2.1(4))."""
    distances = score.distances(query, vectors)
    if stats is not None:
        stats.distance_computations += vectors.shape[0]
    return distances


def top_k(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> list[SearchHit]:
    """Sort/Top-K operator over a projected candidate stream."""
    return topk_from_arrays(ids, distances, k)


@dataclass
class TableScan:
    """Full scan + similarity projection + top-k (the brute-force plan).

    ``mask`` restricts the scan (pre-filtering); this is the operator a
    relational system uses when no vector index applies (§2.4).
    """

    vectors: np.ndarray
    ids: np.ndarray
    score: Score

    def run(
        self,
        query: np.ndarray,
        k: int,
        mask: np.ndarray | None = None,
        stats: SearchStats | None = None,
    ) -> list[SearchHit]:
        stats = stats if stats is not None else SearchStats()
        if mask is not None:
            keep = mask[self.ids]
            stats.predicate_evaluations += self.ids.shape[0]
            stats.predicate_rejections += int(np.count_nonzero(~keep))
            vectors = self.vectors[keep]
            ids = self.ids[keep]
        else:
            vectors = self.vectors
            ids = self.ids
        if vectors.shape[0] == 0:
            return []
        distances = similarity_projection(query, vectors, self.score, stats)
        stats.candidates_examined += vectors.shape[0]
        return top_k(ids, distances, k)


@dataclass
class IndexScan:
    """Vector index scan: delegates to a built index's search."""

    index: Any  # VectorIndex; typed loosely to avoid an import cycle

    def run(
        self,
        query: np.ndarray,
        k: int,
        mask: np.ndarray | None = None,
        stats: SearchStats | None = None,
        **params: Any,
    ) -> list[SearchHit]:
        return self.index.search(query, k, allowed=mask, stats=stats, **params)


def batched_table_scan(
    queries: np.ndarray,
    vectors: np.ndarray,
    ids: np.ndarray,
    score: Score,
    k: int,
    mask: np.ndarray | None = None,
    stats: SearchStats | None = None,
) -> list[list[SearchHit]]:
    """Answer a whole query batch with one pairwise-distance kernel.

    This is the §2.3 batched-execution idea in its simplest form: the
    (b, n) distance matrix amortizes memory traffic over the batch,
    exactly how GPU/SIMD batch kernels win [50, 79].
    """
    stats = stats if stats is not None else SearchStats()
    if mask is not None:
        keep = mask[ids]
        stats.predicate_evaluations += ids.shape[0] * queries.shape[0]
        stats.predicate_rejections += int(np.count_nonzero(~keep)) * queries.shape[0]
        vectors = vectors[keep]
        ids = ids[keep]
    if vectors.shape[0] == 0:
        return [[] for _ in range(queries.shape[0])]
    dmat = score.pairwise(queries, vectors)
    stats.distance_computations += dmat.size
    stats.candidates_examined += dmat.size
    return [top_k(ids, row, k) for row in dmat]
