"""Core of the VDBMS: collection, queries, planner, optimizer, executor."""

from .batched import batched_graph_search
from .collection import VectorCollection
from .cost import CostModel, CostWeights, EmpiricalCostModel, WorkEstimate
from .database import VectorDatabase
from .errors import (
    AllReplicasDownError,
    CollectionError,
    DeadlineExceededError,
    DimensionMismatchError,
    IndexNotBuiltError,
    PageReadError,
    PartialResultWarning,
    PlanningError,
    PredicateError,
    QueryError,
    ReplicaUnavailableError,
    SqlError,
    StorageError,
    UnknownIndexError,
    UnknownScoreError,
    VdbmsError,
)
from .executor import QueryExecutor
from .incremental import IncrementalSearcher, RestartIncrementalSearcher
from .multivector import MultiVectorEntityCollection
from .optimizer import (
    CostBasedSelector,
    FirstPlanSelector,
    PlanSelector,
    RuleBasedSelector,
)
from .planner import AutomaticPlanner, PlanCache, PredefinedPlanner, QueryPlan
from .query import BatchQuery, MultiVectorQuery, RangeQuery, SearchQuery, satisfies_ck
from .sql import ParsedQuery, execute_sql, parse_sql
from .types import SearchHit, SearchResult, SearchStats
from .updates import BufferedVectorIndex

__all__ = [
    "AllReplicasDownError",
    "AutomaticPlanner",
    "BatchQuery",
    "BufferedVectorIndex",
    "CollectionError",
    "DeadlineExceededError",
    "PageReadError",
    "PartialResultWarning",
    "ReplicaUnavailableError",
    "CostBasedSelector",
    "CostModel",
    "CostWeights",
    "DimensionMismatchError",
    "EmpiricalCostModel",
    "FirstPlanSelector",
    "IncrementalSearcher",
    "IndexNotBuiltError",
    "MultiVectorEntityCollection",
    "RestartIncrementalSearcher",
    "batched_graph_search",
    "MultiVectorQuery",
    "ParsedQuery",
    "PlanSelector",
    "PlanningError",
    "PlanCache",
    "PredefinedPlanner",
    "PredicateError",
    "QueryError",
    "QueryExecutor",
    "QueryPlan",
    "RangeQuery",
    "RuleBasedSelector",
    "SearchHit",
    "SearchQuery",
    "SearchResult",
    "SearchStats",
    "SqlError",
    "StorageError",
    "UnknownIndexError",
    "UnknownScoreError",
    "VdbmsError",
    "VectorCollection",
    "VectorDatabase",
    "WorkEstimate",
    "execute_sql",
    "parse_sql",
    "satisfies_ck",
]
