"""Exception hierarchy for the VDBMS.

Every error raised by the library derives from :class:`VdbmsError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class VdbmsError(Exception):
    """Base class for all errors raised by this library."""


class DimensionMismatchError(VdbmsError):
    """A vector's dimensionality does not match the collection's."""

    def __init__(self, expected: int, actual: int):
        super().__init__(f"expected dimension {expected}, got {actual}")
        self.expected = expected
        self.actual = actual


class UnknownScoreError(VdbmsError):
    """A similarity score name was not found in the score registry."""


class UnknownIndexError(VdbmsError):
    """An index name was not found in the index registry."""


class IndexNotBuiltError(VdbmsError):
    """A search was attempted on an index that has not been built."""


class CollectionError(VdbmsError):
    """Invalid operation on a collection (missing id, bad attribute, ...)."""


class QueryError(VdbmsError):
    """Malformed query specification."""


class PredicateError(VdbmsError):
    """Malformed predicate expression or reference to a missing attribute."""


class PlanningError(VdbmsError):
    """No executable plan could be produced for a query."""


class StorageError(VdbmsError):
    """Error in the storage layer (bad page id, closed store, ...)."""


class SqlError(VdbmsError):
    """Error parsing or executing the SQL-like query language."""
