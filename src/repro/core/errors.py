"""Exception hierarchy for the VDBMS.

Every error raised by the library derives from :class:`VdbmsError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class VdbmsError(Exception):
    """Base class for all errors raised by this library."""


class DimensionMismatchError(VdbmsError):
    """A vector's dimensionality does not match the collection's."""

    def __init__(self, expected: int, actual: int):
        super().__init__(f"expected dimension {expected}, got {actual}")
        self.expected = expected
        self.actual = actual


class UnknownScoreError(VdbmsError):
    """A similarity score name was not found in the score registry."""


class UnknownIndexError(VdbmsError):
    """An index name was not found in the index registry."""


class IndexNotBuiltError(VdbmsError):
    """A search was attempted on an index that has not been built."""


class CollectionError(VdbmsError):
    """Invalid operation on a collection (missing id, bad attribute, ...)."""


class QueryError(VdbmsError):
    """Malformed query specification."""


class PredicateError(VdbmsError):
    """Malformed predicate expression or reference to a missing attribute."""


class PlanningError(VdbmsError):
    """No executable plan could be produced for a query."""


class StorageError(VdbmsError):
    """Error in the storage layer (bad page id, closed store, ...)."""


class PageReadError(StorageError):
    """A disk page read failed (injected I/O fault or corrupt page)."""

    def __init__(self, page_id: int, message: str | None = None):
        super().__init__(message or f"I/O error reading page {page_id}")
        self.page_id = page_id


class SqlError(VdbmsError):
    """Error parsing or executing the SQL-like query language."""


class ReplicaUnavailableError(VdbmsError, ConnectionError):
    """A replica could not serve a request (crashed node, dropped RPC).

    Inherits :class:`ConnectionError` so pre-existing failover code that
    catches ``ConnectionError`` keeps working.  ``transient`` marks
    failures worth retrying on the *same* replica (a flaky request)
    versus ones that call for immediate failover (a crashed node).
    """

    def __init__(self, node_id: str, reason: str = "down",
                 transient: bool = False):
        super().__init__(f"replica {node_id} unavailable: {reason}")
        self.node_id = node_id
        self.reason = reason
        self.transient = transient


class AllReplicasDownError(ReplicaUnavailableError):
    """Every replica of a shard failed; the shard's data is unreachable."""

    def __init__(self, shard: int, attempts: int = 0):
        VdbmsError.__init__(
            self,
            f"all replicas of shard {shard} are down"
            + (f" (after {attempts} attempts)" if attempts else ""),
        )
        self.shard = shard
        self.attempts = attempts
        self.node_id = f"shard{shard}"
        self.reason = "all replicas down"
        self.transient = False


class DeadlineExceededError(VdbmsError, TimeoutError):
    """A request's simulated-clock deadline elapsed before it finished."""

    def __init__(self, budget_seconds: float, spent_seconds: float):
        super().__init__(
            f"deadline of {budget_seconds:.6g}s exceeded"
            f" ({spent_seconds:.6g}s spent)"
        )
        self.budget_seconds = budget_seconds
        self.spent_seconds = spent_seconds


class PartialResultWarning(UserWarning):
    """A query completed with reduced coverage (some shards unreachable).

    Emitted (not raised) in non-strict mode so callers that opted into
    graceful degradation can still observe it with ``warnings`` filters.
    """
