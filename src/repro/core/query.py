"""Vector query types (§2.1): (c,k)-search, range, hybrid, batched,
multi-vector.

The tutorial's taxonomy, made concrete:

* :class:`SearchQuery` — the (c, k)-search query.  ``c = 0`` demands the
  exact k-NN; ``c > 0`` tolerates results whose distance is within a
  factor ``(1 + c)`` of the true k-th distance (the ANN relaxation).
  An optional predicate makes it a hybrid query.
* :class:`RangeQuery` — all vectors within a similarity threshold.
* :class:`BatchQuery` — many searches issued at once, executed with
  shared work (§2.3).
* :class:`MultiVectorQuery` — several query vectors combined through an
  aggregate score (§2.1 query variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..hybrid.predicates import Predicate
from .errors import QueryError
from .types import as_matrix, as_vector


@dataclass
class SearchQuery:
    """A (c, k)-search query, optionally predicated (hybrid)."""

    vector: np.ndarray
    k: int
    c: float = 0.0
    predicate: Predicate | None = None
    #: index-specific search knobs forwarded to the chosen index scan.
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.vector = as_vector(self.vector)
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")
        if self.c < 0:
            raise QueryError(f"c must be >= 0, got {self.c}")

    @property
    def is_hybrid(self) -> bool:
        return self.predicate is not None

    @property
    def is_exact(self) -> bool:
        """c == 0: the k-NN query (vs the c > 0 ANN relaxation)."""
        return self.c == 0.0


@dataclass
class RangeQuery:
    """All vectors with distance <= radius (optionally predicated)."""

    vector: np.ndarray
    radius: float
    predicate: Predicate | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.vector = as_vector(self.vector)
        if self.radius < 0:
            raise QueryError(f"radius must be >= 0, got {self.radius}")


@dataclass
class BatchQuery:
    """A batch of (c, k)-searches sharing k / predicate / params."""

    vectors: np.ndarray
    k: int
    c: float = 0.0
    predicate: Predicate | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.vectors = as_matrix(self.vectors)
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")

    def __len__(self) -> int:
        return self.vectors.shape[0]

    def queries(self) -> list[SearchQuery]:
        """Explode into independent single queries (the unshared plan)."""
        return [
            SearchQuery(v, self.k, c=self.c, predicate=self.predicate,
                        params=dict(self.params))
            for v in self.vectors
        ]


@dataclass
class MultiVectorQuery:
    """Several query vectors aggregated into one ranking (§2.1).

    ``aggregator`` names an entry of
    :data:`repro.scores.aggregate.AGGREGATORS` or is a callable block
    reducer; ``weights`` selects the weighted-sum aggregator.
    """

    vectors: np.ndarray
    k: int
    aggregator: Any = "mean"
    weights: np.ndarray | None = None
    predicate: Predicate | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.vectors = as_matrix(self.vectors)
        if self.vectors.shape[0] == 0:
            raise QueryError("multi-vector query needs at least one vector")
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape[0] != self.vectors.shape[0]:
                raise QueryError("one weight per query vector is required")


def satisfies_ck(
    result_distances: list[float], true_kth_distance: float, c: float
) -> bool:
    """Check the (c, k)-guarantee: no returned distance exceeds
    ``(1 + c)`` times the true k-th nearest distance."""
    if not result_distances:
        return False
    limit = (1.0 + c) * true_kth_distance
    # Tolerate fp rounding at the boundary.
    return max(result_distances) <= limit * (1.0 + 1e-9) + 1e-12
