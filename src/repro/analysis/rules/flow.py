"""VDB7xx — interprocedural flow rules (the vdbflow engine).

Contract provenance: the VDBMS testing roadmap and bug study both place
the highest-impact defect classes — silent recall loss, nondeterminism,
hot-path performance cliffs — *across* function boundaries, exactly
where the per-file VDB1xx–6xx rules are blind.  These three rules are
:class:`~repro.analysis.registry.ProjectRule` subclasses: they see the
whole-project symbol table and call graph and reason along call paths.

* VDB701 — interprocedural f32c/packed blessing.  VDB401/402 accept a
  function parameter forwarded into a kernel (the wrapper is a
  *demand-forwarding* function); this rule propagates that demand up
  the call graph and flags the **first unblessed edge** on any path
  into ``beam_search`` / ``batched_beam_search`` / ``greedy_walk`` /
  ``fastscan_accumulate`` — wrappers no longer need to re-bless
  locally, and the finding lands where the unblessed value enters.
* VDB702 — clock-domain taint.  VDB101 bans wall-clock *sources*; this
  rule tracks the one approved probe's *flows*: a
  ``time.perf_counter``-derived value that steers control flow, feeds
  a callee's decision parameter, or lands in a persisted artifact is a
  determinism hole.  Packages whose job is timing (observability,
  bench, torture, analysis) are exempt by declaration.
* VDB703 — hot-path allocation lints.  numpy copy/promotion
  anti-patterns (float64 promotion, ``astype`` defaulting
  ``copy=True``, array growth or fancy indexing inside loops,
  Python-level iteration over ndarrays) are errors inside the call-
  graph region reachable from the contract-declared hot entry points,
  and info-level advisories elsewhere — findings rank by cost.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import contracts
from ..flow.callgraph import CallSite
from ..flow.engine import Project, call_name
from ..flow.lattice import FixedPoint
from ..flow.symbols import FunctionInfo
from ..registry import Finding, ProjectRule, dotted_name, register
from .determinism import _module_aliases
from .kernels import (
    _blessed_locals,
    _is_blessed,
    _is_packed_blessed,
    _packed_producer_locals,
)

# --------------------------------------------------------------------------
# shared helpers


def _param_root(expr: ast.expr, params: set[str]) -> str | None:
    """The parameter a kernel argument derives from, if any.

    Strips subscripts/slices and a trailing ``.packed`` read, so both
    ``raw[:k]`` and ``blocked.packed`` reduce to their parameter.
    """
    while True:
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        elif isinstance(expr, ast.Attribute) and expr.attr == "packed":
            expr = expr.value
        else:
            break
    if isinstance(expr, ast.Name) and expr.id in params:
        return expr.id
    return None


def _own_calls(fn: FunctionInfo) -> Iterator[ast.Call]:
    """Call nodes in ``fn``'s own body (nested defs excluded)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _kernel_arg(
    call: ast.Call, arg_index: int, kw_name: str
) -> ast.expr | None:
    if len(call.args) > arg_index:
        return call.args[arg_index]
    for kw in call.keywords:
        if kw.arg == kw_name:
            return kw.value
    return None


# --------------------------------------------------------------------------
# VDB701 — interprocedural f32c / packed-layout blessing


class _DemandConfig:
    """One blessing discipline: which kernels, which blessing test."""

    def __init__(
        self,
        entrypoints: dict[str, int],
        kw_name: str,
        defining_modules: frozenset[str],
        kind: str,
    ) -> None:
        self.entrypoints = entrypoints
        self.kw_name = kw_name
        self.defining_modules = defining_modules
        self.kind = kind  # "f32c" | "packed"

    def blessed(self, expr: ast.expr, fn: FunctionInfo, cache: dict) -> bool:
        # NB: cache lookups use get-then-store, not setdefault — the
        # default argument would re-run the body walk on every call.
        if self.kind == "f32c":
            locals_ = cache.get(("f32c", fn.qualname))
            if locals_ is None:
                locals_ = _blessed_locals(fn.node)
                cache[("f32c", fn.qualname)] = locals_
            return _is_blessed(expr, locals_)
        producers = cache.get(("packed", fn.qualname))
        if producers is None:
            producers = _packed_producer_locals(fn.node)
            cache[("packed", fn.qualname)] = producers
        if _is_packed_blessed(expr, producers):
            return True
        # The BlockedCodes container itself, forwarded whole.
        if isinstance(expr, ast.Name) and expr.id in producers:
            return True
        if isinstance(expr, ast.Call):
            return call_name(expr) in contracts.PACKED_PRODUCERS
        return False


_F32C = _DemandConfig(
    contracts.KERNEL_ENTRYPOINTS,
    "vectors",
    contracts.KERNEL_DEFINING_MODULES,
    "f32c",
)
_PACKED = _DemandConfig(
    contracts.PACKED_KERNEL_ENTRYPOINTS,
    "packed",
    contracts.PACKED_DEFINING_MODULES,
    "packed",
)


@register
class InterproceduralBlessingRule(ProjectRule):
    id = "VDB701"
    name = "flow-kernel-blessing"
    invariant = (
        "On every call path into a vectorized kernel (beam_search / "
        "batched_beam_search / greedy_walk / fastscan_accumulate) the "
        "vector matrix (or packed codes) must be blessed at the first "
        "edge where it enters the path: wrappers forward the demand to "
        "their callers instead of re-blessing locally, and the finding "
        "lands on the first unblessed edge."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        # One body walk per function, shared by both configs and both
        # passes — re-walking per config showed up hard in profiles.
        calls_by_fn = {
            qual: [(c, call_name(c)) for c in _own_calls(fn)]
            for qual, fn in project.symtab.functions.items()
        }
        for config in (_F32C, _PACKED):
            yield from self._check_config(project, config, calls_by_fn)

    # -------------------------------------------------------- per-config

    def _check_config(
        self,
        project: Project,
        config: _DemandConfig,
        calls_by_fn: dict[str, list[tuple[ast.Call, str | None]]],
    ) -> Iterator[Finding]:
        symtab = project.symtab
        graph = project.callgraph
        cache: dict = {}
        # Seed: parameters forwarded straight into a kernel call.
        seeds: dict[str, frozenset[str]] = {}
        chains: dict[tuple[str, str], tuple[str, ...]] = {}
        for qual, fn in symtab.functions.items():
            if fn.module.module in config.defining_modules:
                continue
            params = set(fn.params)
            demanded: set[str] = set()
            for call, name in calls_by_fn[qual]:
                if name not in config.entrypoints:
                    continue
                arg = _kernel_arg(
                    call, config.entrypoints[name], config.kw_name
                )
                if arg is None or config.blessed(arg, fn, cache):
                    continue
                root = _param_root(arg, params)
                if root is not None:
                    demanded.add(root)
                    chains.setdefault((fn.qualname, root), (name,))
            if demanded:
                seeds[fn.qualname] = frozenset(demanded)

        if not seeds and not any(
            name in config.entrypoints
            for calls in calls_by_fn.values()
            for _, name in calls
        ):
            return  # no kernel usage at all: skip the fixed point

        # Propagate demands up the call graph to a fixed point.
        def transfer(qual: str, facts: dict[str, frozenset[str]]):
            fn = symtab.functions[qual]
            if fn.module.module in config.defining_modules:
                return frozenset()
            params = set(fn.params)
            demanded = set(seeds.get(qual, frozenset()))
            for site in graph.out_edges(qual):
                if site.reference_only:
                    continue
                for callee_qual in site.callees:
                    callee_fact = facts.get(callee_qual, frozenset())
                    if not callee_fact:
                        continue
                    callee = symtab.functions[callee_qual]
                    bound = site.bind_args(callee)
                    for p in callee_fact:
                        arg = bound.get(p)
                        if arg is None or config.blessed(arg, fn, cache):
                            continue
                        root = _param_root(arg, params)
                        if root is not None:
                            demanded.add(root)
                            chains.setdefault(
                                (qual, root),
                                (callee_qual,)
                                + chains.get((callee_qual, p), ()),
                            )
            return frozenset(demanded)

        solver: FixedPoint[str, frozenset[str]] = FixedPoint(
            transfer, dependents=graph.callers
        )
        demands = solver.solve(symtab.functions.keys(), frozenset())

        # Findings: the first unblessed edge on any demanded path.
        for site in graph.edges:
            if site.reference_only:
                continue
            caller = symtab.functions[site.caller]
            if caller.module.module in config.defining_modules:
                continue
            params = set(caller.params)
            for callee_qual in site.callees:
                for p in sorted(demands.get(callee_qual, frozenset())):
                    callee = symtab.functions[callee_qual]
                    bound = site.bind_args(callee)
                    arg = bound.get(p)
                    if arg is None or config.blessed(arg, caller, cache):
                        continue
                    if _param_root(arg, params) is not None:
                        continue  # demand forwarded; flagged further up
                    chain = chains.get((callee_qual, p), ())
                    if chain and chain[0] == callee_qual:
                        chain = chain[1:]
                    trace = (site.caller, callee_qual, *chain)
                    yield self.finding(
                        caller.module,
                        arg,
                        f"unblessed {config.kind} value enters the "
                        f"kernel path here: parameter '{p}' of "
                        f"'{callee_qual}' flows into "
                        f"'{chain[-1] if chain else '?'}' — bless this "
                        "argument (ensure_f32c / blocked packer) at "
                        "this first edge",
                        trace=trace,
                    )

        # Demands that escape to the public API: a top-level function
        # with no in-repo callers must bless at the boundary itself.
        for qual, names in sorted(demands.items()):
            fn = symtab.functions[qual]
            if fn.owner is not None or fn.parent is not None:
                continue  # methods: callers may be out of graph reach
            if graph.in_edges(qual):
                continue
            for p in sorted(names):
                chain = chains.get((qual, p), ())
                yield self.finding(
                    fn.module,
                    fn.node,
                    f"'{fn.name}' forwards parameter '{p}' unblessed "
                    f"into kernel '{chain[-1] if chain else '?'}' and "
                    "has no in-repo callers — bless at this API "
                    "boundary (external callers get no interprocedural "
                    "check)",
                    severity="warning",
                    trace=(qual, *chain),
                )


# --------------------------------------------------------------------------
# VDB702 — clock-domain taint


def _is_wall_probe(call: ast.Call) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    return (
        dotted in contracts.CLOCK_WALL_PROBES
        or dotted.split(".")[-1] in contracts.CLOCK_WALL_PROBES
    )


#: Builtins that preserve the clock domain of their input — taint flows
#: through ``min(elapsed, budget)`` but NOT through arbitrary unresolved
#: calls (recording a duration into a stats object is the approved use).
_DOMAIN_PRESERVING_BUILTINS = frozenset(
    {"min", "max", "abs", "round", "sum", "float"}
)


def _bare_target_names(target: ast.expr) -> Iterator[str]:
    """Names bound by an assignment target.

    Only bare names (including tuple/list elements) count: storing a
    duration into ``stats.elapsed_seconds`` or ``out[name]`` is the
    approved recording pattern and must not taint the container or the
    subscript index.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bare_target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bare_target_names(target.value)


def _is_presence_test(test: ast.expr) -> bool:
    """True for pure ``x is None`` / ``x is not None`` tests — they
    branch on *presence*, not on the wall-clock value."""
    return (
        isinstance(test, ast.Compare)
        and all(isinstance(op, (ast.Is, ast.IsNot)) for op in test.ops)
        and all(
            isinstance(c, ast.Constant) and c.value is None
            for c in test.comparators
        )
    )


class _TaintSummary:
    """Per-function clock-taint facts, solved over the call graph."""

    __slots__ = ("returns_wall", "decision_params")

    def __init__(
        self, returns_wall: bool = False,
        decision_params: frozenset[str] = frozenset(),
    ) -> None:
        self.returns_wall = returns_wall
        self.decision_params = decision_params

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, _TaintSummary)
            and self.returns_wall == other.returns_wall
            and self.decision_params == other.decision_params
        )

    def __hash__(self) -> int:  # pragma: no cover - dict-value only
        return hash((self.returns_wall, self.decision_params))


class _TaintLocal:
    """One function's forward taint + backward sink-slice, computed
    against the current callee summaries."""

    def __init__(
        self,
        fn: FunctionInfo,
        sites: dict[int, CallSite],
        summaries: dict[str, _TaintSummary],
        symtab,
        nodes: list[ast.AST] | None = None,
    ) -> None:
        self.fn = fn
        self.sites = sites
        self.summaries = summaries
        self.symtab = symtab
        self.nodes = nodes if nodes is not None else list(_own_walk(fn.node))
        self.tainted = self._forward_taint()
        self.sink_nodes = list(self._sinks())

    # ------------------------------------------------------------ forward

    def _expr_tainted(self, expr: ast.expr, tainted: set[str]) -> bool:
        """Recursive domain evaluator.

        Taint crosses arithmetic/comparison operators and the domain-
        preserving builtins, but stops at any other call boundary: a
        tainted argument to ``SearchStats(...)`` or ``span.set(...)``
        is the approved recording pattern, not a tainted result.
        """
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Call):
            if _is_wall_probe(expr):
                return True
            site = self.sites.get(id(expr))
            if site is not None:
                return any(
                    self.summaries.get(c, _TaintSummary()).returns_wall
                    for c in site.callees
                )
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id in _DOMAIN_PRESERVING_BUILTINS
            ):
                return any(
                    self._expr_tainted(a, tainted)
                    for a in [*expr.args, *[k.value for k in expr.keywords]]
                )
            return False
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr) and self._expr_tainted(
                child, tainted
            ):
                return True
        return False

    def _forward_taint(self) -> set[str]:
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif (
                    isinstance(node, (ast.AugAssign, ast.AnnAssign))
                    and getattr(node, "value", None) is not None
                ):
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.NamedExpr):
                    targets, value = [node.target], node.value
                else:
                    continue
                if not self._expr_tainted(value, tainted):
                    continue
                for target in targets:
                    for name in _bare_target_names(target):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        return tainted

    # ------------------------------------------------------------- sinks

    def _sinks(self) -> Iterator[tuple[ast.AST, str]]:
        """(node, description) for every taint sink in the body."""
        for node in self.nodes:
            if isinstance(node, (ast.If, ast.While)):
                if not _is_presence_test(node.test):
                    yield node.test, "a control-flow decision"
            elif isinstance(node, ast.IfExp):
                if not _is_presence_test(node.test):
                    yield node.test, "a conditional expression"
            elif isinstance(node, ast.comprehension):
                for cond in node.ifs:
                    yield cond, "a comprehension filter"
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in contracts.CLOCK_PERSIST_SINKS:
                    for arg in [
                        *node.args,
                        *[k.value for k in node.keywords],
                    ]:
                        yield arg, f"the persisted artifact ({name})"
                site = self.sites.get(id(node))
                if site is None:
                    continue
                for callee_qual in site.callees:
                    summary = self.summaries.get(callee_qual)
                    if summary is None or not summary.decision_params:
                        continue
                    callee = self.symtab.functions[callee_qual]
                    bound = site.bind_args(callee)
                    for p in summary.decision_params:
                        arg = bound.get(p)
                        if arg is not None:
                            yield (
                                arg,
                                f"a decision inside '{callee_qual}' "
                                f"(via parameter '{p}')",
                            )

    # ----------------------------------------------------------- summary

    def summarize(self) -> _TaintSummary:
        returns_wall = False
        for node in self.nodes:
            if isinstance(node, ast.Return) and node.value is not None:
                if self._expr_tainted(node.value, self.tainted):
                    returns_wall = True
                    break
        # Backward slice: names feeding any sink, then intersect params.
        sink_names: set[str] = set()
        for sink, _ in self.sink_nodes:
            for node in ast.walk(sink):
                if isinstance(node, ast.Name):
                    sink_names.add(node.id)
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                if not isinstance(node, ast.Assign):
                    continue
                hit = any(
                    isinstance(t, ast.Name) and t.id in sink_names
                    for t in node.targets
                )
                if not hit:
                    continue
                for sub in ast.walk(node.value):
                    if (
                        isinstance(sub, ast.Name)
                        and sub.id not in sink_names
                    ):
                        sink_names.add(sub.id)
                        changed = True
        decision_params = frozenset(
            p for p in self.fn.params if p in sink_names
        )
        return _TaintSummary(returns_wall, decision_params)

    def findings(self, rule) -> Iterator[Finding]:
        for sink, what in self.sink_nodes:
            if self._expr_tainted(sink, self.tainted):
                yield rule.finding(
                    self.fn.module,
                    sink,
                    "wall-clock-tainted value (derived from "
                    f"time.perf_counter) reaches {what} — durations "
                    "may only feed observability; decisions and "
                    "persisted state must use the simulated clock",
                    trace=(self.fn.qualname,),
                )


def _own_walk(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class ClockDomainTaintRule(ProjectRule):
    id = "VDB702"
    name = "flow-clock-domain"
    invariant = (
        "time.perf_counter values exist to measure durations for "
        "observability: a wall-clock-tainted value must never reach a "
        "control-flow decision, a callee's decision parameter, or a "
        "persisted artifact — across function boundaries.  Timing-"
        "owning packages (observability/bench/torture/analysis) are "
        "exempt by declaration."
    )

    def _exempt(self, fn: FunctionInfo) -> bool:
        return fn.module.package in contracts.CLOCK_FLOW_EXEMPT_PACKAGES

    def check_project(self, project: Project) -> Iterator[Finding]:
        symtab = project.symtab
        graph = project.callgraph
        # Index call sites by Call-node identity, per function.
        sites_by_fn: dict[str, dict[int, CallSite]] = {}
        for site in graph.edges:
            if not site.reference_only:
                sites_by_fn.setdefault(site.caller, {})[
                    id(site.call)
                ] = site

        summaries: dict[str, _TaintSummary] = {}
        # One AST walk per function, reused by every fixed-point
        # iteration — the transfer function re-runs on summary changes
        # and must not pay the tree walk again each time.
        body_nodes: dict[str, list[ast.AST]] = {
            qual: list(_own_walk(fn.node))
            for qual, fn in symtab.functions.items()
            if not self._exempt(fn)
        }

        def transfer(qual: str, facts: dict[str, _TaintSummary]):
            fn = symtab.functions[qual]
            if self._exempt(fn):
                return _TaintSummary()
            local = _TaintLocal(
                fn, sites_by_fn.get(qual, {}), facts, symtab,
                body_nodes[qual],
            )
            return local.summarize()

        solver: FixedPoint[str, _TaintSummary] = FixedPoint(
            transfer, dependents=graph.callers
        )
        summaries = solver.solve(
            symtab.functions.keys(), _TaintSummary()
        )

        for qual, fn in symtab.functions.items():
            if self._exempt(fn):
                continue
            local = _TaintLocal(
                fn, sites_by_fn.get(qual, {}), summaries, symtab,
                body_nodes[qual],
            )
            yield from local.findings(self)


# --------------------------------------------------------------------------
# VDB703 — hot-path allocation lints


def _loop_ancestor_within(module, node: ast.AST, fn: ast.AST):
    """The nearest enclosing loop between ``node`` and ``fn`` (or None)."""
    for anc in module.ancestors(node):
        if anc is fn:
            return None
        if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
            return anc
    return None


def _is_self_growth(module, call: ast.Call) -> bool:
    """True for the accumulator pattern ``x = np.append(x, ...)`` — the
    call's result is stored back into a name that also feeds the call.
    A fresh per-round merge (``nbrs = np.concatenate(parts)``) is the
    algorithm, not quadratic growth."""
    parent = module.parent(call)
    while isinstance(parent, ast.Subscript):  # np.append(x, y)[-k:]
        parent = module.parent(parent)
    if not isinstance(parent, (ast.Assign, ast.AugAssign)):
        return False
    targets = (
        parent.targets if isinstance(parent, ast.Assign) else [parent.target]
    )
    target_names = {
        n.id
        for t in targets
        for n in ast.walk(t)
        if isinstance(n, ast.Name)
    }
    arg_names = {
        n.id
        for a in call.args
        for n in ast.walk(a)
        if isinstance(n, ast.Name)
    }
    return bool(target_names & arg_names)


def _loop_assigned_names(loop: ast.AST) -> set[str]:
    """Names (re)bound anywhere inside ``loop`` — a gather whose base
    and index are all loop-invariant is hoistable."""
    out: set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                out.update(_bare_target_names(t))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            out.update(_bare_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            out.update(_bare_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out.update(_bare_target_names(node.target))
    return out


def _is_float64_marker(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value in contracts.FLOAT64_MARKERS
    name = dotted_name(expr)
    if name is None:
        return False
    return name.split(".")[-1] in contracts.FLOAT64_MARKERS


def _array_typed_locals(fn: FunctionInfo, numpy_names: set[str]) -> set[str]:
    """Names assigned from numpy array-returning calls / ensure_f32c."""
    out: set[str] = set()
    for node in _own_walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        name = call_name(value)
        is_np = (
            isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id in numpy_names
            and name in contracts.NP_ARRAY_RETURNING
        )
        if is_np or name == "ensure_f32c":
            for t in node.targets:
                if isinstance(t, ast.Name):
                    out.add(t.id)
    return out


@register
class HotPathAllocationRule(ProjectRule):
    id = "VDB703"
    name = "flow-hot-allocation"
    invariant = (
        "Inside the call-graph region reachable from the declared hot "
        "entry points (kernels, executor dispatch, serving batch "
        "execution, index search overrides), numpy copy/promotion "
        "anti-patterns are errors: float64 promotion, astype without "
        "an explicit copy= (defaults to a hidden copy), array growth "
        "(np.concatenate/append/...) or fancy indexing inside loops, "
        "and Python-level iteration over ndarrays.  Outside the hot "
        "region the same patterns are info-level advisories — findings "
        "rank by cost."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        symtab = project.symtab
        hot = project.hot_region()
        numpy_cache: dict[str, set[str]] = {}
        for qual, fn in symtab.functions.items():
            if fn.module.module in contracts.ALLOC_TUNED_MODULES:
                continue  # hand-tuned kernels own their discipline
            severity = "error" if qual in hot else "info"
            where = (
                "on the hot path" if severity == "error"
                else "off the hot path (advisory)"
            )
            module = fn.module
            numpy_names = numpy_cache.get(module.path)
            if numpy_names is None:
                numpy_names = _module_aliases(module.tree, "numpy")
                numpy_cache[module.path] = numpy_names
            array_locals = _array_typed_locals(fn, numpy_names)
            for node in _own_walk(fn.node):
                if isinstance(node, ast.Call):
                    yield from self._check_call(
                        project, fn, node, numpy_names, severity, where
                    )
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._check_iteration(
                        fn, node, array_locals, severity, where
                    )
                elif isinstance(node, ast.Subscript):
                    yield from self._check_fancy_index(
                        fn, node, array_locals, severity, where
                    )

    # ------------------------------------------------------------- checks

    def _check_call(
        self, project, fn, node, numpy_names, severity, where
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            dtype = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "dtype":
                    dtype = kw.value
            has_copy_kw = any(kw.arg == "copy" for kw in node.keywords)
            if dtype is not None and _is_float64_marker(dtype):
                # Promoting a (d,) query for float64 distance math is
                # the repo's precision convention and costs O(d); only
                # promoting a known *matrix* (ingest-blessed vectors)
                # doubles real memory traffic.  Matrix evidence
                # escalates; everything else stays advisory.
                is_matrix = (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr in contracts.BLESSED_VECTOR_ATTRS
                ) or (
                    isinstance(func.value, ast.Call)
                    and call_name(func.value) == "ensure_f32c"
                )
                sev = severity if is_matrix else "info"
                what = where if is_matrix else "(advisory)"
                yield self.finding(
                    fn.module,
                    node,
                    f"float64 promotion {what}: .astype(float64) "
                    "doubles memory traffic on every element — keep "
                    "bulk data in float32 (promote only at a "
                    "documented precision boundary)",
                    severity=sev,
                    trace=(fn.qualname,),
                )
            elif not has_copy_kw and severity == "error":
                # Only policed inside the hot region: elsewhere an
                # unconditional copy is a defensible default.
                yield self.finding(
                    fn.module,
                    node,
                    f"hidden copy {where}: .astype() defaults to "
                    "copy=True even when the dtype already matches — "
                    "pass copy=False (or an explicit copy=True when "
                    "aliasing is required)",
                    severity=severity,
                    trace=(fn.qualname,),
                )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in numpy_names
            and func.attr in contracts.HOT_ALLOC_GROWTH_CALLS
            and _loop_ancestor_within(fn.module, node, fn.node)
            and _is_self_growth(fn.module, node)
        ):
            yield self.finding(
                fn.module,
                node,
                f"array growth inside a loop {where}: "
                f"x = np.{func.attr}(x, ...) reallocates and copies "
                "the accumulator on every iteration — collect into a "
                "list and concatenate once, or preallocate",
                severity=severity,
                trace=(fn.qualname,),
            )

    def _check_iteration(
        self, fn, node, array_locals, severity, where
    ) -> Iterator[Finding]:
        it = node.iter
        is_ndarray = (
            isinstance(it, ast.Call) and call_name(it) == "ensure_f32c"
        ) or (isinstance(it, ast.Name) and it.id in array_locals)
        if is_ndarray:
            yield self.finding(
                fn.module,
                node.iter,
                f"Python-level iteration over an ndarray {where}: "
                "each step boxes a row into a new array object — use "
                "vectorized operations or iterate indices",
                severity=severity,
                trace=(fn.qualname,),
            )

    def _check_fancy_index(
        self, fn, node, array_locals, severity, where
    ) -> Iterator[Finding]:
        idx = node.slice
        if not (isinstance(idx, ast.Name) and idx.id in array_locals):
            return
        loop = _loop_ancestor_within(fn.module, node, fn.node)
        if loop is None:
            return
        if isinstance(node.ctx, ast.Store):
            return  # scatter-assign into a preallocated buffer is the fix
        # Only hoistable gathers are findings: when the base or the
        # index is rebound inside the loop, the per-round gather IS the
        # algorithm (beam frontiers, per-group routing).
        rebound = _loop_assigned_names(loop)
        involved = {idx.id}
        if isinstance(node.value, ast.Name):
            involved.add(node.value.id)
        if involved & rebound:
            return
        yield self.finding(
            fn.module,
            node,
            f"loop-invariant fancy indexing {where}: neither the array "
            "nor the index changes across iterations, but every "
            "iteration gathers a fresh copy — hoist the gather out of "
            "the loop",
            severity=severity,
            trace=(fn.qualname,),
        )
