"""VDB1xx — determinism: no wall-clock sources, no unseeded RNG.

Contract provenance: the seeded fault plans / retry jitter of PR 1 and
the simulated-clock latency model of the distributed layer only
reproduce if *nothing* on the query/index/storage path reads the wall
clock or hidden global RNG state.  ``time.perf_counter`` is exempt —
it measures durations for observability and never feeds a decision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import contracts
from ..registry import Finding, Module, Rule, dotted_name, register


def _module_aliases(tree: ast.AST, target: str) -> set[str]:
    """Names the module ``target`` is bound to in this file
    (``import numpy as np`` -> {"np"})."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == target:
                    aliases.add(a.asname or a.name.split(".")[0])
    return aliases


def _from_imports(tree: ast.AST, module: str) -> set[str]:
    """Local names bound by ``from <module> import x [as y]``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for a in node.names:
                names.add(a.asname or a.name)
    return names


@register
class WallClockRule(Rule):
    id = "VDB101"
    name = "wall-clock-source"
    invariant = (
        "No wall-clock time source on any repro path: time.time/"
        "monotonic and datetime.now/utcnow/today are banned; the "
        "simulated clock (or an injected clock callable) is the only "
        "time source, time.perf_counter the only duration probe."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in contracts.WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock source {dotted}() — use the simulated "
                    "clock / injected clock parameter (time.perf_counter "
                    "is the only approved duration probe)",
                )


@register
class UnseededRngRule(Rule):
    id = "VDB102"
    name = "unseeded-rng"
    invariant = (
        "All randomness flows from a seeded np.random.Generator (or "
        "seeded random.Random instance): module-level np.random.* and "
        "random.* calls, np.random.RandomState, and argument-less "
        "default_rng() are banned."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        numpy_names = _module_aliases(module.tree, "numpy")
        random_names = _module_aliases(module.tree, "random")
        random_fns = _from_imports(module.tree, "random") & (
            contracts.STDLIB_RANDOM_FNS | {"seed"}
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            # --- numpy: np.random.<fn> / numpy.random.<fn>
            if (
                len(parts) >= 3
                and parts[0] in numpy_names
                and parts[1] == "random"
            ):
                fn = parts[2]
                if fn in contracts.NP_RANDOM_LEGACY:
                    yield self.finding(
                        module,
                        node,
                        f"module-level RNG {dotted}() uses hidden global "
                        "state — thread a seeded np.random.Generator",
                    )
                elif fn == "RandomState":
                    yield self.finding(
                        module,
                        node,
                        "np.random.RandomState is legacy global-state "
                        "RNG — use np.random.default_rng(seed)",
                    )
                elif fn == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "default_rng() without a seed is entropy-seeded "
                        "and irreproducible — pass an explicit seed",
                    )
            # --- stdlib random module: random.<fn>
            elif len(parts) == 2 and parts[0] in random_names:
                fn = parts[1]
                if fn in contracts.STDLIB_RANDOM_FNS:
                    yield self.finding(
                        module,
                        node,
                        f"module-level RNG {dotted}() uses hidden global "
                        "state — construct random.Random(seed) and thread it",
                    )
                elif fn == "Random" and not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed is entropy-seeded "
                        "— pass an explicit seed",
                    )
                elif fn == "SystemRandom":
                    yield self.finding(
                        module,
                        node,
                        "random.SystemRandom is OS entropy — deterministic "
                        "paths must use a seeded RNG",
                    )
            # --- from random import shuffle; shuffle(...)
            elif len(parts) == 1 and parts[0] in random_fns:
                yield self.finding(
                    module,
                    node,
                    f"{parts[0]}() from the random module uses hidden "
                    "global state — construct random.Random(seed) and "
                    "thread it",
                )
