"""Rule families — importing this package registers every rule.

==========  ==============================================================
family      invariant
==========  ==============================================================
VDB1xx      determinism: no wall-clock sources, no unseeded RNG
VDB2xx      import layering: declared package DAG, no-op-able
            observability surface only at module scope
VDB3xx      stats accounting: SearchStats mutations allowlisted,
            search overrides thread ``stats``
VDB4xx      kernel boundary: vector matrices entering the kernels are
            ``ensure_f32c``-blessed
VDB5xx      exception-safe observability: spans are ``with``-scoped,
            no bare conditionals around no-op-able components
VDB6xx      atomic storage writes: storage modules mutate files only
            through the blessed atomic writer's ``Filesystem`` seam
VDB7xx      interprocedural flow (vdbflow): f32c/packed blessing across
            call edges, clock-domain taint, hot-path allocation lints
==========  ==============================================================
"""

from . import determinism, flow, kernels, layering, spans, stats, storagefs

__all__ = [
    "determinism",
    "flow",
    "kernels",
    "layering",
    "spans",
    "stats",
    "storagefs",
]
