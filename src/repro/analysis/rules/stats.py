"""VDB3xx — SearchStats accounting.

Contract provenance: PR 2 fixed, by hand, a shared-stats
double-charging bug in ``graph_base`` (predicate work attributed to
whatever the caller had already accumulated); PR 3's profiler asserts
``attribution_residual() == 0`` everywhere; PR 4's recall auditor is
*defined* by never touching query-path stats.  All three only hold if
counter mutation stays where it is audited:

* VDB301 — assignments/augmented-assignments to attributes named like
  ``SearchStats`` counters are allowed only in the approved modules
  (``contracts.STATS_MUTATION_ALLOWLIST``).
* VDB302 — ``search``/``_search``/``range_search`` overrides on
  index-contract classes must declare a ``stats`` parameter.
* VDB303 — those overrides must actually *thread* the stats object:
  reference it in a nested call, mutate a counter, or merge it.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from .. import contracts
from ..registry import Finding, Module, Rule, register

_SEARCH_METHODS = ("search", "_search", "range_search")


def _stats_allowlisted(path: str) -> bool:
    return any(
        fnmatch(path, pattern)
        for pattern in contracts.STATS_MUTATION_ALLOWLIST
    )


def _index_contract_classes(module: Module) -> list[ast.ClassDef]:
    """Classes bound by the stats-threading contract in this module."""
    out = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = {
            b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
            for b in node.bases
        }
        if base_names & contracts.INDEX_BASE_NAMES:
            out.append(node)
        elif (module.module, node.name) in contracts.STATS_THREADING_CLASSES:
            out.append(node)
    return out


@register
class StatsMutationRule(Rule):
    id = "VDB301"
    name = "stats-accounting"
    invariant = (
        "SearchStats counters may be mutated only in the approved "
        "accounting modules; notably the observability package (audit "
        "isolation), scores, and quantization must never touch them."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if _stats_allowlisted(module.path):
            return
        for node in ast.walk(module.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for t in ast.walk(target):
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.ctx, ast.Store)
                        and t.attr in contracts.SEARCH_STATS_FIELDS
                    ):
                        yield self.finding(
                            module,
                            t,
                            f"mutation of stats counter '.{t.attr}' "
                            "outside the accounting allowlist — "
                            "charge this through an approved layer or "
                            "extend contracts.STATS_MUTATION_ALLOWLIST "
                            "in the same review",
                        )


@register
class StatsSignatureRule(Rule):
    id = "VDB302"
    name = "stats-parameter"
    invariant = (
        "Every search/_search/range_search override on an index-"
        "contract class must declare a 'stats' parameter."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for cls in _index_contract_classes(module):
            for item in cls.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in _SEARCH_METHODS
                ):
                    params = {
                        a.arg
                        for a in (
                            item.args.args
                            + item.args.kwonlyargs
                            + item.args.posonlyargs
                        )
                    }
                    if "stats" not in params:
                        yield self.finding(
                            module,
                            item,
                            f"{cls.name}.{item.name} does not declare a "
                            "'stats' parameter — every index search "
                            "override must accept and thread SearchStats",
                        )


@register
class StatsThreadingRule(Rule):
    id = "VDB303"
    name = "stats-threading"
    invariant = (
        "search overrides must thread the stats object onward: pass it "
        "to a nested call, mutate a counter, or merge it — accepting "
        "and dropping it silently corrupts cost attribution."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for cls in _index_contract_classes(module):
            for item in cls.body:
                if not (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in _SEARCH_METHODS
                ):
                    continue
                params = {
                    a.arg
                    for a in (
                        item.args.args
                        + item.args.kwonlyargs
                        + item.args.posonlyargs
                    )
                }
                if "stats" not in params:
                    continue  # VDB302's problem
                if item.name == "_search" and not _has_body(item):
                    continue  # abstract declaration
                if not _threads_stats(item):
                    yield self.finding(
                        module,
                        item,
                        f"{cls.name}.{item.name} accepts 'stats' but "
                        "never threads it (no nested call receives it, "
                        "no counter is charged) — the override silently "
                        "drops cost accounting",
                    )


def _has_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """False for docstring-only / ellipsis / raise-only declarations."""
    real = [
        s
        for s in fn.body
        if not (
            isinstance(s, ast.Expr)
            and isinstance(s.value, ast.Constant)
        )
        and not isinstance(s, (ast.Pass, ast.Raise))
    ]
    return bool(real)


def _threads_stats(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        # stats passed into a nested call (positionally or by keyword)
        if isinstance(node, ast.Call):
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == "stats":
                    return True
            for kw in node.keywords:
                if (
                    isinstance(kw.value, ast.Name)
                    and kw.value.id == "stats"
                ):
                    return True
        # a counter charged directly, or stats.merge(...) / method call
        if isinstance(node, ast.Attribute) and (
            isinstance(node.value, ast.Name) and node.value.id == "stats"
        ):
            return True
    return False
