"""VDB4xx — kernel boundary: matrices entering the vectorized kernels
must be ``ensure_f32c``-blessed.

Contract provenance: PR 2 centralized layout enforcement in
``repro.index._kernels.ensure_f32c`` and made every kernel assume
float32 C-contiguous input — a float64 or strided matrix silently
upcasts every distance computation on the hot path (the exact
dtype/layout-mismatch bug class the VDBMS bug study attributes most
silent wrong-result defects to).

A vector-matrix argument is *blessed* when it is:

* a direct ``ensure_f32c(...)`` call,
* an attribute the ingest paths guarantee (``._vectors`` /
  ``.vectors`` — enforced in ``VectorIndex.build`` and collection
  ingest),
* a subscript/slice of a blessed expression,
* a local name assigned from a blessed expression in the same function,
  or
* a bare function parameter — the function is then *demand-forwarding*
  and VDB701 (interprocedural blessing) enforces the contract at the
  first unblessed call edge instead of forcing a redundant local
  re-blessing in every wrapper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import contracts
from ..registry import Finding, Module, Rule, register


def _call_name(node: ast.Call) -> str | None:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def _is_blessed(expr: ast.expr, blessed_names: set[str]) -> bool:
    if isinstance(expr, ast.Call):
        return _call_name(expr) == "ensure_f32c"
    if isinstance(expr, ast.Attribute):
        return expr.attr in contracts.BLESSED_VECTOR_ATTRS
    if isinstance(expr, ast.Subscript):
        return _is_blessed(expr.value, blessed_names)
    if isinstance(expr, ast.Name):
        return expr.id in blessed_names
    return False


def _blessed_locals(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names assigned from a blessed expression anywhere in ``fn``.

    Iterated to a fixed point so chains (``a = ensure_f32c(x); b = a``)
    resolve regardless of statement order complexity.
    """
    blessed: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_blessed(
                node.value, blessed
            ):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in blessed
                    ):
                        blessed.add(target.id)
                        changed = True
            elif isinstance(node, ast.AnnAssign):
                if (
                    node.value is not None
                    and isinstance(node.target, ast.Name)
                    and _is_blessed(node.value, blessed)
                    and node.target.id not in blessed
                ):
                    blessed.add(node.target.id)
                    changed = True
    return blessed


def _param_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | None,
) -> set[str]:
    """Parameter names of ``fn`` — a bare parameter forwarded into a
    kernel makes the function demand-forwarding (VDB701 takes over)."""
    if fn is None:
        return set()
    args = fn.args
    return {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}


@register
class KernelBoundaryRule(Rule):
    id = "VDB401"
    name = "kernel-f32c-boundary"
    invariant = (
        "Every matrix passed to a vectorized kernel entry point "
        "(beam_search / beam_search_reference / batched_beam_search / "
        "greedy_walk) must be ensure_f32c-blessed in the calling "
        "function, come from an ingest-guaranteed attribute "
        "(._vectors / .vectors), or be a forwarded parameter — in "
        "which case VDB701 enforces blessing at the call edges."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if module.module in contracts.KERNEL_DEFINING_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in contracts.KERNEL_ENTRYPOINTS:
                continue
            arg_index = contracts.KERNEL_ENTRYPOINTS[name]
            matrix: ast.expr | None = None
            if len(node.args) > arg_index:
                matrix = node.args[arg_index]
            else:
                for kw in node.keywords:
                    if kw.arg == "vectors":
                        matrix = kw.value
            if matrix is None:
                continue  # malformed call; not this rule's concern
            fn = module.enclosing_function(node)
            blessed_names = _blessed_locals(fn) if fn is not None else set()
            blessed_names |= _param_names(fn)
            if not _is_blessed(matrix, blessed_names):
                yield self.finding(
                    module,
                    matrix,
                    f"matrix passed to kernel '{name}' is not "
                    "ensure_f32c-blessed — wrap it with ensure_f32c(...) "
                    "in this function (kernels assume float32 "
                    "C-contiguous; anything else silently upcasts the "
                    "hot path)",
                )


def _packed_producer_locals(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Local names assigned from a blessed packed-layout producer call."""
    blessed: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            ok = (
                isinstance(value, ast.Call)
                and _call_name(value) in contracts.PACKED_PRODUCERS
            ) or (isinstance(value, ast.Name) and value.id in blessed)
            if not ok:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in blessed:
                    blessed.add(target.id)
                    changed = True
    return blessed


def _is_packed_blessed(expr: ast.expr, producer_names: set[str]) -> bool:
    """``<producer>(...).packed`` or ``<name assigned from producer>.packed``."""
    if not (isinstance(expr, ast.Attribute) and expr.attr == "packed"):
        return False
    base = expr.value
    if isinstance(base, ast.Call):
        return _call_name(base) in contracts.PACKED_PRODUCERS
    if isinstance(base, ast.Name):
        return base.id in producer_names
    return False


@register
class PackedLayoutBoundaryRule(Rule):
    id = "VDB402"
    name = "fastscan-packed-boundary"
    invariant = (
        "The packed argument to fastscan_accumulate must be the .packed "
        "array of a BlockedCodes produced by pack_codes_blocked / "
        "gather_packed_cells / concat_blocked in the calling function — "
        "the (m_eff, n) scan layout is meaningless unless the blocked "
        "packers built it."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if module.module in contracts.PACKED_DEFINING_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in contracts.PACKED_KERNEL_ENTRYPOINTS:
                continue
            arg_index = contracts.PACKED_KERNEL_ENTRYPOINTS[name]
            packed: ast.expr | None = None
            if len(node.args) > arg_index:
                packed = node.args[arg_index]
            else:
                for kw in node.keywords:
                    if kw.arg == "packed":
                        packed = kw.value
            if packed is None:
                continue
            fn = module.enclosing_function(node)
            producer_names = (
                _packed_producer_locals(fn) if fn is not None else set()
            )
            params = _param_names(fn)
            forwarded = (
                isinstance(packed, ast.Name) and packed.id in params
            ) or _is_packed_blessed(packed, producer_names | params)
            if not forwarded:
                yield self.finding(
                    module,
                    packed,
                    f"packed codes passed to '{name}' do not come from a "
                    "blocked packer — read them off the .packed attribute "
                    "of a pack_codes_blocked / gather_packed_cells / "
                    "concat_blocked result in this function (any other "
                    "(m, n) array scans garbage in blocked order)",
                )
