"""VDB5xx — exception-safe observability.

Contract provenance: PR 3's tracer validates span-tree well-formedness
(``validate_span_tree``); a span left open on an exception path breaks
the tree, corrupts stats-delta attribution, and leaks into every later
trace export.  The no-op twins (``NOOP_SPAN`` / ``NOOP_TRACER`` /
``NOOP_METRICS`` / ``DISABLED``) exist precisely so hot-path call sites
never branch on "is observability on?".

* VDB501 — every span created via ``start_span``/``child`` must be
  ``with``-scoped, explicitly ``finish()``-ed, returned to the caller,
  or handed to another call that owns it.  Creating a span and
  dropping it (or assigning it and never closing it) is a leak.
* VDB502 — outside ``repro.observability``, conditional tests on the
  no-op-able components (``.metrics`` / ``.tracer``) are banned; the
  approved normalization idiom (``x if x is not None else NOOP_*``) is
  exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import contracts
from ..registry import Finding, Module, Rule, register


def _chain_root(module: Module, call: ast.Call) -> ast.expr:
    """Climb a span method chain (``.attach_stats``/``.set``) to the
    outermost expression whose value is the span."""
    node: ast.expr = call
    while True:
        parent = module.parent(node)
        if (
            isinstance(parent, ast.Attribute)
            and parent.attr in contracts.SPAN_CHAINING_METHODS
        ):
            grand = module.parent(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                node = grand
                continue
        return node


def _with_names(fn: ast.AST) -> set[str]:
    """Names used as ``with`` context expressions inside ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    names.add(item.context_expr.id)
    return names


def _finished_names(fn: ast.AST) -> set[str]:
    """Names on which ``.finish()`` / ``.end()`` is called in ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("finish", "end")
            and isinstance(node.func.value, ast.Name)
        ):
            names.add(node.func.value.id)
    return names


def _is_owner_target(target: ast.expr) -> bool:
    """Is ``target`` a registered span-owner store?

    Accepts ``x.span = ...`` (attribute in SPAN_OWNER_ATTRS) and
    ``owner[key] = ...`` where the owner is a name or attribute from
    the same registry (``self._spans[tid] = ...``).
    """
    if isinstance(target, ast.Attribute):
        return target.attr in contracts.SPAN_OWNER_ATTRS
    if isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Name):
            return value.id in contracts.SPAN_OWNER_ATTRS
        if isinstance(value, ast.Attribute):
            return value.attr in contracts.SPAN_OWNER_ATTRS
    return False


def _handed_off_names(fn: ast.AST) -> set[str]:
    """Names later stored into a registered span owner inside ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Name)
            and all(_is_owner_target(t) for t in node.targets)
        ):
            names.add(node.value.id)
    return names


@register
class SpanScopeRule(Rule):
    id = "VDB501"
    name = "span-scoped"
    invariant = (
        "Spans (tracer.start_span / span.child) must be with-scoped, "
        "explicitly finish()-ed, or handed off to a registered span "
        "owner (SPAN_OWNER_ATTRS) in the creating function; an unclosed "
        "span corrupts the trace tree and its stats-delta attribution."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if module.package == "observability":
            return  # the factories themselves live here
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in contracts.SPAN_FACTORY_METHODS
            ):
                continue
            root = _chain_root(module, node)
            parent = module.parent(root)
            # with span.child(...) [as s]:  — scoped, fine
            if isinstance(parent, ast.withitem):
                continue
            # return tracer.start_span(...) — ownership moves to caller
            if isinstance(parent, ast.Return):
                continue
            # f(span.child(...)) or x.method(span.child(...)) — handed off
            if isinstance(parent, ast.Call) and root in parent.args:
                continue
            if isinstance(parent, ast.keyword):
                continue
            if isinstance(parent, ast.Assign):
                # self._spans[tid] = start_span(...) — direct hand-off
                # to a registered owner; the owner finishes it later.
                if all(_is_owner_target(t) for t in parent.targets):
                    continue
                # name = span.child(...)  — must be with-scoped,
                # finished, or handed off to a registered owner.
                if all(isinstance(t, ast.Name) for t in parent.targets):
                    scope = module.enclosing_function(node) or module.tree
                    ok = (
                        _with_names(scope)
                        | _finished_names(scope)
                        | _handed_off_names(scope)
                    )
                    targets = {t.id for t in parent.targets}
                    if targets & ok:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"span assigned to {sorted(targets)} is never "
                        "with-scoped, finish()-ed, or handed off to a "
                        "registered span owner in this function — an "
                        "exception here leaks an open span",
                    )
                    continue
                yield self.finding(
                    module,
                    node,
                    "span stored into an unregistered location — "
                    "with-scope it, finish() it, or register the "
                    "target in SPAN_OWNER_ATTRS so ownership is "
                    "auditable",
                )
                continue
            yield self.finding(
                module,
                node,
                "span created and dropped — enter it with 'with', "
                "finish() it, or return it to the caller",
            )


def _mentions_noop_sentinel(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and any(
            marker in sub.id for marker in contracts.NOOP_SENTINEL_MARKERS
        ):
            return True
        if isinstance(sub, ast.Attribute) and any(
            marker in sub.attr for marker in contracts.NOOP_SENTINEL_MARKERS
        ):
            return True
    return False


@register
class BareObservabilityConditionalRule(Rule):
    id = "VDB502"
    name = "noop-not-branch"
    invariant = (
        "Hot-path code never branches on '.metrics' / '.tracer' — the "
        "no-op twins make the call unconditionally safe; the only "
        "approved test is the normalization idiom "
        "'x if x is not None else NOOP_*'."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if module.package == "observability":
            return  # constructors normalize to the no-op twins here
        for node in ast.walk(module.tree):
            tests: list[ast.expr] = []
            if isinstance(node, (ast.If, ast.While)):
                tests = [node.test]
            elif isinstance(node, ast.IfExp):
                if _mentions_noop_sentinel(node):
                    continue  # the approved normalization idiom
                tests = [node.test]
            elif isinstance(node, ast.Assert):
                tests = [node.test]
            for test in tests:
                for sub in ast.walk(test):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr
                        in contracts.OBSERVABILITY_COMPONENT_ATTRS
                    ):
                        yield self.finding(
                            module,
                            sub,
                            f"conditional on '.{sub.attr}' — the no-op "
                            "twins (NOOP_METRICS / NOOP_TRACER / "
                            "DISABLED) exist so call sites never "
                            "branch; call through the bundle "
                            "unconditionally",
                        )
