"""VDB2xx — import layering.

Contract provenance: the package DAG was implicit from PR 0 (scores →
index → core facade) and PRs 1–4 kept it alive by hand (lazy imports
with "storage must not import core at module load time" comments; the
no-op observability surface of PR 3).  These rules make both halves
explicit:

* VDB201 — every repro-internal import must match the declared allowed
  prefixes for its source package (``contracts.LAYERING``); lazy
  function-scope imports additionally get the documented cycle-breakers
  (``contracts.LAYERING_LAZY_EXTRA``) and nothing more.
* VDB202 — outside ``repro.observability`` itself, module-scope imports
  from the observability package are restricted to the no-op-able
  surface (instrument/tracing/metrics/sketch).  Profiler, export,
  quality, and slo must be imported lazily by the method that needs
  them, so core stays fast and importable with observability
  effectively off.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import contracts
from ..registry import Finding, Module, Rule, register


def resolve_import_target(
    module: Module, node: ast.Import | ast.ImportFrom
) -> list[str]:
    """Absolute dotted targets of an import statement (repro-internal
    relative imports resolved against the importing module)."""
    if isinstance(node, ast.Import):
        return [a.name for a in node.names]
    if node.level == 0:
        return [node.module] if node.module else []
    parts = module.module.split(".")
    if not module.path.endswith("__init__.py"):
        parts = parts[:-1]  # relative to the containing package
    up = node.level - 1
    if up >= len(parts):
        return []
    base = parts[: len(parts) - up] if up else parts
    return [".".join(base + ([node.module] if node.module else []))]


def _allowed(target: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        target == p or target.startswith(p + ".") for p in prefixes
    )


@register
class PackageDagRule(Rule):
    id = "VDB201"
    name = "layering-dag"
    invariant = (
        "repro-internal imports must follow the declared package DAG; "
        "lazy imports may additionally use the documented "
        "cycle-breakers, nothing else."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        pkg = module.package
        prefixes = contracts.LAYERING.get(pkg, ())
        if prefixes is None:  # facade / preset packages: anything goes
            return
        lazy_extra = contracts.LAYERING_LAZY_EXTRA.get(pkg, ())
        self_prefix = f"repro.{pkg}" if pkg else "repro"
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            at_module_scope = module.is_module_scope(node)
            for target in resolve_import_target(module, node):
                if target != "repro" and not target.startswith("repro."):
                    continue
                if target == "repro":
                    # importing the facade from inside the library is a
                    # guaranteed cycle
                    yield self.finding(
                        module,
                        node,
                        f"'{module.module}' imports the repro facade — "
                        "import the concrete module instead",
                    )
                    continue
                if _allowed(target, (self_prefix,)) or _allowed(
                    target, prefixes
                ):
                    continue
                if not at_module_scope and _allowed(target, lazy_extra):
                    continue
                where = (
                    "module scope"
                    if at_module_scope
                    else "function scope (lazy)"
                )
                yield self.finding(
                    module,
                    node,
                    f"package '{pkg or '(top)'}' must not import "
                    f"'{target}' at {where} — declared layering allows "
                    f"only {sorted(prefixes + lazy_extra) or 'nothing'} "
                    "(see repro.analysis.contracts.LAYERING)",
                )


@register
class ObservabilitySurfaceRule(Rule):
    id = "VDB202"
    name = "observability-optional"
    invariant = (
        "Outside repro.observability, module-scope observability "
        "imports are limited to the no-op-able surface (instrument/"
        "tracing/metrics/sketch); profiler, export, quality, and slo "
        "must be imported lazily."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if module.package in ("observability", ""):
            return  # the package itself and the facade re-export freely
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if not module.is_module_scope(node):
                continue
            for target in resolve_import_target(module, node):
                if target == "repro.observability" or target.startswith(
                    "repro.observability."
                ):
                    if target not in contracts.OBSERVABILITY_NOOPABLE:
                        yield self.finding(
                            module,
                            node,
                            f"module-scope import of '{target}' — only "
                            "the no-op-able observability surface "
                            f"({sorted(m.rsplit('.', 1)[1] for m in contracts.OBSERVABILITY_NOOPABLE)}) "
                            "may load eagerly; import this lazily in "
                            "the method that needs it",
                        )
