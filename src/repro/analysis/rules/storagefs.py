"""VDB6xx — atomic storage writes: no raw file mutation in storage.

Contract provenance: the torture rig's crash-recovery loops (PR 6)
enumerate every write-prefix of a snapshot save or LSM flush and assert
old-or-new recovery.  That proof only covers writes that flow through
``repro.storage.atomic`` — the temp-file + fsync + ``os.replace``
protocol behind the journal-able ``Filesystem`` seam.  A storage module
that calls ``open(path, "w")``, ``Path.write_text``, or ``np.savez``
directly reintroduces exactly the torn-write window the protocol closed,
*and* hides the operation from TortureFS, so the rig would stay green
while the crash bug ships.  VDB601 bans the raw idioms everywhere under
``src/repro/storage`` except the atomic writer itself.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from .. import contracts
from ..registry import Finding, Module, Rule, dotted_name, register

_REMEDY = "route it through repro.storage.atomic (Filesystem seam)"

#: ``open`` mode characters that make the call a write.
_WRITE_MODE_CHARS = frozenset("wax+")


def _covered(module: Module) -> bool:
    if any(fnmatch(module.path, g) for g in contracts.ATOMIC_WRITER_FILES):
        return False
    return any(fnmatch(module.path, g) for g in contracts.STORAGE_WRITE_GLOBS)


def _numpy_aliases(tree: ast.AST) -> set[str]:
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "numpy":
                    aliases.add(a.asname or "numpy")
    return aliases


def _open_write_mode(node: ast.Call) -> str | None:
    """The literal mode string when this ``open``/``.open`` call writes."""
    mode: ast.AST | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if _WRITE_MODE_CHARS & set(mode.value):
            return mode.value
    return None


@register
class AtomicStorageWritesRule(Rule):
    id = "VDB601"
    name = "atomic-storage-writes"
    invariant = (
        "Storage modules never mutate files with raw idioms (open-for-"
        "write, Path.write_text/write_bytes, ndarray.tofile, np.save*, "
        "os.replace/remove, shutil.*): every write flows through the "
        "atomic writer in repro.storage.atomic, whose Filesystem seam "
        "the crash-recovery torture loops journal and replay."
    )

    def check(self, module: Module) -> Iterator[Finding]:
        if not _covered(module):
            return
        numpy_names = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            # --- in-place writers: p.write_text(...), arr.tofile(...)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in contracts.RAW_WRITE_ATTR_CALLS
            ):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}() writes in place — a crash "
                    f"mid-call leaves a torn file; {_REMEDY}",
                )
                continue
            # --- open(path, "w") / path.open("w")
            if dotted == "open" or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "open"
            ):
                mode = _open_write_mode(node)
                if mode is not None:
                    yield self.finding(
                        module,
                        node,
                        f"open(..., {mode!r}) in a storage module writes "
                        f"without temp-file + rename; {_REMEDY}",
                    )
                continue
            if dotted is None:
                continue
            parts = dotted.split(".")
            # --- np.save / np.savez / np.savez_compressed straight to disk
            if (
                len(parts) == 2
                and parts[0] in numpy_names
                and parts[1] in contracts.RAW_WRITE_NP_FNS
            ):
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() writes straight to its path — serialize "
                    f"with npz_bytes() and {_REMEDY}",
                )
            # --- os.replace / os.remove / shutil.*: invisible to TortureFS
            elif dotted in contracts.RAW_FS_MUTATION_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() bypasses the Filesystem seam — the "
                    f"torture journal cannot see it; {_REMEDY}",
                )
