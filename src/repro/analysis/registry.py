"""Rule registry, the `Finding` record, and the per-module AST context.

A rule is a class with an ``id`` (``VDBnnn``), a default ``severity``,
a one-line ``invariant`` (shown by ``--list-rules`` and mirrored in the
docs), and a ``check(module)`` generator yielding :class:`Finding`
records with precise ``file:line:col`` positions.  Registration is a
decorator so adding a rule is one import away from being live.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Finding:
    """One violation at a precise source position."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    path: str  # repo-relative posix path
    line: int
    col: int  # 1-based column, matching editors
    message: str
    #: The stripped source line — baseline entries match on it so a
    #: suppression survives unrelated line-number drift.
    context: str = ""
    #: For interprocedural findings: the call path (function qualnames)
    #: the violation rides on.  Baseline entries may key on it (``via``)
    #: so a suppression covers one path, not every finding on the line.
    trace: tuple[str, ...] = ()

    @property
    def via(self) -> str:
        return " -> ".join(self.trace)

    @property
    def fails(self) -> bool:
        """info findings are advisory: reported, never build-breaking."""
        return self.severity != "info"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "trace": list(self.trace),
        }


@dataclass
class Module:
    """A parsed module plus the derived context every rule needs."""

    path: str  # repo-relative posix path, e.g. "src/repro/index/hnsw.py"
    module: str  # dotted module name, e.g. "repro.index.hnsw"
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent

    # ------------------------------------------------------------- accessors

    @property
    def package(self) -> str:
        """Top-level subpackage under ``repro`` ('' for repro/__init__)."""
        parts = self.module.split(".")
        return parts[1] if len(parts) >= 2 else ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def is_module_scope(self, node: ast.AST) -> bool:
        """True when ``node`` executes at import time (not inside a
        function or lambda; class bodies count as module scope)."""
        for anc in self.ancestors(node):
            if isinstance(
                anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return False
        return True

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def dotted_name(node: ast.AST) -> str | None:
    """Dotted form of a Name/Attribute chain (``a.b.c``), else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class; subclasses set the class attributes and ``check``."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    invariant: str = ""

    def check(self, module: Module) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError
        yield  # makes every override a generator by contract

    # ------------------------------------------------------------- helpers

    def finding(
        self,
        module: Module,
        node: ast.AST,
        message: str,
        severity: str | None = None,
        trace: tuple[str, ...] = (),
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=module.path,
            line=line,
            col=col,
            message=message,
            context=module.source_line(line),
            trace=trace,
        )


class ProjectRule(Rule):
    """A whole-program rule: sees the :class:`~repro.analysis.flow.
    engine.Project` (symbol table + call graph) instead of one module.

    The driver builds the project once per run from the shared parsed-
    module cache and hands the same instance to every project rule, so
    the graphs are computed once no matter how many VDB7xx rules run.
    """

    def check(self, module: Module) -> Iterator[Finding]:
        # Project rules only run at whole-project granularity.
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError
        yield


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id (imports the rule modules)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    from . import rules as _rules  # noqa: F401

    return _REGISTRY[rule_id]
