"""The vdblint driver: file discovery, rule execution, baseline gating.

Public entry points:

* :func:`analyze_source` — run the file rules over one source string
  with a virtual repo-relative path (what the fixture tests use);
* :func:`analyze_project_sources` — run the project (VDB7xx) rules over
  a dict of virtual files (interprocedural fixture tests);
* :func:`analyze_paths` — walk real files and aggregate findings;
* :func:`main` — the CLI behind ``python -m repro.analysis`` and the
  ``vdblint`` console script.

Every file is parsed exactly once per run: the same :class:`Module`
cache feeds the per-file rules and the whole-project
:class:`~repro.analysis.flow.engine.Project` the VDB7xx rules consume.
``--jobs N`` fans the per-file rules out over a process pool (each
worker parses only its chunk); the project rules always run in the
parent over the shared cache, since they need the whole call graph.

Exit codes: 0 clean, 1 non-baselined failing findings (or stale
baseline in ``--check`` mode, or ``--budget-seconds`` exceeded),
2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import subprocess
import sys
import time
import tomllib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .flow.engine import Project
from .registry import Finding, Module, ProjectRule, Rule, all_rules
from .reporting import render_json, render_rule_catalog, render_text

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "results"}


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/index/hnsw.py`` -> ``repro.index.hnsw``;
    ``src/repro/core/__init__.py`` -> ``repro.core``.
    """
    parts = Path(rel_path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_module(source: str, rel_path: str) -> Module:
    tree = ast.parse(source, filename=rel_path)
    return Module(
        path=Path(rel_path).as_posix(),
        module=module_name_for(rel_path),
        source=source,
        tree=tree,
    )


def _syntax_error_finding(rel: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="VDB000",
        severity="error",
        path=rel,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        message=f"syntax error: {exc.msg}",
    )


def iter_python_files(paths: list[str], repo_root: Path) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = repo_root / path
        if path.is_file() and path.suffix == ".py":
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(sub.parts):
                    out.append(sub)
    return out


def load_modules(
    files: list[Path], repo_root: Path
) -> tuple[list[Module], list[Finding]]:
    """Parse every file once; syntax errors become VDB000 findings."""
    modules: list[Module] = []
    findings: list[Finding] = []
    for path in files:
        rel = path.relative_to(repo_root).as_posix()
        try:
            modules.append(parse_module(path.read_text(), rel))
        except SyntaxError as exc:
            findings.append(_syntax_error_finding(rel, exc))
    return modules, findings


# --------------------------------------------------------------------------
# rule execution


@dataclass
class AnalysisResult:
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Per-rule wall time.  Under ``--jobs`` the file-rule entries are
    #: summed CPU seconds across workers, not elapsed wall time.
    rule_seconds: dict[str, float] = field(default_factory=dict)


def _split_rules(rules: list[Rule]) -> tuple[list[Rule], list[ProjectRule]]:
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def _run_file_rules(
    modules: list[Module],
    rules: list[Rule],
    rule_seconds: dict[str, float],
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        start = time.perf_counter()
        for module in modules:
            findings.extend(rule.check(module))
        rule_seconds[rule.id] = (
            rule_seconds.get(rule.id, 0.0) + time.perf_counter() - start
        )
    return findings


def _run_project_rules(
    modules: list[Module],
    rules: list[ProjectRule],
    rule_seconds: dict[str, float],
) -> list[Finding]:
    if not rules:
        return []
    project = Project(modules)
    findings: list[Finding] = []
    for rule in rules:
        start = time.perf_counter()
        findings.extend(rule.check_project(project))
        rule_seconds[rule.id] = (
            rule_seconds.get(rule.id, 0.0) + time.perf_counter() - start
        )
    return findings


def _worker_analyze(
    chunk: list[tuple[str, str]], rule_ids: list[str]
) -> tuple[list[Finding], dict[str, float]]:
    """Process-pool worker: parse one chunk, run the file rules."""
    from .registry import get_rule

    rules = [get_rule(rid) for rid in rule_ids]
    modules: list[Module] = []
    findings: list[Finding] = []
    for abs_path, rel in chunk:
        try:
            modules.append(parse_module(Path(abs_path).read_text(), rel))
        except SyntaxError as exc:
            findings.append(_syntax_error_finding(rel, exc))
    rule_seconds: dict[str, float] = {}
    findings.extend(_run_file_rules(modules, rules, rule_seconds))
    return findings, rule_seconds


def run_analysis(
    paths: list[str],
    repo_root: Path,
    rules: list[Rule] | None = None,
    jobs: int = 1,
    changed_only: bool = False,
) -> AnalysisResult:
    """The full pipeline: discover, parse once, run every rule tier."""
    rules = rules if rules is not None else all_rules()
    file_rules, project_rules = _split_rules(rules)
    files = iter_python_files(paths, repo_root)
    result = AnalysisResult(files_scanned=len(files))

    changed: set[str] | None = None
    if changed_only:
        changed = _changed_paths(repo_root)
        if changed is not None:
            files = [
                f
                for f in files
                if f.relative_to(repo_root).as_posix() in changed
            ]
            result.files_scanned = len(files)

    if jobs > 1 and len(files) > 1 and file_rules:
        rule_ids = [r.id for r in file_rules]
        pairs = [
            (str(f), f.relative_to(repo_root).as_posix()) for f in files
        ]
        jobs = min(jobs, len(pairs))
        chunks = [pairs[i::jobs] for i in range(jobs)]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for findings, seconds in pool.map(
                _worker_analyze, chunks, [rule_ids] * len(chunks)
            ):
                result.findings.extend(findings)
                for rid, sec in seconds.items():
                    result.rule_seconds[rid] = (
                        result.rule_seconds.get(rid, 0.0) + sec
                    )
        modules: list[Module] = []
        if project_rules:
            # The interprocedural rules need the whole project parsed
            # in-process regardless of how file rules were distributed.
            modules, _ = load_modules(files, repo_root)
    else:
        modules, syntax = load_modules(files, repo_root)
        result.findings.extend(syntax)
        result.findings.extend(
            _run_file_rules(modules, file_rules, result.rule_seconds)
        )

    if project_rules:
        if changed is not None:
            # Project rules see the WHOLE project (a changed caller can
            # break an unchanged callee's contract); only the findings
            # are scoped to the changed files.
            all_files = iter_python_files(paths, repo_root)
            modules, _ = load_modules(all_files, repo_root)
        elif not modules:
            modules, _ = load_modules(files, repo_root)
        project_findings = _run_project_rules(
            modules, project_rules, result.rule_seconds
        )
        if changed is not None:
            project_findings = [
                f for f in project_findings if f.path in changed
            ]
        result.findings.extend(project_findings)
    return result


def _changed_paths(repo_root: Path) -> set[str] | None:
    """Repo-relative paths changed vs HEAD (tracked) plus untracked.

    Returns None when git is unavailable — the caller falls back to a
    full scan rather than silently checking nothing.
    """
    out: set[str] = set()
    for args in (
        ["diff", "--name-only", "HEAD", "--"],
        ["ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                ["git", "-C", str(repo_root), *args],
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        out.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return out


# --------------------------------------------------------------------------
# fixture-test helpers


def analyze_source(
    source: str, rel_path: str, rules: list[Rule] | None = None
) -> list[Finding]:
    """Run the per-file rules over one source string."""
    module = parse_module(source, rel_path)
    findings: list[Finding] = []
    file_rules, _ = _split_rules(
        rules if rules is not None else all_rules()
    )
    for rule in file_rules:
        findings.extend(rule.check(module))
    return findings


def analyze_project_sources(
    sources: dict[str, str], rules: list[Rule] | None = None
) -> list[Finding]:
    """Run the project (VDB7xx) rules over virtual files.

    ``sources`` maps repo-relative paths to source strings; the whole
    dict forms one project, so fixtures can exercise interprocedural
    paths that span modules.
    """
    modules = [parse_module(src, rel) for rel, src in sources.items()]
    _, project_rules = _split_rules(
        rules if rules is not None else all_rules()
    )
    return _run_project_rules(modules, project_rules, {})


def analyze_paths(
    paths: list[str],
    repo_root: Path,
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """(findings, files_scanned) over every python file under paths."""
    result = run_analysis(paths, repo_root, rules)
    return result.findings, result.files_scanned


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor containing pyproject.toml (else ``start``)."""
    for candidate in [start, *start.parents]:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


# --------------------------------------------------------------------------
# CLI


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vdblint",
        description=(
            "AST-based invariant checker for the repro vector database: "
            "determinism, import layering, stats accounting, kernel "
            "boundaries, exception-safe observability, and the vdbflow "
            "interprocedural tier (call-graph blessing, clock-domain "
            "taint, hot-path allocation lints)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "gate mode: also fail (exit 1) on stale baseline entries, "
            "so the baseline shrinks monotonically"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"suppressions baseline (default: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline entirely (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="REASON",
        default=None,
        help=(
            "regenerate the baseline from the current failing findings, "
            "stamping REASON as the justification on every entry"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help=(
            "print the rule catalog (with per-rule wall time measured "
            "over the given paths) and exit"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the per-file rules across N processes",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "scope to files changed vs HEAD (plus untracked); the "
            "interprocedural rules still see the whole project but "
            "only report into changed files"
        ),
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the resolved call graph (JSON) and exit",
    )
    parser.add_argument(
        "--info",
        action="store_true",
        help="list info-severity advisories (default: count them only)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="fail (exit 1) when analysis wall time exceeds S seconds",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: nearest pyproject.toml)",
    )
    args = parser.parse_args(argv)

    repo_root = (
        Path(args.root).resolve()
        if args.root
        else find_repo_root(Path.cwd())
    )

    rules = all_rules()
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(f"vdblint: unknown rule id(s): {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.id in wanted]

    if args.graph:
        files = iter_python_files(args.paths, repo_root)
        modules, _ = load_modules(files, repo_root)
        print(json.dumps(Project(modules).graph_dump(), indent=2))
        return 0

    started = time.perf_counter()
    try:
        result = run_analysis(
            args.paths,
            repo_root,
            rules,
            jobs=max(1, args.jobs),
            changed_only=args.changed_only,
        )
    except OSError as exc:
        print(f"vdblint: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if args.list_rules:
        print(render_rule_catalog(result.rule_seconds))
        return 0

    findings = result.findings
    baseline_path = repo_root / (args.baseline or DEFAULT_BASELINE_PATH)
    if args.write_baseline is not None:
        baseline = Baseline(path=baseline_path)
        failing = [f for f in findings if f.fails]
        baseline.write(failing, args.write_baseline)
        print(
            f"vdblint: wrote {len(failing)} suppression(s) to "
            f"{baseline_path}"
        )
        return 0

    if args.no_baseline:
        new, suppressed, stale = findings, [], []
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, tomllib.TOMLDecodeError) as exc:
            print(f"vdblint: bad baseline: {exc}", file=sys.stderr)
            return 2
        new, suppressed, stale = baseline.split(findings)

    renderer = render_json if args.format == "json" else render_text
    print(
        renderer(
            new,
            suppressed,
            stale,
            result.files_scanned,
            show_info=args.info,
        )
    )

    over_budget = (
        args.budget_seconds is not None and elapsed > args.budget_seconds
    )
    if over_budget:
        print(
            f"vdblint: analysis took {elapsed:.2f}s, over the "
            f"--budget-seconds limit of {args.budget_seconds:.2f}s",
            file=sys.stderr,
        )

    if any(f.fails for f in new):
        return 1
    if args.check and stale:
        return 1
    if over_budget:
        return 1
    return 0
