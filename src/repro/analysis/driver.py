"""The vdblint driver: file discovery, rule execution, baseline gating.

Public entry points:

* :func:`analyze_source` — run the rules over one source string with a
  virtual repo-relative path (what the fixture tests use);
* :func:`analyze_paths` — walk real files and aggregate findings;
* :func:`main` — the CLI behind ``python -m repro.analysis`` and the
  ``vdblint`` console script.

Exit codes: 0 clean, 1 non-baselined findings (or stale baseline in
``--check`` mode), 2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
import tomllib
from pathlib import Path

from .baseline import DEFAULT_BASELINE_PATH, Baseline
from .registry import Finding, Module, Rule, all_rules
from .reporting import render_json, render_rule_catalog, render_text

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "results"}


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/index/hnsw.py`` -> ``repro.index.hnsw``;
    ``src/repro/core/__init__.py`` -> ``repro.core``.
    """
    parts = Path(rel_path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_module(source: str, rel_path: str) -> Module:
    tree = ast.parse(source, filename=rel_path)
    return Module(
        path=Path(rel_path).as_posix(),
        module=module_name_for(rel_path),
        source=source,
        tree=tree,
    )


def analyze_source(
    source: str, rel_path: str, rules: list[Rule] | None = None
) -> list[Finding]:
    """Run rules over one source string under a virtual path."""
    module = parse_module(source, rel_path)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(module))
    return findings


def iter_python_files(paths: list[str], repo_root: Path) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = repo_root / path
        if path.is_file() and path.suffix == ".py":
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(sub.parts):
                    out.append(sub)
    return out


def analyze_paths(
    paths: list[str],
    repo_root: Path,
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """(findings, files_scanned) over every python file under paths."""
    rules = rules if rules is not None else all_rules()
    findings: list[Finding] = []
    files = iter_python_files(paths, repo_root)
    for path in files:
        rel = path.relative_to(repo_root).as_posix()
        source = path.read_text()
        try:
            module = parse_module(source, rel)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="VDB000",
                    severity="error",
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            findings.extend(rule.check(module))
    return findings, len(files)


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor containing pyproject.toml (else ``start``)."""
    for candidate in [start, *start.parents]:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vdblint",
        description=(
            "AST-based invariant checker for the repro vector database: "
            "determinism, import layering, stats accounting, kernel "
            "boundaries, and exception-safe observability."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "gate mode: also fail (exit 1) on stale baseline entries, "
            "so the baseline shrinks monotonically"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"suppressions baseline (default: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline entirely (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="REASON",
        default=None,
        help=(
            "regenerate the baseline from the current findings, "
            "stamping REASON as the justification on every entry"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: nearest pyproject.toml)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0

    repo_root = (
        Path(args.root).resolve()
        if args.root
        else find_repo_root(Path.cwd())
    )

    rules = all_rules()
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(f"vdblint: unknown rule id(s): {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.id in wanted]

    try:
        findings, files_scanned = analyze_paths(
            args.paths, repo_root, rules
        )
    except OSError as exc:
        print(f"vdblint: {exc}", file=sys.stderr)
        return 2

    baseline_path = repo_root / (args.baseline or DEFAULT_BASELINE_PATH)
    if args.write_baseline is not None:
        baseline = Baseline(path=baseline_path)
        baseline.write(findings, args.write_baseline)
        print(
            f"vdblint: wrote {len(findings)} suppression(s) to "
            f"{baseline_path}"
        )
        return 0

    if args.no_baseline:
        new, suppressed, stale = findings, [], []
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, tomllib.TOMLDecodeError) as exc:
            print(f"vdblint: bad baseline: {exc}", file=sys.stderr)
            return 2
        new, suppressed, stale = baseline.split(findings)

    renderer = render_json if args.format == "json" else render_text
    print(renderer(new, suppressed, stale, files_scanned))

    if new:
        return 1
    if args.check and stale:
        return 1
    return 0
