"""The machine-checked contracts `vdblint` enforces.

Every table in this module is a *declaration* of an invariant the
codebase already relies on informally; the rule modules under
:mod:`repro.analysis.rules` turn them into findings.  The provenance of
each contract (which PR introduced it, and why) is catalogued in
``docs/static-analysis.md``.

Keeping the declarations in one module — instead of scattering literals
through the rules — makes a contract change a one-line, reviewable
diff, exactly like the suppressions baseline.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Determinism (VDB1xx).
#
# The repo's north star is reproducible experiments: every stochastic
# choice flows from a seeded ``np.random.Generator`` (or seeded
# ``random.Random`` instance), and the only *time source* is the
# simulated clock (reliability/distributed) or an injected ``clock``
# callable (observability).  ``time.perf_counter`` is deliberately NOT
# banned: it measures durations for observability and never feeds a
# decision.

#: Wall-clock *sources* (dotted call suffixes) banned everywhere under
#: ``src/repro``.  Durations must come from ``time.perf_counter`` /
#: an injected clock; timestamps must come from the simulated clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.clock_gettime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Legacy module-level numpy RNG entry points (global hidden state).
NP_RANDOM_LEGACY = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "integers",
        "laplace",
        "multivariate_normal",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: stdlib ``random`` module-level functions (global hidden state).
#: ``random.Random(seed)`` — a *seeded instance* — is the approved form.
STDLIB_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
    }
)

# --------------------------------------------------------------------------
# Import layering (VDB2xx).
#
# Allowed repro-internal import *prefixes* per top-level package
# (module-scope imports).  A target is allowed when it equals a prefix
# or extends it on a dot boundary.  ``None`` means "anything" (the
# package sits at the top of the stack).  Lazy (function-scope) imports
# get the union of the module-scope set and LAYERING_LAZY_EXTRA — the
# documented cycle-breakers.

LAYERING: dict[str, tuple[str, ...] | None] = {
    # repro/__init__.py and any future top-level module: the facade.
    "": None,
    "analysis": (),  # the linter imports nothing from the system under test
    "scores": ("repro.core.types", "repro.core.errors"),
    "embed": ("repro.core.types", "repro.core.errors", "repro.scores"),
    "quantization": (
        "repro.core.types",
        "repro.core.errors",
        "repro.index._kernels",
    ),
    "index": (
        "repro.core.types",
        "repro.core.errors",
        "repro.scores",
        "repro.quantization",
        "repro.storage.disk",
    ),
    "storage": (
        "repro.core.types",
        "repro.core.errors",
        "repro.observability.instrument",
        "repro.reliability",
    ),
    "observability": ("repro.index._kernels",),
    "hybrid": (
        "repro.core.types",
        "repro.core.errors",
        "repro.core.operators",
        "repro.index",
        "repro.scores",
        "repro.observability.tracing",
    ),
    "reliability": ("repro.core.types", "repro.core.errors"),
    "core": (
        "repro.scores",
        "repro.index",
        "repro.hybrid",
        "repro.quantization",
        "repro.storage",
        "repro.embed",
        "repro.observability",
    ),
    "distributed": (
        "repro.core",
        "repro.index",
        "repro.scores",
        "repro.quantization",
        "repro.hybrid",
        "repro.storage",
        "repro.observability",
        "repro.reliability",
    ),
    "security": ("repro.core", "repro.index", "repro.scores"),
    # The serving front door sits above the query engine: it may import
    # core/observability/reliability, but nothing imports serving.
    "serving": (
        "repro.core",
        "repro.index",
        "repro.scores",
        "repro.quantization",
        "repro.hybrid",
        "repro.observability",
        "repro.reliability",
    ),
    "torture": (
        "repro.core",
        "repro.index",
        "repro.scores",
        "repro.quantization",
        "repro.hybrid",
        "repro.storage",
        "repro.distributed",
        "repro.reliability",
        "repro.observability",
        "repro.bench",
    ),
    "bench": (
        "repro.core",
        "repro.index",
        "repro.scores",
        "repro.quantization",
        "repro.hybrid",
        "repro.systems",
        "repro.observability",
    ),
    "systems": None,
}

#: Additional prefixes allowed only for *function-scope* (lazy) imports:
#: the documented cycle-breakers.  Everything else stays forbidden even
#: when imported lazily — laziness hides a cycle, not a layering hole.
LAYERING_LAZY_EXTRA: dict[str, tuple[str, ...]] = {
    "storage": ("repro.core.collection", "repro.core.database"),
    "observability": ("repro.index._kernels",),
    "index": ("repro.core",),
    "scores": ("repro.core",),
}

#: Observability modules whose objects are no-op-able (they ship a
#: DISABLED / NOOP_* twin) and may therefore be imported at module scope
#: from the rest of the system.  The heavyweight modules (profiler,
#: export, quality, slo) must be imported lazily by the method that
#: needs them — core must stay importable and fast with observability
#: effectively absent.
OBSERVABILITY_NOOPABLE = frozenset(
    {
        "repro.observability.instrument",
        "repro.observability.tracing",
        "repro.observability.metrics",
        "repro.observability.sketch",
    }
)

# --------------------------------------------------------------------------
# Stats accounting (VDB3xx).
#
# ``SearchStats`` is the cost model's and the profiler's ground truth:
# ``attribution_residual() == 0`` only holds if counters are charged in
# the approved places.  The field list is kept in lockstep with
# ``repro.core.types.SearchStats`` (a test asserts equality).

SEARCH_STATS_FIELDS = frozenset(
    {
        "distance_computations",
        "nodes_visited",
        "page_reads",
        "candidates_examined",
        "predicate_evaluations",
        "predicate_rejections",
        "plan_name",
        "elapsed_seconds",
        "partial",
        "coverage_fraction",
        "shards_ok",
        "shards_failed",
        "merged_count",
    }
)

#: fnmatch globs (posix, repo-relative) of the modules approved to
#: mutate SearchStats-named counters.  Everything else — notably the
#: whole observability package (audit-isolation contract: the recall
#: auditor must never touch query-path stats), scores, quantization
#: (except the ADC searcher, which owns its stats twin), bench, embed —
#: must route accounting through these layers.
STATS_MUTATION_ALLOWLIST = (
    "src/repro/core/types.py",
    "src/repro/core/cost.py",  # the cost model *predicts* counters
    "src/repro/core/executor.py",
    "src/repro/core/operators.py",
    "src/repro/core/batched.py",
    "src/repro/core/multivector.py",
    "src/repro/core/incremental.py",
    "src/repro/core/updates.py",
    "src/repro/core/database.py",
    "src/repro/index/*.py",
    "src/repro/hybrid/*.py",
    "src/repro/storage/*.py",
    "src/repro/distributed/*.py",
    "src/repro/quantization/ivfadc.py",
    # The coalescer re-splits batch-level stats into per-request shares
    # (largest-remainder, sums conserved) — the one serving module that
    # writes SearchStats counters.
    "src/repro/serving/coalescer.py",
)

#: Base-class names that mark a class as part of the index `search`
#: contract: its ``search`` / ``_search`` / ``range_search`` overrides
#: must declare and thread a ``stats`` parameter.
INDEX_BASE_NAMES = frozenset({"VectorIndex", "GraphIndex", "TreeIndex"})

#: Duck-typed searchers outside repro/index that opted into the same
#: stats-threading contract: (module, class name).
STATS_THREADING_CLASSES = frozenset(
    {
        ("repro.core.updates", "BufferedVectorIndex"),
        ("repro.hybrid.partitioned", "AttributePartitionedIndex"),
    }
)

# --------------------------------------------------------------------------
# Kernel boundary (VDB4xx).
#
# The vectorized kernels assume float32 C-contiguous inputs
# (``ensure_f32c`` layout); violating that silently upcasts or strides
# the hot path.  Any call to these entry points must pass a matrix that
# is *blessed*: produced by ``ensure_f32c`` in the same function,
# stored on a ``._vectors`` / ``.vectors`` attribute (the build/ingest
# paths enforce the layout there), or derived from such a value.

#: kernel entry point name -> positional index of the vector-matrix arg
#: (keyword name is always ``vectors``).
KERNEL_ENTRYPOINTS: dict[str, int] = {
    "beam_search": 1,
    "beam_search_reference": 1,
    "batched_beam_search": 1,
    "greedy_walk": 1,
}

#: FastScan packed-layout boundary (VDB402): entry point name ->
#: positional index of the packed-codes argument (keyword name is
#: always ``packed``).  The (m_eff, n) uint8 scan layout is only
#: meaningful when produced by the blocked packers — handing
#: ``fastscan_accumulate`` a plain (n, m) code matrix type-checks but
#: scans garbage.
PACKED_KERNEL_ENTRYPOINTS: dict[str, int] = {
    "fastscan_accumulate": 1,
}

#: Call names blessed to *produce* the blocked layout.  A ``.packed``
#: attribute read off one of their results (directly or via a local
#: assignment) is the approved way to feed the accumulate kernel.
PACKED_PRODUCERS = frozenset(
    {"pack_codes_blocked", "gather_packed_cells", "concat_blocked"}
)

#: Modules that define the packed kernels (exempt from VDB402).
PACKED_DEFINING_MODULES = frozenset({"repro.quantization.fastscan"})

#: Attribute names whose values the ingest paths guarantee to be
#: float32 C-contiguous (``VectorIndex.build``, collection ingest).
BLESSED_VECTOR_ATTRS = frozenset({"_vectors", "vectors"})

#: Modules that *define* the kernels (exempt from VDB401 — they are the
#: boundary).
KERNEL_DEFINING_MODULES = frozenset(
    {"repro.index._kernels", "repro.index._graph"}
)

# --------------------------------------------------------------------------
# Exception-safe observability (VDB5xx).

#: Methods that create a span; their result must be ``with``-scoped (or
#: explicitly ``.finish()``-ed) in the creating function, returned to
#: the caller, or handed to another call that owns it.
SPAN_FACTORY_METHODS = frozenset({"start_span", "child"})

#: Span methods that chain (return the same span) — climbing through
#: these finds the expression that must be scoped.
SPAN_CHAINING_METHODS = frozenset(
    {"attach_stats", "set", "link", "set_stats_delta"}
)

#: Attribute names registered as long-lived span *owners*: storing a
#: span into one of these (``self._spans[tid] = span`` /
#: ``inflight.span = span``) is the approved hand-off for spans that
#: must outlive the creating function (e.g. the serving front door's
#: request roots, open across the queueing gap).  The owner's module is
#: then responsible for finishing them on every disposition path.
SPAN_OWNER_ATTRS = frozenset({"span", "root_span", "_spans"})

#: Attribute names that hold the no-op-able metric/tracing components.
#: Outside repro/observability they must never appear in a conditional
#: test — the no-op twins exist so call sites never branch.
OBSERVABILITY_COMPONENT_ATTRS = frozenset({"metrics", "tracer"})

#: Names that mark the approved normalization idiom
#: (``x if x is not None else NOOP_*``) and exempt it from VDB502.
NOOP_SENTINEL_MARKERS = ("NOOP", "DISABLED")

# --------------------------------------------------------------------------
# Atomic storage writes (VDB6xx).
#
# The crash-recovery loops of the torture rig only prove old-or-new
# recovery for writes that flow through the blessed atomic writer
# (``repro.storage.atomic``: temp file + fsync + ``os.replace``, journal
# -able via the ``Filesystem`` seam).  A bare ``open(..., "w")`` or
# ``Path.write_text`` in a storage module is a torn-write hazard the
# rig cannot even see, so VDB601 bans the raw idioms at the source.

#: fnmatch globs (posix, repo-relative) of the modules under the
#: atomic-write contract.
STORAGE_WRITE_GLOBS = ("src/repro/storage/*.py",)

#: The blessed atomic-writer module itself — the one place allowed to
#: touch the raw primitives (it *is* the boundary).
ATOMIC_WRITER_FILES = ("src/repro/storage/atomic.py",)

#: Attribute-call suffixes that write a file in place (no temp+rename).
RAW_WRITE_ATTR_CALLS = frozenset({"write_text", "write_bytes", "tofile"})

#: numpy functions that write straight to a path when handed one (the
#: approved form serializes to bytes first — ``npz_bytes`` — and hands
#: them to the atomic writer).
RAW_WRITE_NP_FNS = frozenset({"save", "savez", "savez_compressed"})

#: Filesystem-mutating stdlib calls that must go through the
#: ``Filesystem`` seam so TortureFS can journal them.
RAW_FS_MUTATION_CALLS = frozenset(
    {
        "os.replace",
        "os.rename",
        "os.renames",
        "os.remove",
        "os.unlink",
        "os.truncate",
        "shutil.move",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copyfileobj",
        "shutil.rmtree",
    }
)

# --------------------------------------------------------------------------
# Interprocedural flow (VDB7xx) — the vdbflow engine's contract tables.
#
# Hot entry points: the roots of the hot region.  Everything the call
# graph can reach from these (without crossing the cold boundary) is
# per-query serving-path code, where an avoidable copy or dtype
# promotion is a real regression; everything else is build/train/admin
# code where the same pattern is merely advisory.

#: Top-level function names that ARE the hot path (the vectorized
#: kernels and their reference twins — kept hot so the differential
#: oracles obey the same allocation discipline they measure against).
HOT_ENTRY_FUNCTIONS = frozenset(
    {
        "beam_search",
        "batched_beam_search",
        "greedy_walk",
        "fastscan_accumulate",
        "topk_indices",
    }
)

#: Hand-tuned kernel internals VDB703 does not second-guess: their
#: float64 accumulators are the documented precision boundary (heap
#: order must be stable across batch shapes) and their per-round
#: gathers/merges are the algorithm, not an accident.  The boundary
#: rules (VDB401/402/701) police what *enters* them instead.
ALLOC_TUNED_MODULES = frozenset(
    {
        "repro.index._kernels",
        "repro.index._graph",
        "repro.index._tree",
    }
)

#: ``Class.method`` suffixes declared hot: the executor dispatch
#: surface, the serving front door's batch execution, and the ADC
#: searchers.
HOT_ENTRY_METHODS = frozenset(
    {
        "QueryExecutor.execute",
        "QueryExecutor.execute_range",
        "QueryExecutor.execute_batch",
        "QueryExecutor.execute_multivector",
        "ServingFrontDoor._execute",
        "IvfAdc.search",
        "IvfAdc._search_blocked",
        "FastScanPQ.search",
    }
)

#: Method names that are hot when defined on an index-contract class
#: (the same class set VDB302/303 govern): every in-repo index search
#: override is a hot root, so resolution gaps on duck-typed dispatch
#: cannot silently cool the index layer.
HOT_ENTRY_SEARCH_METHODS = frozenset({"search", "_search", "range_search"})

#: Function names whose call edges LEAVE the hot region: reachable
#: build/train/calibration work is charged to ingest, not to queries.
COLD_BOUNDARY_NAMES = frozenset(
    {"build", "train", "fit", "calibrate", "rebuild", "merge_now"}
)

# --- clock-domain taint (VDB702) -----------------------------------------
#
# VDB101 bans wall-clock *sources*; VDB702 tracks the one approved
# probe's *flows*.  ``time.perf_counter`` exists to measure durations
# for observability — a perf_counter-derived value that steers control
# flow, feeds a scheduling/admission decision, or lands in a persisted
# artifact silently reintroduces the nondeterminism VDB101 exists to
# prevent.

#: Call suffixes that mint a wall-clock-domain value.
CLOCK_WALL_PROBES = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Packages whose *job* is timing: durations may be compared, ranked,
#: and exported there (slow-query thresholds, profiler buckets, bench
#: reporting).  Everywhere else a wall-clock value reaching a decision
#: is a determinism hole.
CLOCK_FLOW_EXEMPT_PACKAGES = frozenset(
    {"observability", "bench", "analysis", "torture"}
)

#: Blessed persistence entry points: a wall-clock-tainted argument
#: handed to these lands in an on-disk artifact, breaking bit-for-bit
#: crash-recovery comparison.
CLOCK_PERSIST_SINKS = frozenset({"atomic_write_bytes", "npz_bytes"})

# --- hot-path allocation lints (VDB703) ----------------------------------

#: numpy namespace calls that reallocate-and-copy on every invocation;
#: inside a per-query loop they turn O(n) work into O(n^2).
HOT_ALLOC_GROWTH_CALLS = frozenset(
    {
        "concatenate",
        "append",
        "vstack",
        "hstack",
        "stack",
        "column_stack",
        "block",
    }
)

#: numpy namespace calls assumed to return an ndarray — the local-type
#: seed for the Python-iteration and fancy-indexing heuristics.
NP_ARRAY_RETURNING = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "arange",
        "linspace",
        "zeros",
        "ones",
        "empty",
        "full",
        "argsort",
        "argpartition",
        "nonzero",
        "flatnonzero",
        "where",
        "take",
        "concatenate",
        "vstack",
        "hstack",
        "stack",
        "unique",
        "sort",
        "copy",
    }
)

#: Spellings of the float64 dtype in ``astype``/constructor position.
FLOAT64_MARKERS = frozenset({"float64", "double", "float_"})
