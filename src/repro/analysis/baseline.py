"""The suppressions baseline: grandfathered findings, tracked in TOML.

``analysis/baseline.toml`` holds the findings the team has explicitly
decided to tolerate.  New violations fail the build; baselined ones are
counted and reported as suppressed.  Every entry carries a mandatory
``justification`` — a baseline entry without one is itself an error.

Entries match on ``(rule, path, context)`` where ``context`` is the
stripped source line, so suppressions survive unrelated line-number
drift but die with the code they covered (a stale entry is reported so
the baseline shrinks monotonically).  Interprocedural (VDB7xx) findings
may additionally pin ``via`` — the call chain rendered by
``Finding.via`` — so a suppression covers one blame path through the
call graph rather than every path that lands on the same line.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from .registry import Finding

#: Default location, relative to the repository root.
DEFAULT_BASELINE_PATH = "analysis/baseline.toml"

_HEADER = """\
# vdblint suppressions baseline.
#
# Every entry grandfathers ONE existing violation; new violations fail
# `python -m repro.analysis --check` regardless of this file.  Entries
# match on (rule, path, context = the stripped source line), so they
# survive line drift but go stale when the code they covered changes —
# stale entries are reported and must be pruned.
#
# [[suppress]]
# rule = "VDB301"
# path = "src/repro/foo.py"
# context = "stats.nodes_visited += 1"
# via = "caller -> callee"        # optional; VDB7xx call-chain pin
# justification = "why this one violation is tolerated"

version = 1
"""


@dataclass(frozen=True)
class Suppression:
    rule: str
    path: str
    context: str = ""
    via: str = ""
    justification: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and (not self.context or self.context == finding.context)
            and (not self.via or self.via == finding.via)
        )


@dataclass
class Baseline:
    path: Path | None = None
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
        suppressions = []
        for entry in doc.get("suppress", []):
            if not entry.get("justification", "").strip():
                raise ValueError(
                    f"{path}: baseline entry for {entry.get('rule')} / "
                    f"{entry.get('path')} has no justification — every "
                    "suppression must say why"
                )
            suppressions.append(
                Suppression(
                    rule=entry["rule"],
                    path=entry["path"],
                    context=entry.get("context", ""),
                    via=entry.get("via", ""),
                    justification=entry["justification"],
                )
            )
        return cls(path=path, suppressions=suppressions)

    # --------------------------------------------------------------- filter

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[Suppression]]:
        """(new, suppressed, stale) partition of ``findings``."""
        new: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[int] = set()
        for finding in findings:
            hit = None
            for i, sup in enumerate(self.suppressions):
                if sup.matches(finding):
                    hit = i
                    break
            if hit is None:
                new.append(finding)
            else:
                used.add(hit)
                suppressed.append(finding)
        stale = [
            sup
            for i, sup in enumerate(self.suppressions)
            if i not in used
        ]
        return new, suppressed, stale

    # ---------------------------------------------------------------- write

    def write(self, findings: list[Finding], reason: str) -> None:
        """Regenerate the baseline file from ``findings`` (used by
        ``--write-baseline``; every entry gets ``reason``)."""
        if self.path is None:
            raise ValueError("baseline has no path")
        chunks = [_HEADER]
        for finding in sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        ):
            via_line = (
                f"via = {_toml_str(finding.via)}\n" if finding.trace else ""
            )
            chunks.append(
                "\n[[suppress]]\n"
                f'rule = "{finding.rule}"\n'
                f'path = "{finding.path}"\n'
                f'context = {_toml_str(finding.context)}\n'
                + via_line
                + f"justification = {_toml_str(reason)}\n"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("".join(chunks))


def _toml_str(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'
