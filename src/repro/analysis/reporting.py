"""Finding renderers: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter

from .baseline import Suppression
from .registry import Finding, all_rules


def render_text(
    new: list[Finding],
    suppressed: list[Finding],
    stale: list[Suppression],
    files_scanned: int,
    show_info: bool = False,
) -> str:
    failing = [f for f in new if f.fails]
    info = [f for f in new if not f.fails]
    shown = new if show_info else failing
    lines: list[str] = []
    for finding in sorted(
        shown, key=lambda f: (f.path, f.line, f.col, f.rule)
    ):
        lines.append(finding.render())
        if finding.context:
            lines.append(f"    | {finding.context}")
        if finding.trace:
            lines.append(f"    | via {finding.via}")
    for sup in stale:
        lines.append(
            f"{sup.path}: stale baseline entry for {sup.rule} "
            f"({sup.context or 'any line'}) — the violation it covered is "
            "gone; prune it"
        )
    by_rule = Counter(f.rule for f in failing)
    summary = (
        f"vdblint: {files_scanned} files, {len(failing)} finding(s)"
        + (f" [{', '.join(f'{r}×{n}' for r, n in sorted(by_rule.items()))}]" if by_rule else "")
        + (
            f", {len(info)} advisor(y/ies)"
            + ("" if show_info else " (--info to list)")
            if info
            else ""
        )
        + (f", {len(suppressed)} baselined" if suppressed else "")
        + (f", {len(stale)} stale baseline entr(y/ies)" if stale else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    suppressed: list[Finding],
    stale: list[Suppression],
    files_scanned: int,
    show_info: bool = True,
) -> str:
    shown = new if show_info else [f for f in new if f.fails]
    return json.dumps(
        {
            "files_scanned": files_scanned,
            "findings": [f.to_dict() for f in shown],
            "advisories": sum(1 for f in new if not f.fails),
            "suppressed": [f.to_dict() for f in suppressed],
            "stale_suppressions": [
                {"rule": s.rule, "path": s.path, "context": s.context}
                for s in stale
            ],
        },
        indent=2,
    )


def render_rule_catalog(rule_seconds: dict[str, float] | None = None) -> str:
    """The --list-rules table (mirrored in docs/static-analysis.md).

    With ``rule_seconds`` (per-rule wall time from a driver run), each
    row carries its measured cost, so slow rules are visible before
    they blow the CI budget.
    """
    lines = []
    for rule in all_rules():
        timing = ""
        if rule_seconds is not None and rule.id in rule_seconds:
            timing = f"  ({rule_seconds[rule.id]:.3f}s)"
        lines.append(f"{rule.id}  {rule.name} [{rule.severity}]{timing}")
        lines.append(f"    {rule.invariant}")
    return "\n".join(lines)
