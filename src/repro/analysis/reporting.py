"""Finding renderers: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter

from .baseline import Suppression
from .registry import Finding, all_rules


def render_text(
    new: list[Finding],
    suppressed: list[Finding],
    stale: list[Suppression],
    files_scanned: int,
) -> str:
    lines: list[str] = []
    for finding in sorted(new, key=lambda f: (f.path, f.line, f.col, f.rule)):
        lines.append(finding.render())
        if finding.context:
            lines.append(f"    | {finding.context}")
    for sup in stale:
        lines.append(
            f"{sup.path}: stale baseline entry for {sup.rule} "
            f"({sup.context or 'any line'}) — the violation it covered is "
            "gone; prune it"
        )
    by_rule = Counter(f.rule for f in new)
    summary = (
        f"vdblint: {files_scanned} files, {len(new)} finding(s)"
        + (f" [{', '.join(f'{r}×{n}' for r, n in sorted(by_rule.items()))}]" if by_rule else "")
        + (f", {len(suppressed)} baselined" if suppressed else "")
        + (f", {len(stale)} stale baseline entr(y/ies)" if stale else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    suppressed: list[Finding],
    stale: list[Suppression],
    files_scanned: int,
) -> str:
    return json.dumps(
        {
            "files_scanned": files_scanned,
            "findings": [f.to_dict() for f in new],
            "suppressed": [f.to_dict() for f in suppressed],
            "stale_suppressions": [
                {"rule": s.rule, "path": s.path, "context": s.context}
                for s in stale
            ],
        },
        indent=2,
    )


def render_rule_catalog() -> str:
    """The --list-rules table (mirrored in docs/static-analysis.md)."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name} [{rule.severity}]")
        lines.append(f"    {rule.invariant}")
    return "\n".join(lines)
