"""vdblint — AST-based invariant checker for the repro codebase.

Static analysis grounded in the VDBMS bug studies (Xie et al. 2025;
Wang et al. 2025): vector-database defects cluster in *silent contract
violations* — nondeterministic tie-breaking, wrong stats accounting,
dtype/layout mismatches at kernel boundaries, leaked instrumentation
state.  This package machine-checks the contracts PRs 1–4 established
informally; the declarations live in :mod:`repro.analysis.contracts`,
the rule implementations under :mod:`repro.analysis.rules`, and the
grandfathered-violation baseline in ``analysis/baseline.toml``.

Run it::

    python -m repro.analysis --check      # the CI gate
    vdblint --list-rules                  # the rule catalog
    vdblint src/repro/index --select VDB401

This package deliberately imports nothing from the rest of ``repro``
(enforced by its own layering rule), so the linter can analyze a tree
too broken to import.
"""

from .baseline import Baseline, Suppression
from .driver import analyze_paths, analyze_source, main
from .registry import Finding, Module, Rule, all_rules, get_rule, register

__all__ = [
    "Baseline",
    "Finding",
    "Module",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "main",
    "register",
]
