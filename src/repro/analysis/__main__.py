"""``python -m repro.analysis`` — the vdblint command line."""

import sys

from .driver import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # ``vdblint --list-rules | head`` closes the pipe early; exit
        # quietly like any well-behaved filter.
        sys.stderr.close()
        sys.exit(141)
