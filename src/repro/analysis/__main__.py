"""``python -m repro.analysis`` — the vdblint command line."""

import sys

from .driver import main

if __name__ == "__main__":
    sys.exit(main())
