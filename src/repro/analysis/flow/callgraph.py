"""The project call graph: resolved in-repo call edges with argument
binding.

Every :class:`~repro.analysis.flow.symbols.FunctionInfo` becomes a
node; an edge is a :class:`CallSite` — the ``ast.Call``, its resolved
callee(s), and enough information to bind argument expressions to
callee parameters.  Resolution covers:

* direct calls to module functions (through aliases, re-exports, and
  lazy imports — the symbol table's job);
* ``self.m()`` / ``cls.m()`` with base-chain lookup **and** subclass
  overrides (a call through a base class fans out to every in-repo
  override, approximating virtual dispatch);
* method calls on constructor-typed locals (``x = Klass(); x.m()``),
  annotated parameters (``def f(ix: VectorIndex)``), and
  ``self.attr.m()`` through inferred attribute types;
* ``super().m()``, ``Klass.m(...)``, constructors (edge to
  ``__init__``), and nested functions (including bare references passed
  as callbacks — they keep callback-driven code in the hot region).

Unresolvable receivers (ducks, externals) simply produce no edge; the
analyses built on top are designed to stay sound-for-their-purpose
under that under-approximation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..registry import Module
from .symbols import ClassInfo, FunctionInfo, SymbolTable, _dotted


@dataclass
class CallSite:
    """One resolved call edge (possibly polymorphic: many callees)."""

    caller: str  # FunctionInfo qualname
    call: ast.Call
    callees: tuple[str, ...]
    module: Module
    #: True when the receiver is an instance (``self.m()`` / ``x.m()``)
    #: or a constructor, so the callee's first parameter binds
    #: implicitly.
    implicit_self: bool = False
    #: True for a bare reference passed as a callback rather than a
    #: direct call — it counts for reachability, not for arg binding.
    reference_only: bool = False

    def bind_args(
        self, callee: FunctionInfo
    ) -> dict[str, ast.expr]:
        """Map callee parameter names to argument expressions."""
        if self.reference_only:
            return {}
        params = callee.params
        if self.implicit_self and params:
            params = params[1:]
        bound: dict[str, ast.expr] = {}
        for i, arg in enumerate(self.call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                bound[params[i]] = arg
        for kw in self.call.keywords:
            if kw.arg is not None:
                bound[kw.arg] = kw.value
        return bound


class CallGraph:
    """Call edges over the symbol table, indexed both ways."""

    def __init__(self, symtab: SymbolTable) -> None:
        self.symtab = symtab
        self.edges: list[CallSite] = []
        self._out: dict[str, list[CallSite]] = {}
        self._in: dict[str, list[CallSite]] = {}
        for fn in list(symtab.functions.values()):
            self._analyze_function(fn)

    # -------------------------------------------------------------- queries

    def out_edges(self, qualname: str) -> list[CallSite]:
        return self._out.get(qualname, [])

    def in_edges(self, qualname: str) -> list[CallSite]:
        return self._in.get(qualname, [])

    def successors(self, qualname: str) -> list[str]:
        return [c for site in self.out_edges(qualname) for c in site.callees]

    def callers(self, qualname: str) -> list[str]:
        return [site.caller for site in self.in_edges(qualname)]

    # ------------------------------------------------------------- building

    def _add(self, site: CallSite) -> None:
        self.edges.append(site)
        self._out.setdefault(site.caller, []).append(site)
        for callee in site.callees:
            self._in.setdefault(callee, []).append(site)

    def _analyze_function(self, fn: FunctionInfo) -> None:
        type_env = self._local_types(fn)
        for node in _own_body_walk(fn.node):
            if isinstance(node, ast.Call):
                self._resolve_call(fn, node, type_env)
                # Callback references: a bare in-project function name
                # passed as an argument keeps its body reachable.
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    self._maybe_reference(fn, node, arg)

    def _maybe_reference(
        self, fn: FunctionInfo, call: ast.Call, arg: ast.expr
    ) -> None:
        if not isinstance(arg, ast.Name):
            return
        nested = self.symtab.functions.get(f"{fn.qualname}.{arg.id}")
        target = nested or self.symtab.resolve_name(
            arg.id, fn.module, fn
        )
        if isinstance(target, FunctionInfo):
            self._add(
                CallSite(
                    caller=fn.qualname,
                    call=call,
                    callees=(target.qualname,),
                    module=fn.module,
                    reference_only=True,
                )
            )

    def _local_types(self, fn: FunctionInfo) -> dict[str, ClassInfo]:
        """Constructor-typed locals and class-annotated parameters."""
        env: dict[str, ClassInfo] = {}
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                typ = self.symtab._annotation_class(
                    arg.annotation, fn.module, fn
                )
                if typ is not None:
                    env[arg.arg] = typ
        for node in _own_body_walk(fn.node):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                resolved = self.symtab.resolve_expr(
                    value.func, fn.module, fn
                )
                if isinstance(resolved, ClassInfo):
                    env[target.id] = resolved
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and fn.owner is not None
            ):
                typ = fn.owner.attr_types.get(value.attr)
                if typ is not None:
                    env[target.id] = typ
        return env

    def _resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        type_env: dict[str, ClassInfo],
    ) -> None:
        func = call.func
        targets: list[FunctionInfo] = []
        implicit_self = False

        if isinstance(func, ast.Name):
            nested = self.symtab.functions.get(f"{fn.qualname}.{func.id}")
            resolved = nested or self.symtab.resolve_name(
                func.id, fn.module, fn
            )
            if isinstance(resolved, FunctionInfo):
                targets.append(resolved)
            elif isinstance(resolved, ClassInfo):
                init = resolved.find_method("__init__")
                if init is not None:
                    targets.append(init)
                    implicit_self = True
        elif isinstance(func, ast.Attribute):
            method_name = func.attr
            receiver = func.value
            # super().m()
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
                and fn.owner is not None
            ):
                for base in fn.owner.bases:
                    method = base.find_method(method_name)
                    if method is not None:
                        targets.append(method)
                        implicit_self = True
                        break
            else:
                cls = self._receiver_class(fn, receiver, type_env)
                if cls is not None:
                    targets.extend(_virtual_targets(cls, method_name))
                    implicit_self = True
                else:
                    resolved = self.symtab.resolve_expr(
                        func, fn.module, fn
                    )
                    if isinstance(resolved, FunctionInfo):
                        targets.append(resolved)
                        # ``Klass.method(obj, ...)`` binds self explicitly.
                        implicit_self = False
                    elif isinstance(resolved, ClassInfo):
                        init = resolved.find_method("__init__")
                        if init is not None:
                            targets.append(init)
                            implicit_self = True

        if targets:
            self._add(
                CallSite(
                    caller=fn.qualname,
                    call=call,
                    callees=tuple(
                        dict.fromkeys(t.qualname for t in targets)
                    ),
                    module=fn.module,
                    implicit_self=implicit_self,
                )
            )

    def _receiver_class(
        self,
        fn: FunctionInfo,
        receiver: ast.expr,
        type_env: dict[str, ClassInfo],
    ) -> ClassInfo | None:
        """The class of an instance receiver, when inferable."""
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and fn.owner is not None:
                return fn.owner
            return type_env.get(receiver.id)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
        ):
            if receiver.value.id == "self" and fn.owner is not None:
                return fn.owner.attr_types.get(receiver.attr)
            base = type_env.get(receiver.value.id)
            if base is not None:
                return base.attr_types.get(receiver.attr)
        if isinstance(receiver, ast.Call):
            resolved = self.symtab.resolve_expr(
                receiver.func, fn.module, fn
            )
            if isinstance(resolved, ClassInfo):
                return resolved
        return None


def _virtual_targets(cls: ClassInfo, method_name: str) -> list[FunctionInfo]:
    """The statically-resolved method plus every subclass override."""
    out: list[FunctionInfo] = []
    method = cls.find_method(method_name)
    if method is not None:
        out.append(method)
    for sub in cls.all_subclasses():
        override = sub.methods.get(method_name)
        if override is not None:
            out.append(override)
    return out


def _own_body_walk(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
):
    """Walk a function body without descending into nested defs (nested
    functions are their own call-graph nodes; lambdas stay inline)."""
    stack: list[ast.AST] = list(
        ast.iter_child_nodes(fn)
    )
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
