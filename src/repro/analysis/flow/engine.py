"""The :class:`Project` — what a ``ProjectRule`` receives.

One ``Project`` is built per lint run from the shared parsed-module
cache; the symbol table and call graph are built lazily (a run with
``--select VDB101`` never pays for them) and cached, so every VDB7xx
rule sees the same graph.  The hot region — the call-graph closure of
the contract-declared hot entry points, cut at the cold boundary
(build/train edges) — is computed here because two analyses and the
``--graph`` dump all need it.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from .. import contracts
from ..registry import Module
from .callgraph import CallGraph
from .lattice import reachable
from .symbols import FunctionInfo, SymbolTable


class Project:
    """All parsed modules of one lint run plus the derived graphs."""

    def __init__(self, modules: list[Module]) -> None:
        self.modules = list(modules)
        self.by_path: dict[str, Module] = {m.path: m for m in modules}
        self._symtab: SymbolTable | None = None
        self._callgraph: CallGraph | None = None
        self._hot: set[str] | None = None

    @property
    def symtab(self) -> SymbolTable:
        if self._symtab is None:
            self._symtab = SymbolTable(self.modules)
        return self._symtab

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.symtab)
        return self._callgraph

    # ------------------------------------------------------------ hot region

    def hot_entry_points(self) -> list[FunctionInfo]:
        """Functions the contracts declare as hot-path roots."""
        roots: list[FunctionInfo] = []
        for fn in self.symtab.functions.values():
            if self._is_hot_entry(fn):
                roots.append(fn)
        return roots

    def _is_hot_entry(self, fn: FunctionInfo) -> bool:
        if fn.owner is None and fn.parent is None:
            if fn.name in contracts.HOT_ENTRY_FUNCTIONS:
                return True
        if fn.owner is not None:
            suffix = f"{fn.owner.name}.{fn.name}"
            if suffix in contracts.HOT_ENTRY_METHODS:
                return True
            if fn.name in contracts.HOT_ENTRY_SEARCH_METHODS and (
                fn.owner.inherits_any(contracts.INDEX_BASE_NAMES)
                or (fn.owner.module.module, fn.owner.name)
                in contracts.STATS_THREADING_CLASSES
            ):
                return True
        return False

    def hot_region(self) -> set[str]:
        """Qualnames reachable from the hot entry points, not crossing
        the cold boundary (build/train/calibrate edges leave the
        serving hot path by declaration)."""
        if self._hot is None:
            roots = [
                fn.qualname
                for fn in self.hot_entry_points()
                if fn.name not in contracts.COLD_BOUNDARY_NAMES
            ]
            graph = self.callgraph

            def successors(qualname: str):
                for callee in graph.successors(qualname):
                    fn = self.symtab.functions.get(callee)
                    if fn is not None and (
                        fn.name in contracts.COLD_BOUNDARY_NAMES
                    ):
                        continue
                    yield callee

            self._hot = reachable(roots, successors)
        return self._hot

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.hot_region()

    # ---------------------------------------------------------------- dumps

    def graph_dump(self) -> dict:
        """JSON-ready call-graph dump (the ``--graph`` CLI flag)."""
        hot = self.hot_region()
        edges = []
        for site in self.callgraph.edges:
            for callee in site.callees:
                edges.append(
                    {
                        "caller": site.caller,
                        "callee": callee,
                        "path": site.module.path,
                        "line": site.call.lineno,
                        "kind": (
                            "ref" if site.reference_only else "call"
                        ),
                    }
                )
        return {
            "functions": len(self.symtab.functions),
            "classes": len(self.symtab.classes),
            "edges": edges,
            "hot_entry_points": sorted(
                fn.qualname for fn in self.hot_entry_points()
            ),
            "hot_region": sorted(hot),
        }


def module_matches(module: Module, globs: tuple[str, ...]) -> bool:
    return any(fnmatch(module.path, g) for g in globs)


def call_name(node: ast.Call) -> str | None:
    """Trailing name of the called expression (VDB401's convention)."""
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None
