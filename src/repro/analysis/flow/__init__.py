"""vdbflow — the interprocedural dataflow engine under the VDB7xx rules.

Three layers, each usable on its own:

* :mod:`~repro.analysis.flow.symbols` — a project-wide symbol table:
  module / class / function resolution for in-repo names, aware of
  aliases, re-exports through ``__init__`` chains, relative imports,
  and function-scope (lazy) imports;
* :mod:`~repro.analysis.flow.callgraph` — a call graph over those
  symbols: direct calls, ``self.``/``cls.`` method dispatch with
  subclass overrides, constructor-typed locals, annotated parameters,
  and nested-function edges, with argument→parameter binding per edge;
* :mod:`~repro.analysis.flow.lattice` — a small monotone fixed-point
  solver the analyses share (demand propagation, taint summaries,
  reachability), guaranteed to terminate on cyclic call graphs.

:mod:`~repro.analysis.flow.engine` ties them into a :class:`Project` —
the object a :class:`~repro.analysis.registry.ProjectRule` receives.
The linter stays import-free of the system under test: everything here
works on ASTs alone, so a tree too broken to import still analyzes.
"""

from .callgraph import CallGraph, CallSite
from .engine import Project
from .lattice import FixedPoint
from .symbols import ClassInfo, FunctionInfo, SymbolTable

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FixedPoint",
    "FunctionInfo",
    "Project",
    "SymbolTable",
]
