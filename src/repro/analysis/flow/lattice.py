"""A small monotone fixed-point solver shared by the flow analyses.

The VDB7xx analyses are all instances of the same shape: a fact per
call-graph node, a monotone transfer function that recomputes a node's
fact from its own body plus the current facts of its dependencies, and
a worklist that re-enqueues dependents when a fact grows.  Facts must
only ever *grow* (by ``!=`` comparison after a join-like transfer), so
on a finite lattice the solver terminates even when the call graph is
cyclic — each node is revisited at most ``height(lattice)`` times.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Hashable, Iterable, TypeVar

N = TypeVar("N", bound=Hashable)
F = TypeVar("F")


class FixedPoint(Generic[N, F]):
    """Worklist iteration to a fixed point over a dependency graph.

    Parameters
    ----------
    transfer:
        ``transfer(node, facts)`` returns the node's new fact given the
        current fact map.  It must be monotone: enlarging any input
        fact may only enlarge the output.
    dependents:
        ``dependents(node)`` yields the nodes whose facts must be
        recomputed when ``node``'s fact changes (for call-graph
        summaries: the node's callers).
    max_rounds:
        Safety valve: an analysis whose transfer is accidentally
        non-monotone raises instead of spinning.  The default is far
        above anything a real repo produces.
    """

    def __init__(
        self,
        transfer: Callable[[N, dict[N, F]], F],
        dependents: Callable[[N], Iterable[N]],
        max_rounds: int = 1_000_000,
    ) -> None:
        self._transfer = transfer
        self._dependents = dependents
        self._max_rounds = max_rounds

    def solve(self, nodes: Iterable[N], initial: F) -> dict[N, F]:
        """Iterate ``transfer`` until every node's fact is stable."""
        facts: dict[N, F] = {}
        order = list(nodes)
        for node in order:
            facts[node] = initial
        work: deque[N] = deque(order)
        queued = set(order)
        rounds = 0
        while work:
            rounds += 1
            if rounds > self._max_rounds:
                raise RuntimeError(
                    "fixed-point solver exceeded its round budget — "
                    "a transfer function is not monotone"
                )
            node = work.popleft()
            queued.discard(node)
            new = self._transfer(node, facts)
            if new != facts[node]:
                facts[node] = new
                for dep in self._dependents(node):
                    if dep in facts and dep not in queued:
                        work.append(dep)
                        queued.add(dep)
        return facts


def reachable(
    roots: Iterable[N], successors: Callable[[N], Iterable[N]]
) -> set[N]:
    """Forward closure of ``roots`` under ``successors`` (plain BFS —
    the degenerate boolean instance of the solver, kept direct because
    the hot-region computation runs on every lint invocation)."""
    seen: set[N] = set()
    work = deque(roots)
    while work:
        node = work.popleft()
        if node in seen:
            continue
        seen.add(node)
        work.extend(successors(node))
    return seen
