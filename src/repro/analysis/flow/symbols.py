"""Project-wide symbol table: who defines what, and what names mean.

Built once per lint run from the already-parsed :class:`Module` cache
(no re-parsing, no importing).  The table answers two questions:

* *definition*: every function, method, and class in the project gets a
  :class:`FunctionInfo` / :class:`ClassInfo` keyed by dotted qualname
  (``repro.core.executor.QueryExecutor.execute``);
* *resolution*: given a name as written at some scope — through
  ``import x as y`` aliases, ``from .foo import bar`` relative imports,
  re-export chains in ``__init__`` modules, module-level ``alias =
  target`` assignments, and function-scope (lazy) imports — find the
  symbol it denotes, or ``None`` for anything outside the project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..registry import Module


@dataclass
class FunctionInfo:
    """One function or method definition (nested defs included)."""

    qualname: str
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: "ClassInfo | None" = None
    parent: "FunctionInfo | None" = None  # enclosing function, if nested
    #: Function-scope import bindings (lazy imports): local name -> fq.
    scope_imports: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]

    @property
    def is_method(self) -> bool:
        return self.owner is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    """One class definition plus its resolved hierarchy."""

    qualname: str
    module: Module
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list["ClassInfo"] = field(default_factory=list)
    subclasses: list["ClassInfo"] = field(default_factory=list)
    #: Raw base names as written (for contract tables that match on
    #: e.g. ``VectorIndex`` without resolving it).
    base_names: set[str] = field(default_factory=set)
    #: ``self.<attr>`` -> ClassInfo, inferred from constructor-typed
    #: assignments and annotated parameters stored on self.
    attr_types: dict[str, "ClassInfo"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def find_method(self, name: str) -> FunctionInfo | None:
        """Method lookup through the (DFS-linearized) base chain."""
        seen: set[str] = set()
        stack: list[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def all_subclasses(self) -> list["ClassInfo"]:
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = list(self.subclasses)
        while stack:
            cls = stack.pop()
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            out.append(cls)
            stack.extend(cls.subclasses)
        return out

    def inherits_any(self, names: frozenset[str] | set[str]) -> bool:
        """True when this class or any ancestor names a base in ``names``."""
        seen: set[str] = set()
        stack: list[ClassInfo] = [self]
        while stack:
            cls = stack.pop()
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if cls.base_names & names:
                return True
            stack.extend(cls.bases)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qualname})"


@dataclass
class _ModuleEntry:
    module: Module
    #: Module-scope bindings: local name -> fully-qualified target.
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-scope ``alias = target`` assignments (re-export idiom).
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _import_bindings(
    node: ast.Import | ast.ImportFrom, module_name: str, is_package: bool
) -> dict[str, str]:
    """Local-name -> fully-qualified-target for one import statement."""
    out: dict[str, str] = {}
    if isinstance(node, ast.Import):
        for a in node.names:
            # ``import a.b.c`` binds ``a``; ``import a.b.c as x`` binds x.
            if a.asname:
                out[a.asname] = a.name
            else:
                out[a.name.split(".")[0]] = a.name.split(".")[0]
    else:
        base = node.module or ""
        if node.level:
            parts = module_name.split(".")
            if not is_package:
                parts = parts[:-1]
            parts = parts[: len(parts) - (node.level - 1)]
            base = ".".join(parts + ([node.module] if node.module else []))
        for a in node.names:
            if a.name == "*":
                continue
            out[a.asname or a.name] = f"{base}.{a.name}" if base else a.name
    return out


class SymbolTable:
    """Definitions and name resolution across a set of parsed modules."""

    def __init__(self, modules: list[Module]) -> None:
        self._entries: dict[str, _ModuleEntry] = {}
        self._by_path: dict[str, _ModuleEntry] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for module in modules:
            self._index_module(module)
        self._resolve_hierarchy()
        self._infer_attr_types()

    # ------------------------------------------------------------ indexing

    def _index_module(self, module: Module) -> None:
        entry = _ModuleEntry(module=module)
        is_package = module.path.endswith("__init__.py")
        self._entries[module.module] = entry
        self._by_path[module.path] = entry
        assert isinstance(module.tree, ast.Module)
        for stmt in module.tree.body:
            self._index_statement(stmt, module, entry, is_package)

    def _index_statement(
        self,
        stmt: ast.stmt,
        module: Module,
        entry: _ModuleEntry,
        is_package: bool,
    ) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            entry.imports.update(
                _import_bindings(stmt, module.module, is_package)
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = self._index_function(stmt, module, None, None)
            entry.functions[info.name] = info
        elif isinstance(stmt, ast.ClassDef):
            info = self._index_class(stmt, module)
            entry.classes[info.name] = info
        elif isinstance(stmt, ast.Assign):
            target = stmt.targets[0] if len(stmt.targets) == 1 else None
            dotted = _dotted(stmt.value)
            if isinstance(target, ast.Name) and dotted:
                entry.aliases[target.id] = dotted
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks still bind names.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._index_statement(sub, module, entry, is_package)

    def _index_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        module: Module,
        owner: ClassInfo | None,
        parent: FunctionInfo | None,
    ) -> FunctionInfo:
        if owner is not None:
            qual = f"{owner.qualname}.{node.name}"
        elif parent is not None:
            qual = f"{parent.qualname}.{node.name}"
        else:
            qual = f"{module.module}.{node.name}"
        info = FunctionInfo(
            qualname=qual, module=module, node=node, owner=owner,
            parent=parent,
        )
        is_package = module.path.endswith("__init__.py")
        for stmt in node.body:
            self._collect_scope(stmt, info, module, is_package)
        self.functions[qual] = info
        return info

    def _collect_scope(
        self,
        stmt: ast.stmt,
        info: FunctionInfo,
        module: Module,
        is_package: bool,
    ) -> None:
        """Record lazy imports and nested defs directly under ``info``."""
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            info.scope_imports.update(
                _import_bindings(stmt, module.module, is_package)
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._index_function(stmt, module, None, info)
        elif isinstance(stmt, ast.ClassDef):
            pass  # function-local classes stay out of the global table
        else:
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._collect_scope(sub, info, module, is_package)

    def _index_class(self, node: ast.ClassDef, module: Module) -> ClassInfo:
        qual = f"{module.module}.{node.name}"
        info = ClassInfo(qualname=qual, module=module, node=node)
        for base in node.bases:
            name = _dotted(base)
            if name:
                info.base_names.add(name.split(".")[-1])
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._index_function(stmt, module, info, None)
                info.methods[method.name] = method
        self.classes[qual] = info
        return info

    # -------------------------------------------------------- hierarchy

    def _resolve_hierarchy(self) -> None:
        for cls in self.classes.values():
            for base in cls.node.bases:
                resolved = self.resolve_expr(base, cls.module, None)
                if isinstance(resolved, ClassInfo):
                    cls.bases.append(resolved)
                    resolved.subclasses.append(cls)

    def _infer_attr_types(self) -> None:
        """``self.x = Klass(...)`` / annotated params stored on self."""
        for cls in self.classes.values():
            for method in cls.methods.values():
                ann: dict[str, ClassInfo] = {}
                for arg in (
                    *method.node.args.posonlyargs,
                    *method.node.args.args,
                    *method.node.args.kwonlyargs,
                ):
                    if arg.annotation is not None:
                        typ = self._annotation_class(
                            arg.annotation, cls.module, method
                        )
                        if typ is not None:
                            ann[arg.arg] = typ
                for node in ast.walk(method.node):
                    target = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    else:
                        continue
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    typ = None
                    if isinstance(value, ast.Call):
                        resolved = self.resolve_expr(
                            value.func, cls.module, method
                        )
                        if isinstance(resolved, ClassInfo):
                            typ = resolved
                    elif isinstance(value, ast.Name):
                        typ = ann.get(value.id)
                    if isinstance(node, ast.AnnAssign) and typ is None:
                        typ = self._annotation_class(
                            node.annotation, cls.module, method
                        )
                    if typ is not None:
                        cls.attr_types.setdefault(target.attr, typ)

    def _annotation_class(
        self,
        annotation: ast.expr,
        module: Module,
        fn: FunctionInfo | None,
    ) -> ClassInfo | None:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        # ``X | None`` → try X; ``Optional[X]`` / ``list[X]`` stay opaque.
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            for side in (annotation.left, annotation.right):
                resolved = self._annotation_class(side, module, fn)
                if resolved is not None:
                    return resolved
            return None
        resolved = self.resolve_expr(annotation, module, fn)
        return resolved if isinstance(resolved, ClassInfo) else None

    # ------------------------------------------------------- resolution

    def module_entry(self, name: str) -> _ModuleEntry | None:
        return self._entries.get(name)

    def resolve_expr(
        self,
        expr: ast.expr,
        module: Module,
        fn: FunctionInfo | None,
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve a Name/Attribute expression at the given scope."""
        dotted = _dotted(expr)
        if dotted is None:
            return None
        return self.resolve_name(dotted, module, fn)

    def resolve_name(
        self,
        dotted: str,
        module: Module,
        fn: FunctionInfo | None,
    ) -> FunctionInfo | ClassInfo | None:
        entry = self._entries.get(module.module)
        if entry is None:
            return None
        head, _, rest = dotted.partition(".")
        target: str | None = None
        scope = fn
        while scope is not None and target is None:
            target = scope.scope_imports.get(head)
            scope = scope.parent
        if target is None:
            target = entry.imports.get(head)
        if target is None and head in entry.functions:
            target = entry.functions[head].qualname
        if target is None and head in entry.classes:
            target = entry.classes[head].qualname
        if target is None and head in entry.aliases:
            return self.resolve_name(
                entry.aliases[head] + (f".{rest}" if rest else ""),
                module,
                fn,
            )
        if target is None:
            return None
        return self.resolve_qualname(f"{target}.{rest}" if rest else target)

    def resolve_qualname(
        self, qualname: str, _depth: int = 0
    ) -> FunctionInfo | ClassInfo | None:
        """Canonicalize a dotted name through re-export chains."""
        if _depth > 16:  # re-export cycle guard
            return None
        if qualname in self.functions:
            return self.functions[qualname]
        if qualname in self.classes:
            return self.classes[qualname]
        # Longest module prefix, then follow that module's bindings.
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            entry = self._entries.get(mod_name)
            if entry is None:
                continue
            head, rest = parts[cut], parts[cut + 1 :]
            target: str | None = None
            if head in entry.functions:
                target = entry.functions[head].qualname
            elif head in entry.classes:
                target = entry.classes[head].qualname
            elif head in entry.imports:
                target = entry.imports[head]
            elif head in entry.aliases:
                # module-scope alias may itself be a local name
                resolved = self.resolve_name(
                    ".".join([entry.aliases[head], *rest]),
                    entry.module,
                    None,
                )
                if resolved is not None:
                    return resolved
                target = None
            if target is not None:
                return self.resolve_qualname(
                    ".".join([target, *rest]), _depth + 1
                )
            # Class attribute chain: Klass.method
            if rest == [] and cut < len(parts):
                pass
            break
        # ``repro.x.Klass.method`` — resolve the class, then the method.
        for cut in range(len(parts) - 1, 0, -1):
            cls_name = ".".join(parts[:cut])
            if cls_name in self.classes and len(parts) - cut == 1:
                method = self.classes[cls_name].find_method(parts[-1])
                if method is not None:
                    return method
        return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
