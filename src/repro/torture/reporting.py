"""Findings and reports for the torture rig (vdblint-style, seed-first).

Every violated oracle becomes a :class:`TortureFinding` that names the
*rule* (a stable tag like ``MR-INSERT-ORDER`` or ``CRASH-DB-TORN``),
the *seed* that generated the instance, the *subject* (index name,
relation, crash point), and a one-line shell command that reproduces
exactly that finding.  A green run is an empty findings list plus the
number of oracle checks that executed — silent no-op runs are
indistinguishable from passes otherwise, so the report always counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["TortureFinding", "TortureReport"]


@dataclass(frozen=True)
class TortureFinding:
    """One violated oracle, reproducible from (rule, subject, seed)."""

    rule: str  # stable tag, e.g. "MR-DELETE-LIVENESS", "DIFF-RECALL"
    pillar: str  # "crash" | "metamorphic" | "differential"
    subject: str  # index / relation / crash-point the oracle ran against
    seed: int
    message: str
    repro: str  # shell command reproducing this one finding

    def render(self) -> str:
        return (
            f"{self.rule} [{self.pillar}] {self.subject} seed={self.seed}: "
            f"{self.message}\n    repro: {self.repro}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "pillar": self.pillar,
            "subject": self.subject,
            "seed": self.seed,
            "message": self.message,
            "repro": self.repro,
        }


@dataclass
class TortureReport:
    """Outcome of one rig invocation: checks executed, oracles violated."""

    depth: str = "smoke"
    seed: int = 0
    findings: list[TortureFinding] = field(default_factory=list)
    #: Oracle evaluations per pillar — proof the rig actually ran.
    checks: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def count(self, pillar: str, n: int = 1) -> None:
        self.checks[pillar] = self.checks.get(pillar, 0) + n

    def add(self, finding: TortureFinding) -> None:
        self.findings.append(finding)

    def merge(self, other: "TortureReport") -> None:
        self.findings.extend(other.findings)
        for pillar, n in other.checks.items():
            self.count(pillar, n)

    def render(self) -> str:
        lines = [
            f"torture: depth={self.depth} seed={self.seed} — "
            f"{self.total_checks} checks, {len(self.findings)} finding(s)"
        ]
        for pillar in sorted(self.checks):
            lines.append(f"  {pillar}: {self.checks[pillar]} checks")
        for finding in self.findings:
            lines.append(finding.render())
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "depth": self.depth,
                "seed": self.seed,
                "ok": self.ok,
                "checks": self.checks,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )
