"""``python -m repro.torture`` — run the torture rig CLI."""

import sys

from .driver import main

if __name__ == "__main__":
    sys.exit(main())
