"""Metamorphic relations as first-class, registry-driven checks.

A metamorphic relation (VDBMS testing roadmap, arXiv:2502.20812) links
two executions whose outputs must agree even when no ground truth is
known: permuting insertion order, decomposing a filter, widening a
rerank budget, re-sharding a collection, deleting rows.  Each relation
here is a named entry in :data:`RELATIONS` that any index from
:mod:`repro.index.registry` can be run against with seeded random
workloads; violations come back as rule-tagged
:class:`~repro.torture.reporting.TortureFinding`\\ s whose ``repro``
command replays exactly one (relation, index, seed) cell.

Adding a relation is one decorated function::

    @relation("my-relation", "what must hold and why")
    def _my_relation(index_name, seed, emit, check):
        ...
        check()                      # count one oracle evaluation
        emit("MR-MY-RELATION", "what diverged, with numbers")

``emit`` records a finding; ``check`` counts an oracle evaluation so a
green report proves the relation actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..hybrid.predicates import And, Comparison, Not, Or
from .reporting import TortureFinding, TortureReport
from .zoo import (
    EXACT_INDEXES,
    ORDER_OVERLAP_FLOOR,
    RERANKED,
    make_torture_index,
    recall_at_k,
    torture_dataset,
    torture_hybrid_dataset,
)

__all__ = ["RELATIONS", "Relation", "relation", "run_metamorphic"]


@dataclass(frozen=True)
class Relation:
    """One registered metamorphic relation."""

    name: str
    description: str
    fn: Callable

    def run(self, index_name: str, seed: int, report: TortureReport) -> None:
        def emit(rule: str, message: str) -> None:
            report.add(TortureFinding(
                rule=rule,
                pillar="metamorphic",
                subject=f"{self.name}:{index_name}",
                seed=seed,
                message=message,
                repro=(
                    f"torture --pillar metamorphic --relation {self.name} "
                    f"--index {index_name} --seed {seed}"
                ),
            ))

        def check(n: int = 1) -> None:
            report.count("metamorphic", n)

        self.fn(index_name, seed, emit, check)


RELATIONS: dict[str, Relation] = {}


def relation(name: str, description: str):
    """Register a metamorphic relation under ``name``."""

    def decorator(fn: Callable) -> Callable:
        RELATIONS[name] = Relation(name=name, description=description, fn=fn)
        return fn

    return decorator


def _mean_overlap(index_a, index_b, queries, k: int) -> float:
    overlaps = []
    for q in queries:
        ids_a = [h.id for h in index_a.search(q, k)]
        ids_b = [h.id for h in index_b.search(q, k)]
        denom = max(len(ids_a), len(ids_b), 1)
        overlaps.append(len(set(ids_a) & set(ids_b)) / denom)
    return float(np.mean(overlaps)) if overlaps else 1.0


def _order_floor(index_name: str) -> float:
    return ORDER_OVERLAP_FLOOR.get(index_name, 0.3)


# --------------------------------------------------------------- relations


@relation(
    "insert-order",
    "Building over a permutation of the same point set must answer "
    "(nearly) the same top-k: exact indexes identically, randomized "
    "builders above a per-index overlap floor.",
)
def _insert_order_invariance(index_name, seed, emit, check):
    ds = torture_dataset(seed)
    n = len(ds)
    ids = np.arange(n, dtype=np.int64)
    perm = np.random.default_rng(seed + 1).permutation(n)
    index_a = make_torture_index(index_name, seed=seed).build(ds.train, ids=ids)
    index_b = make_torture_index(index_name, seed=seed).build(
        ds.train[perm], ids=ids[perm]
    )
    overlap = _mean_overlap(index_a, index_b, ds.queries, k=10)
    check(len(ds.queries))
    floor = 1.0 if index_name in EXACT_INDEXES else _order_floor(index_name)
    if overlap < floor:
        emit(
            "MR-INSERT-ORDER",
            f"mean top-10 overlap {overlap:.3f} between two insertion "
            f"orders (floor {floor})",
        )


@relation(
    "filter-decomposition",
    "Predicate algebra must commute with search: the allowed-mask of a "
    "composite predicate equals the composition of its parts' masks, "
    "and searching under either mask returns identical hits — for "
    "every index, exactly.",
)
def _filter_decomposition(index_name, seed, emit, check):
    ds = torture_hybrid_dataset(seed)
    n = len(ds)
    columns = {
        "category": np.array([a["category"] for a in ds.attributes]),
        "rating": np.array([a["rating"] for a in ds.attributes]),
    }
    index = make_torture_index(index_name, seed=seed).build(
        ds.train, ids=np.arange(n, dtype=np.int64)
    )
    cat = Comparison("category", "==", 0)
    rat = Comparison("rating", ">=", 3)
    pairs = [
        (And(cat, rat), lambda: cat.evaluate(columns) & rat.evaluate(columns)),
        (Not(Or(cat, rat)),
         lambda: ~cat.evaluate(columns) & ~rat.evaluate(columns)),
    ]
    for composite, decomposed in pairs:
        mask_c = composite.evaluate(columns)
        mask_d = decomposed()
        check()
        if not np.array_equal(mask_c, mask_d):
            emit(
                "MR-FILTER-MASK",
                f"composite predicate mask differs from decomposed mask "
                f"({int(np.sum(mask_c != mask_d))} rows)",
            )
            continue
        for q in ds.queries:
            hits_c = index.search(q, 10, allowed=mask_c)
            hits_d = index.search(q, 10, allowed=mask_d)
            check()
            if [h.id for h in hits_c] != [h.id for h in hits_d]:
                emit(
                    "MR-FILTER-SEARCH",
                    "identical allowed-masks produced different hits "
                    f"(composite {[h.id for h in hits_c]} vs decomposed "
                    f"{[h.id for h in hits_d]})",
                )
                break


@relation(
    "quantization-monotonicity",
    "Widening a quantized index's exact-rerank budget must not reduce "
    "recall (same codes, strictly more candidates re-scored exactly).",
)
def _quantization_monotonicity(index_name, seed, emit, check):
    budgets = RERANKED.get(index_name)
    if budgets is None:
        return  # not a reranked quantizer — relation does not apply
    narrow, wide = budgets
    ds = torture_dataset(seed)
    ids = np.arange(len(ds), dtype=np.int64)
    truth = make_torture_index("flat").build(ds.train, ids=ids)
    low = make_torture_index(index_name, seed=seed, rerank=narrow).build(
        ds.train, ids=ids
    )
    high = make_torture_index(index_name, seed=seed, rerank=wide).build(
        ds.train, ids=ids
    )
    recalls = {"narrow": [], "wide": []}
    for q in ds.queries:
        truth_ids = [h.id for h in truth.search(q, 10)]
        recalls["narrow"].append(
            recall_at_k([h.id for h in low.search(q, 10)], truth_ids)
        )
        recalls["wide"].append(
            recall_at_k([h.id for h in high.search(q, 10)], truth_ids)
        )
    check(len(ds.queries))
    mean_narrow = float(np.mean(recalls["narrow"]))
    mean_wide = float(np.mean(recalls["wide"]))
    if mean_wide < mean_narrow - 0.05:
        emit(
            "MR-QUANT-MONOTONE",
            f"recall@10 dropped when widening rerank {narrow}->{wide}: "
            f"{mean_narrow:.3f} -> {mean_wide:.3f}",
        )


@relation(
    "shard-invariance",
    "Partitioning the collection across shards and merging per-shard "
    "top-k must preserve the answer: exactly for exact indexes, above "
    "an overlap floor for approximate ones (per-shard builds see "
    "different subsets).",
)
def _shard_count_invariance(index_name, seed, emit, check):
    from ..distributed.cluster import DistributedSearchCluster
    from ..distributed.shard import UniformSharding
    from .zoo import SHARD_OVERLAP_FLOOR, build_kwargs

    ds = torture_dataset(seed)
    kwargs = build_kwargs(index_name)
    clusters = {
        shards: DistributedSearchCluster(
            sharding=UniformSharding(shards), index_type=index_name, **kwargs
        )
        for shards in (1, 3)
    }
    for cluster in clusters.values():
        cluster.load(ds.train)
    overlaps = []
    for q in ds.queries:
        merged = {
            shards: cluster.search(q, 10)[0].ids
            for shards, cluster in clusters.items()
        }
        check()
        if index_name in EXACT_INDEXES:
            if merged[1] != merged[3]:
                emit(
                    "MR-SHARD-EXACT",
                    f"exact index answers differ across shard counts: "
                    f"1-shard {merged[1]} vs 3-shard {merged[3]}",
                )
                return
        else:
            denom = max(len(merged[1]), len(merged[3]), 1)
            overlaps.append(len(set(merged[1]) & set(merged[3])) / denom)
    if overlaps:
        overlap = float(np.mean(overlaps))
        floor = SHARD_OVERLAP_FLOOR.get(
            index_name, max(_order_floor(index_name) - 0.1, 0.2)
        )
        if overlap < floor:
            emit(
                "MR-SHARD-OVERLAP",
                f"mean top-10 overlap {overlap:.3f} between 1-shard and "
                f"3-shard merges (floor {floor})",
            )


@relation(
    "delete-liveness",
    "A deleted row must never surface again: searches under the "
    "liveness mask exclude tombstoned ids for every index and every "
    "query — no tolerance.",
)
def _delete_then_query_liveness(index_name, seed, emit, check):
    ds = torture_dataset(seed)
    n = len(ds)
    ids = np.arange(n, dtype=np.int64)
    index = make_torture_index(index_name, seed=seed).build(ds.train, ids=ids)
    rng = np.random.default_rng(seed + 2)
    deleted = set(int(i) for i in rng.choice(n, size=n // 8, replace=False))
    alive = np.ones(n, dtype=bool)
    alive[sorted(deleted)] = False
    for q in ds.queries:
        hits = index.search(q, 10, allowed=alive)
        check()
        leaked = [h.id for h in hits if h.id in deleted]
        if leaked:
            emit(
                "MR-DELETE-LIVENESS",
                f"deleted ids {leaked} returned by a masked search",
            )
            return


@relation(
    "score-scale",
    "Uniformly scaling every vector and the query by a positive "
    "constant preserves the l2 ranking; indexes built on scaled data "
    "must answer (nearly) the same top-k.",
)
def _score_scale_invariance(index_name, seed, emit, check):
    ds = torture_dataset(seed)
    ids = np.arange(len(ds), dtype=np.int64)
    scale = 2.5
    index_a = make_torture_index(index_name, seed=seed).build(ds.train, ids=ids)
    index_b = make_torture_index(index_name, seed=seed).build(
        (ds.train * scale).astype(ds.train.dtype), ids=ids
    )
    overlaps = []
    for q in ds.queries:
        ids_a = [h.id for h in index_a.search(q, 10)]
        ids_b = [h.id for h in index_b.search(
            (q * scale).astype(q.dtype), 10
        )]
        check()
        if index_name in EXACT_INDEXES:
            if ids_a != ids_b:
                emit(
                    "MR-SCORE-SCALE",
                    f"exact index ranking changed under uniform scaling: "
                    f"{ids_a} vs {ids_b}",
                )
                return
        else:
            denom = max(len(ids_a), len(ids_b), 1)
            overlaps.append(len(set(ids_a) & set(ids_b)) / denom)
    if overlaps:
        overlap = float(np.mean(overlaps))
        floor = _order_floor(index_name)
        if overlap < floor:
            emit(
                "MR-SCORE-SCALE",
                f"mean top-10 overlap {overlap:.3f} under uniform scaling "
                f"(floor {floor})",
            )


# ------------------------------------------------------------------ runner


def run_metamorphic(
    index_names,
    seed: int,
    depth: str = "smoke",
    relations=None,
) -> TortureReport:
    """Run (relations × indexes × seeds) and collect findings.

    Smoke depth runs every cell once at the base seed; nightly depth
    re-runs every cell at three derived seeds.
    """
    report = TortureReport(depth=depth, seed=seed)
    seeds = [seed] if depth == "smoke" else [seed, seed + 1000, seed + 2000]
    names = relations if relations else sorted(RELATIONS)
    for rel_name in names:
        rel = RELATIONS[rel_name]
        for index_name in index_names:
            for cell_seed in seeds:
                rel.run(index_name, cell_seed, report)
    return report
