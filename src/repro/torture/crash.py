"""Seeded crash-recovery loops over the persistence paths.

The loop is exhaustive, not sampled: a snapshot save (or LSM flush +
compaction) runs once under :class:`~repro.torture.fsshim.TortureFS`,
which journals every filesystem primitive the storage layer performs.
Then *every* operation prefix — and every torn half-write after a
prefix — is replayed into a fresh directory and reopened.  The oracle
is strict old-or-new:

* reopening must always succeed (a crash must never produce an
  unreadable store), and
* the recovered state must equal the pre-save state or the post-save
  state bit-for-bit (vectors, tombstones, attributes) and answer the
  probe queries identically — never a torn hybrid.

This is the prefix-consistency property the bug study (arXiv:2506.02617)
finds real VDBMSs violating, made a regression test.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..core.errors import StorageError
from .fsshim import TortureFS
from .reporting import TortureFinding, TortureReport
from .zoo import torture_hybrid_dataset

__all__ = ["run_crash", "crash_recovery_database", "crash_recovery_lsm"]


def _collection_state(collection) -> dict:
    return {
        "vectors": np.array(collection.vectors, copy=True),
        "alive": np.array(collection.alive, copy=True),
        "columns": {
            name: list(collection._columns_raw[name])
            for name in collection.attribute_names
        },
    }


def _states_equal(collection, state: dict) -> bool:
    if collection.vectors.shape != state["vectors"].shape:
        return False
    if not np.array_equal(collection.vectors, state["vectors"]):
        return False
    if not np.array_equal(collection.alive, state["alive"]):
        return False
    columns = {
        name: list(collection._columns_raw[name])
        for name in collection.attribute_names
    }
    return columns == state["columns"]


def _emit(report, seed, rule, subject, message):
    report.add(TortureFinding(
        rule=rule,
        pillar="crash",
        subject=subject,
        seed=seed,
        message=message,
        repro=f"torture --pillar crash --seed {seed}",
    ))


def crash_recovery_database(
    seed: int, workdir, report: TortureReport
) -> None:
    """Kill ``save_database`` at every prefix; reopen must be old-or-new."""
    from ..core.database import VectorDatabase
    from ..storage.persist import load_database, save_database

    workdir = pathlib.Path(workdir)
    ds = torture_hybrid_dataset(seed, n=64, dim=8, num_queries=4)
    db = VectorDatabase(dim=ds.dim)
    db.insert_many(ds.train, ds.attributes)
    db.create_index("exact", "flat")
    db.create_index("graph", "hnsw", m=6, ef_construction=32, seed=seed)

    snapshot = workdir / "db-snapshot"
    save_database(db, snapshot)  # committed state A
    state_a = _collection_state(db.collection)
    answers_a = [db.search(q, k=5).ids for q in ds.queries]

    # Mutate to state B: new rows, tombstones, then re-save under journal.
    rng = np.random.default_rng(seed + 1)
    extra = rng.standard_normal((8, ds.dim)).astype(np.float32)
    extra_attrs = [
        {"category": int(rng.integers(4)), "price": 1.0, "rating": 3}
        for _ in range(len(extra))
    ]
    db.insert_many(extra, extra_attrs)
    for victim in rng.choice(len(ds.train), size=5, replace=False):
        db.delete(int(victim))
    db.rebuild_indexes()
    state_b = _collection_state(db.collection)
    answers_b = [db.search(q, k=5).ids for q in ds.queries]

    fs = TortureFS(snapshot)
    save_database(db, snapshot, fs=fs)

    for k in range(fs.num_ops + 1):
        for torn in (False, True):
            if torn and k >= fs.num_ops:
                continue
            subject = f"save_database@op{k}" + ("+torn" if torn else "")
            replay = fs.replay_prefix(k, workdir / "db-replay", torn=torn)
            report.count("crash")
            try:
                loaded = load_database(replay)
            except StorageError as exc:
                _emit(report, seed, "CRASH-DB-LOAD", subject,
                      f"snapshot unreadable after crash: {exc}")
                continue
            is_a = _states_equal(loaded.collection, state_a)
            is_b = _states_equal(loaded.collection, state_b)
            if not (is_a or is_b):
                _emit(report, seed, "CRASH-DB-TORN", subject,
                      "recovered collection is neither the old nor the "
                      "new snapshot")
                continue
            expected = answers_a if is_a else answers_b
            answers = [loaded.search(q, k=5).ids for q in ds.queries]
            if answers != expected:
                _emit(report, seed, "CRASH-DB-ANSWERS", subject,
                      "recovered database answers probe queries "
                      f"differently from its snapshot state: {answers} "
                      f"vs {expected}")


def _live_state(store) -> dict:
    return {
        int(key): (np.array(vec, copy=True), attrs)
        for key, vec, attrs in store.live_items()
    }


def _live_equal(state_x: dict, state_y: dict) -> bool:
    if set(state_x) != set(state_y):
        return False
    for key, (vec, attrs) in state_x.items():
        other_vec, other_attrs = state_y[key]
        if not np.array_equal(vec, other_vec) or attrs != other_attrs:
            return False
    return True


def crash_recovery_lsm(seed: int, workdir, report: TortureReport) -> None:
    """Kill the LSM flush/compaction at every prefix.

    Every ``flush()`` is its own commit point (and may chain into a
    compaction commit with the same logical content), so the oracle is
    set-valued: the recovered live set must equal the durable state of
    *some* commit — never a state no commit ever published.
    """
    from ..storage.lsm import LsmVectorStore

    workdir = pathlib.Path(workdir)
    directory = workdir / "lsm"
    dim = 6
    rng = np.random.default_rng(seed)
    store = LsmVectorStore(
        dim, memtable_capacity=64, max_runs=2, directory=directory
    )
    for key in range(20):
        store.put(key, rng.standard_normal(dim).astype(np.float32),
                  {"tag": key % 3})
    store.delete(3)
    store.flush()  # committed state A (memtable empty after flush)
    committed = [_live_state(store)]

    # Two journaled flushes: overwrites, fresh keys, tombstones; the
    # second exceeds max_runs and chains into a journaled compaction.
    fs = TortureFS(directory)
    store.fs = fs
    for key in range(15, 30):
        store.put(key, rng.standard_normal(dim).astype(np.float32),
                  {"tag": key % 5})
    store.delete(7)
    store.flush()
    committed.append(_live_state(store))
    for key in range(25, 34):
        store.put(key, rng.standard_normal(dim).astype(np.float32),
                  {"tag": key % 4})
    store.delete(21)
    store.flush()
    committed.append(_live_state(store))

    for k in range(fs.num_ops + 1):
        for torn in (False, True):
            if torn and k >= fs.num_ops:
                continue
            subject = f"lsm_flush@op{k}" + ("+torn" if torn else "")
            replay = fs.replay_prefix(k, workdir / "lsm-replay", torn=torn)
            report.count("crash")
            try:
                recovered = LsmVectorStore.open(replay)
            except StorageError as exc:
                _emit(report, seed, "CRASH-LSM-OPEN", subject,
                      f"LSM store unreadable after crash: {exc}")
                continue
            state = _live_state(recovered)
            if not any(_live_equal(state, good) for good in committed):
                _emit(report, seed, "CRASH-LSM-TORN", subject,
                      "recovered LSM live set matches none of the "
                      f"{len(committed)} committed states")


def run_crash(seed: int, workdir, depth: str = "smoke") -> TortureReport:
    """Both crash loops; nightly re-runs them at three derived seeds."""
    report = TortureReport(depth=depth, seed=seed)
    seeds = [seed] if depth == "smoke" else [seed, seed + 1000, seed + 2000]
    for loop_seed in seeds:
        crash_recovery_database(loop_seed, workdir, report)
        crash_recovery_lsm(loop_seed, workdir, report)
    return report
