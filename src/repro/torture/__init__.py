"""Torture rig: adversarial, seed-reproducible testing of the stack.

Three pillars, one report format (rule-tagged findings that name the
seed and a one-line repro command):

* :mod:`repro.torture.crash` — seeded crash-recovery loops.  A
  :class:`~repro.torture.fsshim.TortureFS` journals every filesystem
  primitive a snapshot save or LSM flush performs; every operation
  prefix (plus torn half-writes) is replayed and reopened, and the
  recovered state must be exactly old-or-new, never torn.
* :mod:`repro.torture.relations` — metamorphic relations (insertion-
  order invariance, filter decomposition, quantization monotonicity,
  shard invariance, delete liveness, score scaling) run against every
  index in the registry.
* :mod:`repro.torture.differential` — cross-index differential search:
  seeded random (collection, config, query, predicate) instances judged
  against the flat oracle with ordering/containment/recall oracles.

Run it with ``torture`` (console script) or ``python -m repro.torture``.
"""

from .crash import crash_recovery_database, crash_recovery_lsm, run_crash
from .differential import run_differential, run_differential_one
from .driver import main, run_rig
from .fsshim import FsOp, TortureFS
from .relations import RELATIONS, Relation, relation, run_metamorphic
from .reporting import TortureFinding, TortureReport

__all__ = [
    "RELATIONS",
    "FsOp",
    "Relation",
    "TortureFS",
    "TortureFinding",
    "TortureReport",
    "crash_recovery_database",
    "crash_recovery_lsm",
    "main",
    "relation",
    "run_crash",
    "run_differential",
    "run_differential_one",
    "run_metamorphic",
    "run_rig",
]
