"""Per-index configuration and tolerance tables for the torture rig.

The rig runs every index in :mod:`repro.index.registry` against the
same oracles, but the zoo is heterogeneous: a flat scan is exact, an
LSH table with 12 hash bits is not, and a graph built by a randomized
heuristic is sensitive to insertion order in a way a k-d tree is not.
These tables encode what each index *promises*, so an oracle violation
is a finding about the index, not about an unreasonable expectation.

* :data:`BUILD_KWARGS` — constructor overrides that keep slow builders
  fast at torture scale (a few hundred points).
* :data:`EXACT_INDEXES` — indexes whose search is exact: every oracle
  holds with equality, no tolerance.
* :data:`ORDER_OVERLAP_FLOOR` — minimum mean top-k overlap between two
  insertion orders of the same point set (1.0 for order-free builds).
* :data:`DIFF_RECALL_FLOOR` — minimum recall@10 vs. the flat oracle on
  the easy clustered workload under seeded random configs.
* :data:`CONFIG_SPACE` — the per-index random-config dimensions the
  differential pillar samples from (seeded; every finding names the
  seed that regenerates the exact config).
* :data:`RERANKED` — quantized indexes exposing a ``rerank`` knob, used
  by the quantization-monotonicity relation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..bench.datasets import Dataset, gaussian_mixture, hybrid_workload

__all__ = [
    "BUILD_KWARGS",
    "CONFIG_SPACE",
    "DIFF_RECALL_FLOOR",
    "EXACT_INDEXES",
    "ORDER_OVERLAP_FLOOR",
    "RERANKED",
    "SHARD_OVERLAP_FLOOR",
    "build_kwargs",
    "make_torture_index",
    "recall_at_k",
    "sample_config",
    "torture_dataset",
    "torture_hybrid_dataset",
]

#: Constructor overrides keeping every builder fast at n≈240.
BUILD_KWARGS: dict[str, dict[str, Any]] = {
    "lsh": {"num_tables": 12, "hashes_per_table": 4},
    "ivf_flat": {"nlist": 12, "nprobe": 6},
    "ivf_sq": {"nlist": 12, "nprobe": 6},
    "ivf_adc": {"nlist": 12, "nprobe": 8, "m": 4, "ks": 32, "rerank": 40},
    "pq": {"m": 4, "ks": 32, "rerank": 40},
    "opq": {"m": 4, "ks": 32, "rerank": 40, "opq_iterations": 2},
    "sq": {"rerank": 40},
    "spann": {"num_postings": 12, "nprobe": 6},
    "nndescent": {"graph_k": 10, "max_iterations": 4},
    "nsg": {"max_degree": 10, "knng_k": 10},
    "vamana": {"max_degree": 10, "beam_width": 32},
    "fanng": {"num_trials": 600, "init_knng_k": 6},
    "diskann": {"max_degree": 10, "build_beam_width": 32, "pq_m": 4,
                "pq_ks": 32},
    "hnsw": {"m": 8, "ef_construction": 48},
    "filtered_hnsw": {"m": 8, "ef_construction": 48, "label_k": 4},
    "nsw": {"connections": 8},
    "ngt": {"edge_size": 8, "ef_construction": 32},
    "knng": {"graph_k": 10},
    "annoy": {"num_trees": 6, "search_k": 48},
    "rp_tree": {"num_trees": 4, "max_leaves": 48},
    "randkd_forest": {"num_trees": 4, "max_leaves": 48},
    "pca_tree": {"max_leaves": 48},
    "kdtree": {},
    "flat": {},
    "spectral_hash": {"nbits": 24, "rerank": 60},
    "itq_hash": {"nbits": 24, "rerank": 60},
}

#: Indexes whose search is exact — oracles hold with strict equality.
EXACT_INDEXES = frozenset({"flat", "kdtree"})

#: Minimum mean top-k overlap between two insertion orders.  Exact and
#: deterministic-partition builds must be order-free (1.0); randomized
#: builders whose structure depends on data order get looser floors.
ORDER_OVERLAP_FLOOR: dict[str, float] = {
    "flat": 1.0,
    "kdtree": 1.0,
    "pca_tree": 0.5,
    "sq": 0.9,
    "lsh": 0.3,
    "spectral_hash": 0.5,
    "itq_hash": 0.5,
    "ivf_flat": 0.3,
    "ivf_sq": 0.3,
    "ivf_adc": 0.3,
    "pq": 0.5,
    "opq": 0.5,
    "spann": 0.3,
    "annoy": 0.3,
    "rp_tree": 0.3,
    "randkd_forest": 0.3,
    "knng": 0.5,
    "nndescent": 0.5,
    "nsw": 0.4,
    "ngt": 0.5,
    "hnsw": 0.5,
    "filtered_hnsw": 0.5,
    "nsg": 0.5,
    "vamana": 0.5,
    "fanng": 0.3,
    "diskann": 0.5,
}

#: Minimum recall@10 vs. the flat oracle under seeded random configs.
#: Slightly looser than the contract-test floors because the
#: differential pillar samples configs instead of using tuned ones.
DIFF_RECALL_FLOOR: dict[str, float] = {
    "flat": 1.0,
    "kdtree": 1.0,
    "lsh": 0.1,
    "spectral_hash": 0.35,
    "itq_hash": 0.35,
    "spann": 0.4,
    "ivf_adc": 0.45,
    "pq": 0.45,
    "opq": 0.45,
    "sq": 0.8,
    "ivf_sq": 0.4,
    "ivf_flat": 0.4,
    "annoy": 0.45,
    "rp_tree": 0.45,
    "randkd_forest": 0.45,
    "pca_tree": 0.45,
    "knng": 0.4,
    "nndescent": 0.4,
    "nsw": 0.6,
    "ngt": 0.6,
    "hnsw": 0.7,
    "filtered_hnsw": 0.7,
    "nsg": 0.7,
    "vamana": 0.7,
    "fanng": 0.5,
    "diskann": 0.6,
}

#: Overrides for the shard-invariance floor (default: insertion-order
#: floor − 0.1, clamped to 0.2).  kNN-graph builds degrade more under
#: sharding because each shard's graph sees only a third of the points.
SHARD_OVERLAP_FLOOR: dict[str, float] = {
    "knng": 0.2,
    "nndescent": 0.2,
}

#: Quantized indexes exposing a ``rerank`` knob (candidates re-scored
#: with exact distances): widening it must not cost recall.
RERANKED: dict[str, tuple[int, int]] = {
    # name -> (narrow rerank, wide rerank)
    "sq": (10, 60),
    "pq": (10, 60),
    "opq": (10, 60),
    "ivf_adc": (10, 60),
    "spectral_hash": (10, 60),
    "itq_hash": (10, 60),
}

#: Random-config dimensions per index.  Each entry maps a constructor
#: kwarg to the discrete choices the differential pillar samples from
#: (uniformly, from the instance seed).  Only knobs that keep builds
#: fast and recall above the floor belong here.
CONFIG_SPACE: dict[str, dict[str, tuple[Any, ...]]] = {
    "flat": {},
    "kdtree": {},
    "lsh": {"num_tables": (8, 12, 16), "hashes_per_table": (3, 4)},
    "ivf_flat": {"nlist": (8, 12, 16), "nprobe": (6, 8)},
    "ivf_sq": {"nlist": (8, 12, 16), "nprobe": (6, 8)},
    "ivf_adc": {"nlist": (8, 12), "nprobe": (8, 10), "m": (4,),
                "ks": (32,), "rerank": (40, 60)},
    "pq": {"m": (4, 6), "ks": (32,), "rerank": (40, 60)},
    "opq": {"m": (4,), "ks": (32,), "rerank": (40, 60),
            "opq_iterations": (2,)},
    "sq": {"rerank": (40, 60)},
    "spann": {"num_postings": (12, 16), "nprobe": (6, 8)},
    "nndescent": {"graph_k": (10, 12), "max_iterations": (4,)},
    "nsg": {"max_degree": (10, 12), "knng_k": (10,)},
    "vamana": {"max_degree": (10, 12), "beam_width": (32, 48)},
    "fanng": {"num_trials": (600,), "init_knng_k": (6, 8)},
    "diskann": {"max_degree": (10, 12), "build_beam_width": (32,),
                "pq_m": (4,), "pq_ks": (32,)},
    "hnsw": {"m": (6, 8, 12), "ef_construction": (48, 64)},
    "filtered_hnsw": {"m": (8,), "ef_construction": (48,), "label_k": (4,)},
    "nsw": {"connections": (6, 8, 10)},
    "ngt": {"edge_size": (8, 10), "ef_construction": (32, 48)},
    "knng": {"graph_k": (10, 12)},
    "annoy": {"num_trees": (6, 8), "search_k": (48, 64)},
    "rp_tree": {"num_trees": (4, 6), "max_leaves": (32, 48)},
    "randkd_forest": {"num_trees": (4, 6), "max_leaves": (32, 48)},
    "pca_tree": {"max_leaves": (32, 48)},
    "spectral_hash": {"nbits": (20, 24), "rerank": (60,)},
    "itq_hash": {"nbits": (20, 24), "rerank": (60,)},
}


def build_kwargs(name: str, **overrides: Any) -> dict[str, Any]:
    """Deterministic fast-build kwargs for ``name``."""
    kwargs: dict[str, Any] = dict(BUILD_KWARGS.get(name, {}))
    kwargs.update(overrides)
    return kwargs


def make_torture_index(name: str, seed: int = 0, score: str = "l2",
                       **overrides: Any):
    """Instantiate ``name`` with fast kwargs and an explicit seed.

    Indexes without stochastic build state (flat, sq, ...) do not take
    ``seed``; the rig drops it rather than special-casing them.
    """
    from ..index.registry import make_index

    kwargs = build_kwargs(name, **overrides)
    try:
        return make_index(name, score=score, seed=seed, **kwargs)
    except TypeError:
        return make_index(name, score=score, **kwargs)


def sample_config(name: str, rng: np.random.Generator) -> dict[str, Any]:
    """Sample one random constructor config from the index's space."""
    space = CONFIG_SPACE.get(name, {})
    return {
        knob: choices[int(rng.integers(len(choices)))]
        for knob, choices in sorted(space.items())
    }


def recall_at_k(result_ids, truth_ids) -> float:
    """|result ∩ truth| / |truth| for one query."""
    if not truth_ids:
        return 1.0
    return len(set(result_ids) & set(truth_ids)) / len(truth_ids)


def torture_dataset(seed: int, n: int = 240, dim: int = 12,
                    num_queries: int = 8) -> Dataset:
    """The rig's standard clustered workload (seeded, laptop-fast)."""
    return gaussian_mixture(
        n=n, dim=dim, num_clusters=6, num_queries=num_queries, seed=seed
    )


def torture_hybrid_dataset(seed: int, n: int = 240, dim: int = 12,
                           num_queries: int = 6) -> Dataset:
    """Clustered workload with category/price/rating attributes."""
    return hybrid_workload(
        n=n, dim=dim, num_queries=num_queries, num_categories=4, seed=seed
    )
