"""Command-line driver for the torture rig.

One entry point (``torture``, next to ``vdblint``) runs any slice of
the rig, from one (relation, index, seed) cell — the shape every
finding's ``repro`` command takes — up to the full nightly sweep:

* ``torture`` — smoke depth, all three pillars, every registered index;
* ``torture --depth nightly --json findings.json`` — the scheduled
  sweep: more seeds per cell, findings exported as a JSON artifact;
* ``torture --pillar metamorphic --relation insert-order --index hnsw
  --seed 1042`` — replay exactly one finding.

Exit status: 0 all oracles held, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile

from .crash import run_crash
from .differential import run_differential
from .relations import RELATIONS, run_metamorphic
from .reporting import TortureReport

__all__ = ["main", "run_rig"]

PILLARS = ("crash", "metamorphic", "differential")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="torture",
        description=(
            "Torture rig: crash-recovery loops, metamorphic relations, "
            "and cross-index differential search."
        ),
    )
    parser.add_argument(
        "--depth", choices=("smoke", "nightly"), default="smoke",
        help="smoke: one seed per cell (CI); nightly: three seeds and "
        "more differential instances",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="base seed; every instance derives deterministically from it",
    )
    parser.add_argument(
        "--pillar", choices=("all",) + PILLARS, default="all",
        help="run a single pillar (findings' repro commands use this)",
    )
    parser.add_argument(
        "--relation", action="append", default=None, metavar="NAME",
        help="metamorphic relation(s) to run (default: all registered); "
        "repeatable",
    )
    parser.add_argument(
        "--index", action="append", default=None, metavar="NAME",
        help="index type(s) to run against (default: every registered "
        "index); repeatable",
    )
    parser.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="PATH",
        help="also write the report as JSON (nightly findings artifact)",
    )
    parser.add_argument(
        "--list-relations", action="store_true",
        help="list registered metamorphic relations and exit",
    )
    return parser


def run_rig(
    pillars,
    index_names,
    seed: int,
    depth: str,
    relations=None,
    workdir=None,
) -> TortureReport:
    """Run the selected pillars and merge their reports."""
    report = TortureReport(depth=depth, seed=seed)
    if "crash" in pillars:
        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="torture-") as tmp:
                report.merge(run_crash(seed, tmp, depth=depth))
        else:
            report.merge(run_crash(seed, workdir, depth=depth))
    if "metamorphic" in pillars:
        report.merge(
            run_metamorphic(index_names, seed, depth=depth,
                            relations=relations)
        )
    if "differential" in pillars:
        report.merge(run_differential(index_names, seed, depth=depth))
    return report


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_relations:
        for name in sorted(RELATIONS):
            print(f"{name}: {RELATIONS[name].description}")
        return 0

    from ..index.registry import available_indexes

    known = available_indexes()
    index_names = args.index if args.index else known
    unknown = sorted(set(index_names) - set(known))
    if unknown:
        parser.error(f"unknown index type(s): {', '.join(unknown)}")
    unknown_relations = sorted(set(args.relation or ()) - set(RELATIONS))
    if unknown_relations:
        parser.error(
            f"unknown relation(s): {', '.join(unknown_relations)} "
            f"(see --list-relations)"
        )

    pillars = PILLARS if args.pillar == "all" else (args.pillar,)
    report = run_rig(
        pillars, index_names, args.seed, args.depth, relations=args.relation
    )

    print(report.render())
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(report.to_json() + "\n")
        print(f"findings written to {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
