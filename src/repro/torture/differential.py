"""Cross-index differential search with recall/containment oracles.

Every index in the registry answers the same seeded random instances —
(collection, sampled config, queries, optional predicate mask) — and is
judged against the flat-scan oracle:

* **ordering** — distances ascend, as the index `search` contract
  promises;
* **containment** — returned ids exist, are unique, and respect the
  ``allowed`` mask when one is given (block-first correctness);
* **exactness** — indexes in :data:`~repro.torture.zoo.EXACT_INDEXES`
  must reproduce the oracle's ids verbatim;
* **recall** — approximate indexes must clear their per-index floor
  (:data:`~repro.torture.zoo.DIFF_RECALL_FLOOR`) under the *sampled*
  config, not just the tuned default.

Instances are regenerated from their seed alone, so a finding's repro
command (``torture --pillar differential --index hnsw --seed 1042``)
rebuilds the identical collection, config, and queries.
"""

from __future__ import annotations

import numpy as np

from .reporting import TortureFinding, TortureReport
from .zoo import (
    DIFF_RECALL_FLOOR,
    EXACT_INDEXES,
    make_torture_index,
    recall_at_k,
    sample_config,
    torture_dataset,
)

__all__ = ["run_differential", "run_differential_one"]


def _emit(report, index_name, seed, rule, message):
    report.add(TortureFinding(
        rule=rule,
        pillar="differential",
        subject=index_name,
        seed=seed,
        message=message,
        repro=f"torture --pillar differential --index {index_name} --seed {seed}",
    ))


def run_differential_one(
    index_name: str, seed: int, report: TortureReport
) -> None:
    """One differential instance for one index (regenerable from seed)."""
    rng = np.random.default_rng(seed)
    ds = torture_dataset(seed)
    n = len(ds)
    ids = np.arange(n, dtype=np.int64)
    k = 10
    config = sample_config(index_name, rng)
    # Predicate mask: a seeded random ~60% subset, exercised on every
    # other query so both masked and unmasked paths run per instance.
    allowed = rng.random(n) < 0.6
    if not allowed.any():
        allowed[:] = True

    oracle = make_torture_index("flat").build(ds.train, ids=ids)
    index = make_torture_index(index_name, seed=seed, **config).build(
        ds.train, ids=ids
    )

    recalls = []
    for qi, q in enumerate(ds.queries):
        mask = allowed if qi % 2 else None
        hits = index.search(q, k, allowed=mask)
        truth_ids = [h.id for h in oracle.search(q, k, allowed=mask)]
        report.count("differential")

        distances = [h.distance for h in hits]
        if any(b < a - 1e-5 for a, b in zip(distances, distances[1:])):
            _emit(report, index_name, seed, "DIFF-ORDER",
                  f"distances not ascending under config {config}: "
                  f"{distances}")
            return
        hit_ids = [h.id for h in hits]
        if len(set(hit_ids)) != len(hit_ids):
            _emit(report, index_name, seed, "DIFF-DUP",
                  f"duplicate ids in one result set: {hit_ids}")
            return
        out_of_range = [i for i in hit_ids if not 0 <= i < n]
        if out_of_range:
            _emit(report, index_name, seed, "DIFF-CONTAIN",
                  f"unknown ids returned: {out_of_range}")
            return
        if mask is not None:
            violations = [i for i in hit_ids if not mask[i]]
            if violations:
                _emit(report, index_name, seed, "DIFF-MASK",
                      f"allowed-mask violated for ids {violations} under "
                      f"config {config}")
                return
        if index_name in EXACT_INDEXES and hit_ids != truth_ids:
            _emit(report, index_name, seed, "DIFF-EXACT",
                  f"exact index diverged from oracle: {hit_ids} vs "
                  f"{truth_ids}")
            return
        recalls.append(recall_at_k(hit_ids, truth_ids))

    mean_recall = float(np.mean(recalls)) if recalls else 1.0
    floor = DIFF_RECALL_FLOOR.get(index_name, 0.3)
    if mean_recall < floor:
        _emit(report, index_name, seed, "DIFF-RECALL",
              f"mean recall@{k} {mean_recall:.3f} under sampled config "
              f"{config} (floor {floor})")


def run_differential(
    index_names, seed: int, depth: str = "smoke"
) -> TortureReport:
    """Seeded random instances across the zoo (more per index nightly)."""
    report = TortureReport(depth=depth, seed=seed)
    instances = 1 if depth == "smoke" else 4
    for index_name in index_names:
        for i in range(instances):
            run_differential_one(index_name, seed + 1000 * i, report)
    return report
