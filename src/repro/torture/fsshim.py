"""TortureFS: a journaling filesystem shim with crash-prefix replay.

The storage layer performs all file mutation through the three
primitives of :class:`repro.storage.atomic.Filesystem` (durable write,
atomic replace, remove).  :class:`TortureFS` implements that interface,
passes every operation through to the real OS *and* journals it — path,
payload, order.  Because the journal captures complete payloads, any
operation prefix can be replayed into a fresh directory, which turns
"the process died between op *k* and op *k+1*" into an enumerable,
deterministic scenario:

>>> fs = TortureFS(snapshot_dir)          # captures the base image
>>> save_database(db, snapshot_dir, fs=fs)
>>> for k in range(fs.num_ops + 1):       # every crash point
...     fs.replay_prefix(k, replay_dir)   # the disk a crash would leave
...     load_database(replay_dir)         # must be old-or-new, never torn

``torn=True`` additionally applies the *first half* of the next write —
the classic torn-write failure the temp-file + rename protocol must
absorb (the torn bytes land in a ``*.tmp`` file no manifest references).
"""

from __future__ import annotations

import os
import pathlib
import shutil
from dataclasses import dataclass

from ..core.errors import StorageError
from ..storage.atomic import Filesystem

__all__ = ["FsOp", "TortureFS"]


@dataclass(frozen=True)
class FsOp:
    """One journaled filesystem primitive (paths relative to the root)."""

    kind: str  # "write" | "replace" | "remove"
    path: str
    data: bytes | None = None  # payload for "write"
    dest: str | None = None  # target for "replace"

    def describe(self) -> str:
        if self.kind == "write":
            return f"write {self.path} ({0 if self.data is None else len(self.data)} bytes)"
        if self.kind == "replace":
            return f"replace {self.path} -> {self.dest}"
        return f"remove {self.path}"


class TortureFS(Filesystem):
    """Records every storage-layer mutation under ``root`` for replay.

    The base image (all files under ``root`` at construction time) plus
    the first *k* journaled operations reconstructs exactly the disk
    state a crash after op *k* would leave — modulo write reordering,
    which the storage layer forecloses by fsyncing each payload before
    the rename that publishes it.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root).resolve()
        self.ops: list[FsOp] = []
        self._base: dict[str, bytes] = {}
        if self.root.exists():
            for path in sorted(self.root.rglob("*")):
                if path.is_file():
                    self._base[self._rel(path)] = path.read_bytes()

    # ------------------------------------------------------------- plumbing

    def _rel(self, path) -> str:
        resolved = pathlib.Path(path)
        resolved = (
            resolved if resolved.is_absolute() else resolved.absolute()
        )
        # Resolve the parent (the leaf may not exist yet) to tolerate
        # symlinked temp dirs while keeping strict containment.
        resolved = resolved.parent.resolve() / resolved.name
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            raise StorageError(
                f"TortureFS: operation outside journaled root: "
                f"{resolved} not under {self.root}"
            ) from None

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def describe_ops(self) -> list[str]:
        return [op.describe() for op in self.ops]

    # ------------------------------------------------- Filesystem interface

    def write_file(self, path, data: bytes) -> None:
        rel = self._rel(path)
        super().write_file(path, data)
        self.ops.append(FsOp("write", rel, data=bytes(data)))

    def replace(self, src, dst) -> None:
        rel_src, rel_dst = self._rel(src), self._rel(dst)
        super().replace(src, dst)
        self.ops.append(FsOp("replace", rel_src, dest=rel_dst))

    def remove(self, path) -> None:
        rel = self._rel(path)
        super().remove(path)
        self.ops.append(FsOp("remove", rel))

    # ---------------------------------------------------------------- replay

    def replay_prefix(self, k: int, dest, torn: bool = False) -> pathlib.Path:
        """Materialize the disk state after the first ``k`` operations.

        ``dest`` is recreated from the base image, then ops ``[0, k)``
        are applied.  With ``torn=True`` and ``k < num_ops``, op ``k``
        — if it is a write — is additionally applied *half-way*,
        simulating a crash mid-write (a torn page).
        """
        if not 0 <= k <= len(self.ops):
            raise ValueError(f"prefix {k} out of range 0..{len(self.ops)}")
        dest = pathlib.Path(dest)
        if dest.exists():
            shutil.rmtree(dest)
        dest.mkdir(parents=True)
        for rel, data in self._base.items():
            target = dest / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
        for op in self.ops[:k]:
            self._apply(dest, op)
        if torn and k < len(self.ops):
            nxt = self.ops[k]
            if nxt.kind == "write" and nxt.data:
                torn_path = dest / nxt.path
                torn_path.parent.mkdir(parents=True, exist_ok=True)
                torn_path.write_bytes(nxt.data[: len(nxt.data) // 2])
        return dest

    @staticmethod
    def _apply(dest: pathlib.Path, op: FsOp) -> None:
        path = dest / op.path
        if op.kind == "write":
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(op.data or b"")
        elif op.kind == "replace":
            assert op.dest is not None
            target = dest / op.dest
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        elif op.kind == "remove":
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        else:  # pragma: no cover - journal only emits the three kinds
            raise StorageError(f"unknown journal op {op.kind!r}")
