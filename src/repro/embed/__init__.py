"""Embedding integration (§2.1 "Data Manipulation").

Under *indirect manipulation* the VDBMS owns the embedding model: users
insert entities (text, records) and the system derives the vectors.
Since no neural model ships offline, we provide deterministic
embedders whose outputs behave like embeddings for testing and
examples: nearby inputs map to nearby vectors.
"""

from .embedders import (
    EmbeddingFunction,
    HashingTextEmbedder,
    NumericFeatureEmbedder,
    available_embedders,
    get_embedder,
    register_embedder,
)

__all__ = [
    "EmbeddingFunction",
    "HashingTextEmbedder",
    "NumericFeatureEmbedder",
    "available_embedders",
    "get_embedder",
    "register_embedder",
]
