"""Deterministic embedding functions for indirect data manipulation.

These stand in for the embedding models a production VDBMS would host
(§2.1): they are deterministic, dependency-free, and similarity-
preserving in the weak sense retrieval tests need — inputs sharing
n-grams / nearby feature values land near each other.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol, Sequence

import numpy as np

from ..core.types import VECTOR_DTYPE
from ..scores.basic import normalize_rows


class EmbeddingFunction(Protocol):
    """Anything mapping an entity to a fixed-dimension vector."""

    dim: int

    def __call__(self, entity) -> np.ndarray: ...


class HashingTextEmbedder:
    """Character n-gram hashing embedder (a TF feature hasher).

    Each n-gram is hashed to a dimension and a sign; the vector is the
    normalized signed n-gram count histogram.  Texts sharing vocabulary
    overlap in many dimensions, so cosine similarity tracks lexical
    similarity — adequate for retrieval examples without a model.
    """

    def __init__(self, dim: int = 64, ngram: int = 3):
        if dim <= 0 or ngram <= 0:
            raise ValueError("dim and ngram must be positive")
        self.dim = dim
        self.ngram = ngram

    def _hash(self, gram: str) -> tuple[int, float]:
        digest = hashlib.blake2b(gram.encode("utf-8"), digest_size=8).digest()
        value = int.from_bytes(digest, "little")
        return value % self.dim, 1.0 if (value >> 32) & 1 else -1.0

    def __call__(self, entity: str) -> np.ndarray:
        text = f" {str(entity).lower()} "
        out = np.zeros(self.dim, dtype=np.float64)
        grams = max(1, len(text) - self.ngram + 1)
        for i in range(grams):
            slot, sign = self._hash(text[i : i + self.ngram])
            out[slot] += sign
        return normalize_rows(out[None, :])[0]

    def batch(self, entities: Sequence[str]) -> np.ndarray:
        return np.vstack([self(e) for e in entities]).astype(VECTOR_DTYPE)


class NumericFeatureEmbedder:
    """Random-projection embedder for numeric feature records.

    Projects a fixed-length numeric feature list through a seeded
    Gaussian matrix (a Johnson-Lindenstrauss map), so Euclidean
    geometry of the features is approximately preserved.
    """

    def __init__(self, num_features: int, dim: int = 32, seed: int = 0):
        if num_features <= 0 or dim <= 0:
            raise ValueError("num_features and dim must be positive")
        self.num_features = num_features
        self.dim = dim
        rng = np.random.default_rng(seed)
        self._projection = rng.standard_normal((num_features, dim)) / np.sqrt(dim)

    def __call__(self, entity: Sequence[float]) -> np.ndarray:
        features = np.asarray(entity, dtype=np.float64)
        if features.shape != (self.num_features,):
            raise ValueError(
                f"expected {self.num_features} features, got shape {features.shape}"
            )
        return (features @ self._projection).astype(VECTOR_DTYPE)

    def batch(self, entities: Sequence[Sequence[float]]) -> np.ndarray:
        return np.vstack([self(e) for e in entities]).astype(VECTOR_DTYPE)


_EMBEDDERS: dict[str, Callable[..., EmbeddingFunction]] = {
    "hashing_text": HashingTextEmbedder,
    "numeric": NumericFeatureEmbedder,
}


def register_embedder(name: str, factory: Callable[..., EmbeddingFunction]) -> None:
    _EMBEDDERS[name.lower()] = factory


def available_embedders() -> list[str]:
    return sorted(_EMBEDDERS)


def get_embedder(name: str, **kwargs) -> EmbeddingFunction:
    try:
        return _EMBEDDERS[name.lower()](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown embedder {name!r}; available: {', '.join(available_embedders())}"
        ) from None
