"""Scatter-gather search over sharded, replicated nodes (§2.3).

:class:`DistributedSearchCluster` is the coordinator: it shards the
collection per a :class:`~repro.distributed.shard.ShardingStrategy`,
keeps ``replication_factor`` replicas of each shard, scatters a query
to one live replica of each routed shard, and gathers/merges the
per-shard top-k.

The simulated wall clock follows the scatter-gather shape: contacted
replicas work in parallel, so per-query latency is the *maximum* node
latency plus a merge term — which is how adding shards buys throughput
and tail latency shifts.  Node failures are injectable to exercise the
replica failover path.

Fault handling (``repro.reliability``): the coordinator retries flaky
replicas with exponential backoff, fails over across replicas, trips a
per-replica circuit breaker after consecutive failures, races each
shard chain against an optional simulated-clock deadline, and — in
non-strict mode — degrades gracefully when a shard has no reachable
replica, returning a partial :class:`SearchResult` with per-shard
coverage accounting instead of raising.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.errors import (
    AllReplicasDownError,
    DeadlineExceededError,
    PartialResultWarning,
    VdbmsError,
)
from ..core.types import SearchHit, SearchResult, SearchStats
from ..observability.instrument import DISABLED, Observability
from ..observability.sketch import DEFAULT_QUANTILES, QuantileSketch
from ..observability.tracing import NOOP_SPAN
from ..reliability.breaker import CircuitBreaker, ClusterHealth, ReplicaHealth
from ..reliability.faults import FaultInjector
from ..reliability.retry import RetryPolicy
from .node import NodeLatencyModel, SearchNode
from .shard import ShardingStrategy, UniformSharding

#: Histogram buckets for per-query shard coverage (0..1).
_COVERAGE_BUCKETS = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass
class DistributedQueryStats:
    """Coordinator-side accounting for one query."""

    shards_contacted: int = 0
    replicas_tried: int = 0
    failovers: int = 0
    retries: int = 0
    breaker_skips: int = 0
    shards_ok: int = 0
    shards_failed: int = 0
    skipped_shards: list[int] = field(default_factory=list)
    deadline_exceeded: bool = False
    partial: bool = False
    coverage_fraction: float = 1.0
    simulated_latency_seconds: float = 0.0
    total_distance_computations: int = 0


class DistributedSearchCluster:
    """Shards + replicas + scatter-gather coordinator.

    Parameters
    ----------
    sharding:
        Placement/routing strategy (uniform scatters everywhere).
    replication_factor:
        Replicas per shard (>= 1).
    index_type / index_kwargs:
        Local index each node builds over its shard.
    retry_policy:
        Backoff/retry knobs for contacting replicas; defaults to a
        3-attempt exponential-backoff policy seeded from 0.
    injector:
        Optional :class:`~repro.reliability.faults.FaultInjector` wired
        into every node (chaos testing).
    strict:
        Default failure semantics: ``True`` raises
        :class:`AllReplicasDownError` / :class:`DeadlineExceededError`
        when a shard is unreachable; ``False`` returns a partial result
        with coverage accounting.  Overridable per :meth:`search`.
    breaker_failure_threshold / breaker_cooldown_ops:
        Per-replica circuit-breaker tuning (consecutive failures to
        trip; denied operations before half-opening).
    observability:
        Optional :class:`~repro.observability.Observability` bundle; the
        coordinator emits a ``distributed_search`` span with per-shard
        children whose events record every retry, failover, breaker
        skip/transition, and deadline abandonment (tagged with the
        injected-fault reason when one applies), plus replica/fault
        counters and a coverage histogram.
    """

    def __init__(
        self,
        sharding: ShardingStrategy | None = None,
        num_shards: int = 4,
        replication_factor: int = 1,
        index_type: str = "hnsw",
        latency: NodeLatencyModel | None = None,
        retry_policy: RetryPolicy | None = None,
        injector: FaultInjector | None = None,
        strict: bool = True,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_ops: int = 8,
        observability: Observability | None = None,
        **index_kwargs,
    ):
        self.sharding = sharding or UniformSharding(num_shards)
        self.num_shards = self.sharding.num_shards
        if replication_factor < 1:
            raise VdbmsError("replication_factor must be >= 1")
        self.replication_factor = replication_factor
        self.latency = latency or NodeLatencyModel()
        self.retry_policy = retry_policy or RetryPolicy()
        self.injector = injector
        self.strict = strict
        self.observability = observability if observability is not None else DISABLED
        self._breaker_kwargs = dict(
            failure_threshold=breaker_failure_threshold,
            cooldown_ops=breaker_cooldown_ops,
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        # Per-shard streaming latency sketches (simulated seconds per
        # shard chain, failed attempts and backoff included); folded
        # into one cluster view by latency_sketch()/latency_quantiles().
        self._shard_sketches: dict[int, QuantileSketch] = {}
        self.nodes: list[list[SearchNode]] = [
            [
                SearchNode(
                    f"shard{s}-replica{r}", index_type, self.latency,
                    injector=self.injector, **index_kwargs
                )
                for r in range(replication_factor)
            ]
            for s in range(self.num_shards)
        ]
        self._rr = 0
        self.loaded = False
        self._index_type = index_type
        self._index_kwargs = index_kwargs
        # Retained for rebalancing (scale-out) and async replication.
        self._vectors: np.ndarray | None = None
        self._ids: np.ndarray | None = None
        self._assignment: np.ndarray | None = None
        # Per (shard, replica): queued-but-unapplied inserts (async
        # replica apply, §2.3 out-of-place updates).
        self._pending: dict[tuple[int, int], list[tuple[int, np.ndarray]]] = {}
        self.vectors_moved = 0

    # ------------------------------------------------------------------ load

    def load(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Shard the collection and build every replica's index."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if ids is None:
            ids = np.arange(vectors.shape[0], dtype=np.int64)
        assignment = self.sharding.assign(vectors)
        for shard in range(self.num_shards):
            member = assignment == shard
            for replica in self.nodes[shard]:
                replica.load(vectors[member], ids[member])
        self._vectors = vectors
        self._ids = np.asarray(ids, dtype=np.int64)
        self._assignment = np.asarray(assignment, dtype=np.int64)
        self._pending = {}
        self.loaded = True

    def shard_sizes(self) -> list[int]:
        return [len(replicas[0]) for replicas in self.nodes]

    # --------------------------------------------------------------- writes

    def insert(self, vector: np.ndarray, item_id: int) -> int:
        """Insert with asynchronous replica apply (§2.3).

        The owning shard's *primary* replica applies the write
        immediately; the other replicas only queue it, so their reads
        are stale until :meth:`sync_replicas` drains the queues — the
        eventual-consistency tradeoff [10, 13, 84] make.

        Returns the owning shard id.
        """
        if not self.loaded:
            raise VdbmsError("cluster has no data loaded")
        vector = np.asarray(vector, dtype=np.float32).reshape(1, -1)
        if isinstance(self.sharding, UniformSharding):
            # Round-robin continues from the loaded data's position count.
            shard = int(self._vectors.shape[0] % self.num_shards)
        else:
            shard = int(self.sharding.assign(vector)[0])
        primary = self.nodes[shard][0]
        if primary.index is not None and getattr(
            primary.index, "supports_updates", False
        ):
            primary.index.add(vector, np.asarray([item_id], dtype=np.int64))
        else:
            # Rebuild the primary over its shard + the new row.
            member = self._assignment == shard
            merged = np.vstack([self._vectors[member], vector])
            merged_ids = np.concatenate([
                self._ids[member], np.asarray([item_id], dtype=np.int64)
            ])
            primary.load(merged, merged_ids)
        for r in range(1, self.replication_factor):
            self._pending.setdefault((shard, r), []).append((item_id, vector[0]))
        # Track membership for future rebalancing.
        self._vectors = np.vstack([self._vectors, vector])
        self._ids = np.append(self._ids, item_id)
        self._assignment = np.append(self._assignment, shard)
        return shard

    def pending_replication(self) -> int:
        """Writes applied on primaries but not yet on all replicas."""
        return sum(len(queue) for queue in self._pending.values())

    def sync_replicas(self) -> int:
        """Drain the async-replication queues; returns writes applied."""
        applied = 0
        for (shard, r), queue in list(self._pending.items()):
            node = self.nodes[shard][r]
            updatable = node.index is not None and getattr(
                node.index, "supports_updates", False
            )
            if updatable:
                for item_id, vector in queue:
                    node.index.add(
                        vector[None, :], np.asarray([item_id], dtype=np.int64)
                    )
            else:
                # Non-updatable local index: reload the whole shard once.
                member = self._assignment == shard
                node.load(self._vectors[member], self._ids[member])
            applied += len(queue)
            del self._pending[(shard, r)]
        return applied

    # ------------------------------------------------------------- elasticity

    def scale_out(self, new_num_shards: int) -> int:
        """Re-shard onto more nodes (disaggregated/cloud elasticity, §2.3).

        Uniform sharding only (index-guided placement would retrain its
        clustering instead).  Returns the number of vectors that moved.
        """
        if not isinstance(self.sharding, UniformSharding):
            raise VdbmsError("scale_out currently supports UniformSharding")
        if new_num_shards <= self.num_shards:
            raise VdbmsError("scale_out requires more shards than before")
        if not self.loaded:
            raise VdbmsError("cluster has no data loaded")
        if self._pending:
            self.sync_replicas()
        old_assignment = self._assignment
        self.sharding = UniformSharding(new_num_shards)
        self.num_shards = new_num_shards
        new_assignment = np.arange(self._vectors.shape[0]) % new_num_shards
        moved = int(np.count_nonzero(new_assignment != old_assignment))
        self.vectors_moved += moved
        self.nodes = [
            [
                SearchNode(
                    f"shard{s}-replica{r}", self._index_type, self.latency,
                    injector=self.injector, **self._index_kwargs,
                )
                for r in range(self.replication_factor)
            ]
            for s in range(new_num_shards)
        ]
        self._breakers = {}
        self._shard_sketches = {}
        for shard in range(new_num_shards):
            member = new_assignment == shard
            for replica in self.nodes[shard]:
                replica.load(self._vectors[member], self._ids[member])
        self._assignment = new_assignment
        return moved

    # --------------------------------------------------------------- failure

    def fail_node(self, shard: int, replica: int = 0) -> None:
        self.nodes[shard][replica].is_up = False

    def recover_node(self, shard: int, replica: int = 0) -> None:
        self.nodes[shard][replica].is_up = True

    def attach_injector(self, injector: FaultInjector | None) -> None:
        """(Re)wire a fault injector into the coordinator and all nodes."""
        self.injector = injector
        for replicas in self.nodes:
            for node in replicas:
                node.injector = injector

    def _breaker(self, node: SearchNode) -> CircuitBreaker:
        breaker = self._breakers.get(node.node_id)
        if breaker is None:
            breaker = CircuitBreaker(**self._breaker_kwargs)
            self._breakers[node.node_id] = breaker
        return breaker

    def health(self) -> ClusterHealth:
        """Coordinator's view of every replica's liveness + breaker."""
        view = ClusterHealth()
        for shard, replicas in enumerate(self.nodes):
            for r, node in enumerate(replicas):
                breaker = self._breaker(node)
                view.replicas.append(ReplicaHealth(
                    node_id=node.node_id,
                    shard=shard,
                    replica=r,
                    is_up=node.is_up and not (
                        self.injector is not None
                        and self.injector.is_down(node.node_id)
                    ),
                    breaker_state=breaker.state,
                    consecutive_failures=breaker.consecutive_failures,
                    breaker_trips=breaker.trips,
                    queries_served=node.queries_served,
                ))
        return view

    # ---------------------------------------------------------------- search

    def _pick_replica(self, shard: int) -> list[SearchNode]:
        """Replicas of a shard in round-robin-rotated order."""
        replicas = self.nodes[shard]
        start = self._rr % len(replicas)
        return replicas[start:] + replicas[:start]

    def _breaker_event(self, span, node, breaker, before: str) -> None:
        """Record a breaker state change as a span event + counter."""
        if breaker.state == before:
            return
        span.event(
            "breaker_transition", replica=node.node_id,
            from_state=before, to=breaker.state,
        )
        if self.observability.enabled:
            self.observability.metrics.counter(
                "vdbms_breaker_transitions_total",
                "Circuit-breaker state changes.",
            ).inc(to=breaker.state)

    def _search_shard(
        self,
        shard: int,
        query: np.ndarray,
        k: int,
        dstats: DistributedQueryStats,
        deadline_seconds: float | None,
        params: dict,
        span: Any = NOOP_SPAN,
    ) -> tuple[list[SearchHit] | None, float, SearchStats | None, bool]:
        """One shard's replica chain: breaker -> attempt -> retry -> failover.

        Returns ``(hits, simulated_elapsed, node_stats, deadline_hit)``
        where ``hits is None`` means every replica was exhausted.  The
        elapsed time includes failed attempts and backoff delays
        (failover is sequential within a shard), so failover cost is
        visible in the query's wall clock.
        """
        obs = self.observability
        m = obs.metrics
        elapsed = 0.0
        for node in self._pick_replica(shard):
            breaker = self._breaker(node)
            before = breaker.state
            if not breaker.allow():
                dstats.breaker_skips += 1
                span.event(
                    "breaker_skip", replica=node.node_id, state=breaker.state
                )
                if obs.enabled:
                    m.counter(
                        "vdbms_breaker_skips_total",
                        "Replica attempts denied by an open breaker.",
                    ).inc()
                continue
            self._breaker_event(span, node, breaker, before)
            attempt = 0
            while True:
                if deadline_seconds is not None and elapsed > deadline_seconds:
                    span.event(
                        "deadline_exceeded", replica=node.node_id,
                        simulated_elapsed=elapsed, budget=deadline_seconds,
                    )
                    return None, elapsed, None, True
                dstats.replicas_tried += 1
                before = breaker.state
                try:
                    hits, latency, stats = node.search(query, k, **params)
                except ConnectionError as exc:
                    elapsed += node.latency.failed_request_latency()
                    breaker.record_failure()
                    self._breaker_event(span, node, breaker, before)
                    transient = getattr(exc, "transient", False)
                    reason = getattr(exc, "reason", None) or str(exc)
                    if obs.enabled:
                        m.counter(
                            "vdbms_replica_attempts_total", "Replica requests."
                        ).inc(outcome="error")
                    attempt += 1
                    if transient and attempt < self.retry_policy.max_attempts:
                        # Same replica may answer next time: back off and
                        # retry, charging the wait to the shard's clock.
                        elapsed += self.retry_policy.backoff(attempt)
                        dstats.retries += 1
                        span.event(
                            "retry", replica=node.node_id, attempt=attempt,
                            reason=reason, transient=True,
                        )
                        if obs.enabled:
                            m.counter(
                                "vdbms_replica_retries_total",
                                "Same-replica retries after transient failures.",
                            ).inc()
                        continue
                    dstats.failovers += 1
                    span.event(
                        "failover", replica=node.node_id, attempt=attempt,
                        reason=reason, transient=transient,
                    )
                    if obs.enabled:
                        m.counter(
                            "vdbms_failovers_total",
                            "Replica-chain failovers to the next replica.",
                        ).inc()
                    break  # next replica
                breaker.record_success()
                self._breaker_event(span, node, breaker, before)
                if obs.enabled:
                    m.counter(
                        "vdbms_replica_attempts_total", "Replica requests."
                    ).inc(outcome="ok")
                elapsed += latency
                if deadline_seconds is not None and elapsed > deadline_seconds:
                    span.event(
                        "deadline_exceeded", replica=node.node_id,
                        simulated_elapsed=elapsed, budget=deadline_seconds,
                    )
                    return None, elapsed, None, True
                span.set(replica=node.node_id, simulated_seconds=elapsed)
                return hits, elapsed, stats, False
        return None, elapsed, None, False

    def search(
        self,
        query: np.ndarray,
        k: int,
        route_nprobe: int = 4,
        deadline_seconds: float | None = None,
        strict: bool | None = None,
        **params,
    ) -> tuple[SearchResult, DistributedQueryStats]:
        """Scatter to routed shards, gather and merge the top-k.

        Parameters
        ----------
        deadline_seconds:
            Per-query budget on the simulated clock.  Shards fan out in
            parallel, so each shard's replica chain races the deadline
            independently; a chain that exceeds it is abandoned.
        strict:
            ``True``: raise :class:`AllReplicasDownError` (or
            :class:`DeadlineExceededError`) when any routed shard cannot
            answer.  ``False``: skip the shard and return a result
            flagged partial, with ``shards_ok``/``shards_failed``/
            ``coverage_fraction`` accounting.  ``None`` uses the
            cluster's default.
        """
        if not self.loaded:
            raise VdbmsError("cluster has no data loaded")
        if strict is None:
            strict = self.strict
        obs = self.observability
        self._rr += 1
        dstats = DistributedQueryStats()
        shard_latencies: list[float] = []
        merged: list[SearchHit] = []
        gather_stats = SearchStats(plan_name="scatter_gather")
        root = obs.tracer.start_span(
            "distributed_search", kind="distributed", k=k, strict=strict,
            shards=self.num_shards, replication=self.replication_factor,
        ).attach_stats(gather_stats)
        with root:
            for shard in self.sharding.route(np.asarray(query), route_nprobe):
                dstats.shards_contacted += 1
                with root.child("shard", shard=shard) as shard_span:
                    hits, elapsed, stats, deadline_hit = self._search_shard(
                        shard, query, k, dstats, deadline_seconds, params,
                        span=shard_span,
                    )
                    shard_latencies.append(elapsed)
                    if obs.enabled:
                        self._shard_sketch(shard).observe(elapsed)
                    if hits is None:
                        shard_span.set(
                            ok=False,
                            reason="deadline" if deadline_hit else "no_replica",
                        )
                        dstats.deadline_exceeded |= deadline_hit
                        if strict:
                            if deadline_hit:
                                raise DeadlineExceededError(
                                    deadline_seconds, elapsed
                                )
                            raise AllReplicasDownError(
                                shard, dstats.replicas_tried
                            )
                        dstats.shards_failed += 1
                        dstats.skipped_shards.append(shard)
                        if obs.enabled:
                            obs.metrics.counter(
                                "vdbms_shard_failures_total",
                                "Routed shards that could not answer.",
                            ).inc()
                        continue
                    shard_span.set(ok=True, hits=len(hits))
                dstats.shards_ok += 1
                gather_stats.merge(stats)
                dstats.total_distance_computations += stats.distance_computations
                merged.extend(hits)
            with root.child("merge", inputs=len(merged)):
                merged.sort()
                merged = merged[:k]
            # Parallel fan-out: latency = slowest contacted node + merge cost.
            merge_seconds = 1e-6 * max(1, len(merged))
            dstats.simulated_latency_seconds = (
                (max(shard_latencies) if shard_latencies else 0.0) + merge_seconds
            )
            dstats.coverage_fraction = (
                dstats.shards_ok / dstats.shards_contacted
                if dstats.shards_contacted else 1.0
            )
            dstats.partial = dstats.shards_failed > 0
            gather_stats.elapsed_seconds = dstats.simulated_latency_seconds
            gather_stats.shards_ok = dstats.shards_ok
            gather_stats.shards_failed = dstats.shards_failed
            gather_stats.coverage_fraction = dstats.coverage_fraction
            gather_stats.partial = dstats.partial
            root.set(
                hits=len(merged),
                shards_ok=dstats.shards_ok,
                shards_failed=dstats.shards_failed,
                coverage=round(dstats.coverage_fraction, 4),
                simulated_seconds=dstats.simulated_latency_seconds,
            )
        if obs.enabled:
            obs.record_query(
                "distributed", "scatter_gather", gather_stats,
                elapsed_seconds=dstats.simulated_latency_seconds,
                simulated=True,
            )
            m = obs.metrics
            m.histogram(
                "vdbms_coverage_fraction",
                "Per-query fraction of routed shards that answered.",
                buckets=_COVERAGE_BUCKETS,
            ).observe(dstats.coverage_fraction)
            if dstats.partial:
                m.counter(
                    "vdbms_degraded_queries_total",
                    "Queries answered with partial shard coverage.",
                ).inc()
        if dstats.partial:
            warnings.warn(
                "query answered with partial coverage"
                f" ({dstats.shards_ok}/{dstats.shards_contacted} shards,"
                f" skipped {dstats.skipped_shards})",
                PartialResultWarning,
                stacklevel=2,
            )
        return SearchResult(hits=merged, stats=gather_stats), dstats

    # ----------------------------------------------------- latency sketches

    def _shard_sketch(self, shard: int) -> QuantileSketch:
        sketch = self._shard_sketches.get(shard)
        if sketch is None:
            sketch = self._shard_sketches[shard] = QuantileSketch(
                DEFAULT_QUANTILES
            )
        return sketch

    def latency_sketch(self) -> QuantileSketch:
        """Cluster-level latency sketch: the per-shard sketches folded
        into one, exactly the gather-side merge a coordinator performs
        (each shard streams its own P² sketch; the coordinator never
        sees raw per-query samples)."""
        merged = QuantileSketch(DEFAULT_QUANTILES)
        for shard in sorted(self._shard_sketches):
            merged.merge(self._shard_sketches[shard])
        return merged

    def latency_quantiles(self) -> dict[str, float]:
        """Merged per-shard latency quantiles (empty dict before any
        observed query or with observability disabled)."""
        merged = self.latency_sketch()
        if merged.count == 0:
            return {}
        out = {"count": float(merged.count)}
        for q, value in merged.quantiles_snapshot().items():
            out[f"p{q * 100:g}"] = value
        return out

    def throughput_estimate(self, per_query: DistributedQueryStats) -> float:
        """Aggregate QPS bound: each query busies only contacted shards,
        so the cluster sustains ~num_shards/contacted parallel queries."""
        if per_query.simulated_latency_seconds <= 0:
            return float("inf")
        concurrency = self.num_shards / max(1, per_query.shards_contacted)
        return concurrency / per_query.simulated_latency_seconds
