"""Scatter-gather search over sharded, replicated nodes (§2.3).

:class:`DistributedSearchCluster` is the coordinator: it shards the
collection per a :class:`~repro.distributed.shard.ShardingStrategy`,
keeps ``replication_factor`` replicas of each shard, scatters a query
to one live replica of each routed shard, and gathers/merges the
per-shard top-k.

The simulated wall clock follows the scatter-gather shape: contacted
replicas work in parallel, so per-query latency is the *maximum* node
latency plus a merge term — which is how adding shards buys throughput
and tail latency shifts.  Node failures are injectable to exercise the
replica failover path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import VdbmsError
from ..core.types import SearchHit, SearchResult, SearchStats
from .node import NodeLatencyModel, SearchNode
from .shard import ShardingStrategy, UniformSharding


@dataclass
class DistributedQueryStats:
    """Coordinator-side accounting for one query."""

    shards_contacted: int = 0
    replicas_tried: int = 0
    failovers: int = 0
    simulated_latency_seconds: float = 0.0
    total_distance_computations: int = 0


class DistributedSearchCluster:
    """Shards + replicas + scatter-gather coordinator.

    Parameters
    ----------
    sharding:
        Placement/routing strategy (uniform scatters everywhere).
    replication_factor:
        Replicas per shard (>= 1).
    index_type / index_kwargs:
        Local index each node builds over its shard.
    """

    def __init__(
        self,
        sharding: ShardingStrategy | None = None,
        num_shards: int = 4,
        replication_factor: int = 1,
        index_type: str = "hnsw",
        latency: NodeLatencyModel | None = None,
        **index_kwargs,
    ):
        self.sharding = sharding or UniformSharding(num_shards)
        self.num_shards = self.sharding.num_shards
        if replication_factor < 1:
            raise VdbmsError("replication_factor must be >= 1")
        self.replication_factor = replication_factor
        self.latency = latency or NodeLatencyModel()
        self.nodes: list[list[SearchNode]] = [
            [
                SearchNode(
                    f"shard{s}-replica{r}", index_type, self.latency, **index_kwargs
                )
                for r in range(replication_factor)
            ]
            for s in range(self.num_shards)
        ]
        self._rr = 0
        self.loaded = False
        self._index_type = index_type
        self._index_kwargs = index_kwargs
        # Retained for rebalancing (scale-out) and async replication.
        self._vectors: np.ndarray | None = None
        self._ids: np.ndarray | None = None
        self._assignment: np.ndarray | None = None
        # Per (shard, replica): queued-but-unapplied inserts (async
        # replica apply, §2.3 out-of-place updates).
        self._pending: dict[tuple[int, int], list[tuple[int, np.ndarray]]] = {}
        self.vectors_moved = 0

    # ------------------------------------------------------------------ load

    def load(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Shard the collection and build every replica's index."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if ids is None:
            ids = np.arange(vectors.shape[0], dtype=np.int64)
        assignment = self.sharding.assign(vectors)
        for shard in range(self.num_shards):
            member = assignment == shard
            for replica in self.nodes[shard]:
                replica.load(vectors[member], ids[member])
        self._vectors = vectors
        self._ids = np.asarray(ids, dtype=np.int64)
        self._assignment = np.asarray(assignment, dtype=np.int64)
        self._pending = {}
        self.loaded = True

    def shard_sizes(self) -> list[int]:
        return [len(replicas[0]) for replicas in self.nodes]

    # --------------------------------------------------------------- writes

    def insert(self, vector: np.ndarray, item_id: int) -> int:
        """Insert with asynchronous replica apply (§2.3).

        The owning shard's *primary* replica applies the write
        immediately; the other replicas only queue it, so their reads
        are stale until :meth:`sync_replicas` drains the queues — the
        eventual-consistency tradeoff [10, 13, 84] make.

        Returns the owning shard id.
        """
        if not self.loaded:
            raise VdbmsError("cluster has no data loaded")
        vector = np.asarray(vector, dtype=np.float32).reshape(1, -1)
        if isinstance(self.sharding, UniformSharding):
            # Round-robin continues from the loaded data's position count.
            shard = int(self._vectors.shape[0] % self.num_shards)
        else:
            shard = int(self.sharding.assign(vector)[0])
        primary = self.nodes[shard][0]
        if primary.index is not None and getattr(
            primary.index, "supports_updates", False
        ):
            primary.index.add(vector, np.asarray([item_id], dtype=np.int64))
        else:
            # Rebuild the primary over its shard + the new row.
            member = self._assignment == shard
            merged = np.vstack([self._vectors[member], vector])
            merged_ids = np.concatenate([
                self._ids[member], np.asarray([item_id], dtype=np.int64)
            ])
            primary.load(merged, merged_ids)
        for r in range(1, self.replication_factor):
            self._pending.setdefault((shard, r), []).append((item_id, vector[0]))
        # Track membership for future rebalancing.
        self._vectors = np.vstack([self._vectors, vector])
        self._ids = np.append(self._ids, item_id)
        self._assignment = np.append(self._assignment, shard)
        return shard

    def pending_replication(self) -> int:
        """Writes applied on primaries but not yet on all replicas."""
        return sum(len(queue) for queue in self._pending.values())

    def sync_replicas(self) -> int:
        """Drain the async-replication queues; returns writes applied."""
        applied = 0
        for (shard, r), queue in list(self._pending.items()):
            node = self.nodes[shard][r]
            updatable = node.index is not None and getattr(
                node.index, "supports_updates", False
            )
            if updatable:
                for item_id, vector in queue:
                    node.index.add(
                        vector[None, :], np.asarray([item_id], dtype=np.int64)
                    )
            else:
                # Non-updatable local index: reload the whole shard once.
                member = self._assignment == shard
                node.load(self._vectors[member], self._ids[member])
            applied += len(queue)
            del self._pending[(shard, r)]
        return applied

    # ------------------------------------------------------------- elasticity

    def scale_out(self, new_num_shards: int) -> int:
        """Re-shard onto more nodes (disaggregated/cloud elasticity, §2.3).

        Uniform sharding only (index-guided placement would retrain its
        clustering instead).  Returns the number of vectors that moved.
        """
        if not isinstance(self.sharding, UniformSharding):
            raise VdbmsError("scale_out currently supports UniformSharding")
        if new_num_shards <= self.num_shards:
            raise VdbmsError("scale_out requires more shards than before")
        if not self.loaded:
            raise VdbmsError("cluster has no data loaded")
        if self._pending:
            self.sync_replicas()
        old_assignment = self._assignment
        self.sharding = UniformSharding(new_num_shards)
        self.num_shards = new_num_shards
        new_assignment = np.arange(self._vectors.shape[0]) % new_num_shards
        moved = int(np.count_nonzero(new_assignment != old_assignment))
        self.vectors_moved += moved
        self.nodes = [
            [
                SearchNode(
                    f"shard{s}-replica{r}", self._index_type, self.latency,
                    **self._index_kwargs,
                )
                for r in range(self.replication_factor)
            ]
            for s in range(new_num_shards)
        ]
        for shard in range(new_num_shards):
            member = new_assignment == shard
            for replica in self.nodes[shard]:
                replica.load(self._vectors[member], self._ids[member])
        self._assignment = new_assignment
        return moved

    # --------------------------------------------------------------- failure

    def fail_node(self, shard: int, replica: int = 0) -> None:
        self.nodes[shard][replica].is_up = False

    def recover_node(self, shard: int, replica: int = 0) -> None:
        self.nodes[shard][replica].is_up = True

    # ---------------------------------------------------------------- search

    def _pick_replica(self, shard: int) -> list[SearchNode]:
        """Replicas of a shard in round-robin-rotated order."""
        replicas = self.nodes[shard]
        start = self._rr % len(replicas)
        return replicas[start:] + replicas[:start]

    def search(
        self,
        query: np.ndarray,
        k: int,
        route_nprobe: int = 4,
        **params,
    ) -> tuple[SearchResult, DistributedQueryStats]:
        """Scatter to routed shards, gather and merge the top-k."""
        if not self.loaded:
            raise VdbmsError("cluster has no data loaded")
        self._rr += 1
        dstats = DistributedQueryStats()
        shard_latencies: list[float] = []
        merged: list[SearchHit] = []
        gather_stats = SearchStats(plan_name="scatter_gather")
        for shard in self.sharding.route(np.asarray(query), route_nprobe):
            dstats.shards_contacted += 1
            hits: list[SearchHit] | None = None
            for node in self._pick_replica(shard):
                dstats.replicas_tried += 1
                try:
                    hits, latency, stats = node.search(query, k, **params)
                except ConnectionError:
                    dstats.failovers += 1
                    continue
                shard_latencies.append(latency)
                gather_stats.merge(stats)
                dstats.total_distance_computations += stats.distance_computations
                break
            if hits is None:
                raise VdbmsError(f"all replicas of shard {shard} are down")
            merged.extend(hits)
        merged.sort()
        merged = merged[:k]
        # Parallel fan-out: latency = slowest contacted node + merge cost.
        merge_seconds = 1e-6 * max(1, len(merged))
        dstats.simulated_latency_seconds = (
            (max(shard_latencies) if shard_latencies else 0.0) + merge_seconds
        )
        gather_stats.elapsed_seconds = dstats.simulated_latency_seconds
        return SearchResult(hits=merged, stats=gather_stats), dstats

    def throughput_estimate(self, per_query: DistributedQueryStats) -> float:
        """Aggregate QPS bound: each query busies only contacted shards,
        so the cluster sustains ~num_shards/contacted parallel queries."""
        if per_query.simulated_latency_seconds <= 0:
            return float("inf")
        concurrency = self.num_shards / max(1, per_query.shards_contacted)
        return concurrency / per_query.simulated_latency_seconds
