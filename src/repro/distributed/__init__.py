"""Distributed search: sharding, replicas, scatter-gather (§2.3)."""

from ..reliability import (
    CircuitBreaker,
    ClusterHealth,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from .cluster import DistributedQueryStats, DistributedSearchCluster
from .node import NodeLatencyModel, SearchNode
from .shard import IndexGuidedSharding, ShardingStrategy, UniformSharding

__all__ = [
    "CircuitBreaker",
    "ClusterHealth",
    "DistributedQueryStats",
    "DistributedSearchCluster",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IndexGuidedSharding",
    "NodeLatencyModel",
    "RetryPolicy",
    "SearchNode",
    "ShardingStrategy",
    "UniformSharding",
]
