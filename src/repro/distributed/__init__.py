"""Distributed search: sharding, replicas, scatter-gather (§2.3)."""

from .cluster import DistributedQueryStats, DistributedSearchCluster
from .node import NodeLatencyModel, SearchNode
from .shard import IndexGuidedSharding, ShardingStrategy, UniformSharding

__all__ = [
    "DistributedQueryStats",
    "DistributedSearchCluster",
    "IndexGuidedSharding",
    "NodeLatencyModel",
    "SearchNode",
    "ShardingStrategy",
    "UniformSharding",
]
