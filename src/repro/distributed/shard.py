"""Sharding strategies for distributed search (§2.3 Distributed Search).

The tutorial names two ways to partition a collection into shards:
"the vectors can be equally partitioned or the partitioning can be
index guided, such as placing all vectors in the same bucket into the
same partition".

* :class:`UniformSharding` — round-robin assignment; every query must
  scatter to every shard.
* :class:`IndexGuidedSharding` — k-means cells map to shards, and a
  query routes only to the shards owning the cells nearest to it, so
  fewer nodes are touched per query (bench E11's comparison).
"""

from __future__ import annotations

import abc

import numpy as np

from ..quantization.kmeans import assign_topn, kmeans


class ShardingStrategy(abc.ABC):
    """Assigns vectors to shards and routes queries to shards."""

    def __init__(self, num_shards: int):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards

    @abc.abstractmethod
    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Shard id per row of ``vectors``."""

    @abc.abstractmethod
    def route(self, query: np.ndarray, nprobe: int) -> list[int]:
        """Shards a query must contact (ordered by priority)."""


class UniformSharding(ShardingStrategy):
    """Equal partitioning; queries scatter everywhere."""

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        return np.arange(vectors.shape[0]) % self.num_shards

    def route(self, query: np.ndarray, nprobe: int) -> list[int]:
        return list(range(self.num_shards))


class IndexGuidedSharding(ShardingStrategy):
    """k-means-cell-to-shard placement with nearest-shard routing.

    Cells are balanced onto shards by size (largest-first bin packing)
    so shards stay roughly even despite skewed clusters.
    """

    def __init__(self, num_shards: int, cells_per_shard: int = 4, seed: int = 0):
        super().__init__(num_shards)
        self.cells_per_shard = max(1, cells_per_shard)
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._cell_to_shard: np.ndarray | None = None

    def fit(self, vectors: np.ndarray) -> "IndexGuidedSharding":
        n = vectors.shape[0]
        ncells = min(self.num_shards * self.cells_per_shard, n)
        result = kmeans(np.asarray(vectors, dtype=np.float64), ncells, seed=self.seed)
        self.centroids = result.centroids
        sizes = np.bincount(result.assignments, minlength=ncells)
        # Largest-first bin packing onto the emptiest shard.
        loads = np.zeros(self.num_shards, dtype=np.int64)
        cell_to_shard = np.zeros(ncells, dtype=np.int64)
        for cell in np.argsort(sizes)[::-1]:
            shard = int(loads.argmin())
            cell_to_shard[cell] = shard
            loads[shard] += sizes[cell]
        self._cell_to_shard = cell_to_shard
        self._assignments = result.assignments
        return self

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        if self.centroids is None:
            self.fit(vectors)
            return self._cell_to_shard[self._assignments]
        cells = assign_topn(np.asarray(vectors, np.float64), self.centroids, 1)[:, 0]
        return self._cell_to_shard[cells]

    def route(self, query: np.ndarray, nprobe: int) -> list[int]:
        if self.centroids is None:
            raise RuntimeError("IndexGuidedSharding.fit() has not been called")
        ncells = self.centroids.shape[0]
        cells = assign_topn(
            np.asarray(query, np.float64)[None, :], self.centroids, min(nprobe, ncells)
        )[0]
        # Preserve priority order while deduplicating shards.
        seen: dict[int, None] = {}
        for cell in cells:
            seen.setdefault(int(self._cell_to_shard[cell]), None)
        return list(seen)
