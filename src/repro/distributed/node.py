"""A simulated search node: one shard's data, index, and latency model.

Real distributed VDBMSs pay a per-request network cost plus the node's
local search cost; the simulated clock models both so scatter-gather
wall-clock estimates behave like the real thing (queries fan out in
parallel, so elapsed time is the *max* over contacted nodes — the
cluster computes that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.types import SearchHit, SearchStats
from ..index.registry import make_index


@dataclass
class NodeLatencyModel:
    """Synthetic per-request latency: network RTT + per-distance compute."""

    network_seconds: float = 0.0005
    per_distance_seconds: float = 1e-7

    def request_latency(self, stats: SearchStats) -> float:
        return (
            self.network_seconds
            + stats.distance_computations * self.per_distance_seconds
        )


class SearchNode:
    """One shard replica: a subset of vectors with its own index."""

    def __init__(
        self,
        node_id: str,
        index_type: str = "hnsw",
        latency: NodeLatencyModel | None = None,
        **index_kwargs: Any,
    ):
        self.node_id = node_id
        self.index_type = index_type
        self.index_kwargs = index_kwargs
        self.latency = latency or NodeLatencyModel()
        self.index = None
        self.queries_served = 0
        self.is_up = True

    def load(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Build this node's local index over its shard of the data."""
        self.index = make_index(self.index_type, **self.index_kwargs)
        if vectors.shape[0]:
            self.index.build(vectors, ids=ids)

    def __len__(self) -> int:
        return 0 if self.index is None else len(self.index)

    def search(
        self, query: np.ndarray, k: int, **params: Any
    ) -> tuple[list[SearchHit], float, SearchStats]:
        """Local search; returns (hits, simulated latency, stats)."""
        if not self.is_up:
            raise ConnectionError(f"node {self.node_id} is down")
        self.queries_served += 1
        stats = SearchStats()
        if self.index is None or len(self.index) == 0:
            return [], self.latency.network_seconds, stats
        hits = self.index.search(query, k, stats=stats, **params)
        return hits, self.latency.request_latency(stats), stats
