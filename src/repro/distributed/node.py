"""A simulated search node: one shard's data, index, and latency model.

Real distributed VDBMSs pay a per-request network cost plus the node's
local search cost; the simulated clock models both so scatter-gather
wall-clock estimates behave like the real thing (queries fan out in
parallel, so elapsed time is the *max* over contacted nodes — the
cluster computes that).

Fault injection (``repro.reliability``): a node may carry a
:class:`~repro.reliability.faults.FaultInjector`; before serving it asks
the injector whether this request crashes, fails transiently, or runs
slow, and raises the typed errors the coordinator's failover/retry
logic keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.errors import ReplicaUnavailableError
from ..core.types import SearchHit, SearchStats
from ..index.registry import make_index
from ..reliability.faults import FaultInjector


@dataclass
class NodeLatencyModel:
    """Synthetic per-request latency: network RTT + per-distance compute."""

    network_seconds: float = 0.0005
    per_distance_seconds: float = 1e-7
    # A failed attempt is not free: the coordinator still pays (at least)
    # the RTT — or a timeout's worth of waiting — before it can fail
    # over.  Charged per failed attempt into the simulated wall clock so
    # failover cost shows up in ``simulated_latency_seconds``.
    failed_attempt_seconds: float | None = None

    def request_latency(self, stats: SearchStats) -> float:
        return (
            self.network_seconds
            + stats.distance_computations * self.per_distance_seconds
        )

    def failed_request_latency(self) -> float:
        """Simulated time burned by one failed/refused attempt."""
        if self.failed_attempt_seconds is not None:
            return self.failed_attempt_seconds
        return self.network_seconds


class SearchNode:
    """One shard replica: a subset of vectors with its own index."""

    def __init__(
        self,
        node_id: str,
        index_type: str = "hnsw",
        latency: NodeLatencyModel | None = None,
        injector: FaultInjector | None = None,
        **index_kwargs: Any,
    ):
        self.node_id = node_id
        self.index_type = index_type
        self.index_kwargs = index_kwargs
        self.latency = latency or NodeLatencyModel()
        self.injector = injector
        self.index = None
        self.queries_served = 0
        self.is_up = True

    def load(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        """Build this node's local index over its shard of the data."""
        self.index = make_index(self.index_type, **self.index_kwargs)
        if vectors.shape[0]:
            self.index.build(vectors, ids=ids)

    def __len__(self) -> int:
        return 0 if self.index is None else len(self.index)

    def search(
        self, query: np.ndarray, k: int, **params: Any
    ) -> tuple[list[SearchHit], float, SearchStats]:
        """Local search; returns (hits, simulated latency, stats).

        Raises :class:`ReplicaUnavailableError` (a ``ConnectionError``)
        when the node is administratively down, crashed by the fault
        injector, or hit by an injected transient failure; the error's
        ``transient`` flag tells the coordinator whether retrying this
        same replica can help.
        """
        if not self.is_up:
            raise ReplicaUnavailableError(self.node_id, reason="node is down")
        slowdown = 1.0
        if self.injector is not None:
            decision = self.injector.on_request(self.node_id)
            if decision.crashed:
                raise ReplicaUnavailableError(
                    self.node_id, reason="crashed (injected)"
                )
            if decision.flaky:
                raise ReplicaUnavailableError(
                    self.node_id, reason="request dropped (injected)",
                    transient=True,
                )
            slowdown = decision.slowdown
        self.queries_served += 1
        stats = SearchStats()
        if self.index is None or len(self.index) == 0:
            latency = slowdown * self.latency.network_seconds
            stats.elapsed_seconds = latency
            return [], latency, stats
        hits = self.index.search(query, k, stats=stats, **params)
        latency = slowdown * self.latency.request_latency(stats)
        stats.elapsed_seconds = latency
        return hits, latency, stats
