"""Vector compression: k-means, SQ, PQ, OPQ, IVFADC, blocked ADC scans."""

from .anisotropic import AnisotropicQuantizer
from .fastscan import (
    FastScanPQ,
    QuantizedTable,
    blocked_adc_scan,
    naive_adc_scan,
    quantize_table,
    table_quantization_error,
    transpose_codes,
)
from .ivfadc import IvfAdc, IvfAdcSearchStats
from .kmeans import KMeansResult, assign, assign_topn, kmeans, kmeans_pp_init
from .opq import OptimizedProductQuantizer
from .pq import ProductQuantizer
from .residual import ResidualQuantizer
from .scalar import ScalarQuantizer

__all__ = [
    "AnisotropicQuantizer",
    "FastScanPQ",
    "ResidualQuantizer",
    "IvfAdc",
    "IvfAdcSearchStats",
    "KMeansResult",
    "OptimizedProductQuantizer",
    "ProductQuantizer",
    "QuantizedTable",
    "ScalarQuantizer",
    "assign",
    "assign_topn",
    "blocked_adc_scan",
    "kmeans",
    "kmeans_pp_init",
    "naive_adc_scan",
    "quantize_table",
    "table_quantization_error",
    "transpose_codes",
]
