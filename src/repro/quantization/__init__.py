"""Vector compression: k-means, SQ, PQ, OPQ, IVFADC, blocked ADC scans."""

from .anisotropic import AnisotropicQuantizer
from .fastscan import (
    FASTSCAN_BLOCK,
    BlockedCodes,
    FastScanPQ,
    QuantizedLuts,
    QuantizedTable,
    blocked_adc_scan,
    concat_blocked,
    fastscan_accumulate,
    gather_packed_cells,
    naive_adc_scan,
    pack_codes_blocked,
    quantize_table,
    quantize_tables,
    table_quantization_error,
    transpose_codes,
)
from .ivfadc import IvfAdc, IvfAdcSearchStats
from .kmeans import KMeansResult, assign, assign_topn, kmeans, kmeans_pp_init
from .opq import OptimizedProductQuantizer
from .pq import ProductQuantizer
from .residual import ResidualQuantizer
from .scalar import ScalarQuantizer

__all__ = [
    "FASTSCAN_BLOCK",
    "AnisotropicQuantizer",
    "BlockedCodes",
    "FastScanPQ",
    "ResidualQuantizer",
    "IvfAdc",
    "IvfAdcSearchStats",
    "KMeansResult",
    "OptimizedProductQuantizer",
    "ProductQuantizer",
    "QuantizedLuts",
    "QuantizedTable",
    "ScalarQuantizer",
    "assign",
    "assign_topn",
    "blocked_adc_scan",
    "concat_blocked",
    "fastscan_accumulate",
    "gather_packed_cells",
    "kmeans",
    "kmeans_pp_init",
    "naive_adc_scan",
    "pack_codes_blocked",
    "quantize_table",
    "quantize_tables",
    "table_quantization_error",
    "transpose_codes",
]
