"""IVFADC [49]: inverted file + asymmetric distance computation (§2.2).

The collection is coarsely partitioned by k-means into ``nlist`` cells;
within a cell, each vector is stored as the PQ code of its *residual*
(vector minus cell centroid).  A query probes the ``nprobe`` nearest
cells and scores candidates with one ADC table per probed cell (built on
the query residual), never touching full vectors.

This module exposes the quantizer-level object; the searchable index
wrapper lives in :mod:`repro.index.ivf`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import IndexNotBuiltError
from ..index._kernels import topk_indices
from .fastscan import (
    BlockedCodes,
    fastscan_accumulate,
    gather_packed_cells,
    pack_codes_blocked,
    quantize_tables,
)
from .kmeans import assign_topn, kmeans
from .pq import ProductQuantizer


@dataclass
class IvfAdcSearchStats:
    cells_probed: int = 0
    codes_scanned: int = 0


class IvfAdc:
    """Coarse quantizer + PQ-on-residuals storage and ADC search.

    Parameters
    ----------
    nlist:
        Number of coarse k-means cells.
    m, ks:
        Product quantizer shape for the residual codes.
    layout:
        ``"flat"`` scores each probed cell with a float ADC table (the
        differential oracle, also exposed as :meth:`search_reference`);
        ``"blocked"`` additionally stores codes in the register-blocked
        FastScan layout and scans all probed cells with jointly
        quantized uint8 LUTs plus an exact-rerank tail (§2.3,
        Quick(er)-ADC).
    """

    def __init__(
        self,
        nlist: int = 64,
        m: int = 8,
        ks: int = 256,
        seed: int = 0,
        layout: str = "flat",
    ):
        if nlist <= 0:
            raise ValueError("nlist must be positive")
        if layout not in ("flat", "blocked"):
            raise ValueError(f"unknown layout {layout!r}")
        self.nlist = nlist
        self.pq = ProductQuantizer(m=m, ks=ks, seed=seed)
        self.seed = seed
        self.layout = layout
        self.centroids: np.ndarray | None = None
        self._cell_ids: list[np.ndarray] = []  # external ids per cell
        self._cell_codes: list[np.ndarray] = []  # (n_i, m) uint8 per cell
        # Register-blocked twin of _cell_codes, maintained only for the
        # blocked layout.
        self._cell_packed: list[BlockedCodes] = []
        self.dim: int | None = None

    @property
    def is_trained(self) -> bool:
        return self.centroids is not None

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexNotBuiltError("IvfAdc.train() has not been called")

    def train(self, data: np.ndarray) -> "IvfAdc":
        """Learn the coarse centroids and the residual PQ codebooks."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < self.nlist:
            raise ValueError(
                f"need >= nlist={self.nlist} training vectors, got {data.shape}"
            )
        self.dim = data.shape[1]
        coarse = kmeans(data, self.nlist, seed=self.seed)
        self.centroids = coarse.centroids
        residuals = data - self.centroids[coarse.assignments]
        self.pq.train(residuals)
        self._cell_ids = [np.empty(0, dtype=np.int64) for _ in range(self.nlist)]
        self._cell_codes = [
            np.empty((0, self.pq.m), dtype=np.uint8) for _ in range(self.nlist)
        ]
        if self.layout == "blocked":
            empty = np.empty((0, self.pq.m), dtype=np.uint8)
            self._cell_packed = [
                pack_codes_blocked(empty, self.pq.ks) for _ in range(self.nlist)
            ]
        return self

    def add(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Encode vectors into their cells' posting lists."""
        self._require_trained()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != vectors.shape[0]:
            raise ValueError("ids and vectors length mismatch")
        cells = assign_topn(vectors, self.centroids, 1)[:, 0]
        residuals = vectors - self.centroids[cells]
        codes = self.pq.encode(residuals)
        for cell in np.unique(cells):
            mask = cells == cell
            self._cell_ids[cell] = np.concatenate([self._cell_ids[cell], ids[mask]])
            self._cell_codes[cell] = np.vstack(
                [self._cell_codes[cell], codes[mask]]
            )
            if self.layout == "blocked":
                self._cell_packed[cell] = pack_codes_blocked(
                    self._cell_codes[cell], self.pq.ks
                )

    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int = 8,
        rerank: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, IvfAdcSearchStats]:
        """Return (ids, squared_distances, stats) of the ADC top-k.

        With the blocked layout, ``rerank`` caps the exact-rerank tail
        (``None`` → ``max(4 * k, 32)``; ``0`` disables reranking and
        returns raw quantized-LUT distances).  The flat layout ignores
        it — float tables need no rerank.
        """
        if self.layout == "blocked":
            return self._search_blocked(query, k, nprobe, rerank)
        return self.search_reference(query, k, nprobe)

    def search_reference(
        self, query: np.ndarray, k: int, nprobe: int = 8
    ) -> tuple[np.ndarray, np.ndarray, IvfAdcSearchStats]:
        """Per-cell float-table ADC scan: the differential oracle.

        Intentionally kept cell-at-a-time (one table build and one
        lookup per probed cell) so the blocked layout's one-pass scan
        has a faithful reference to be measured and tested against.
        """
        self._require_trained()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        nprobe = max(1, min(nprobe, self.nlist))
        probe_cells = assign_topn(query[None, :], self.centroids, nprobe)[0]
        stats = IvfAdcSearchStats()

        all_ids: list[np.ndarray] = []
        all_dists: list[np.ndarray] = []
        for cell in probe_cells:
            codes = self._cell_codes[cell]
            if codes.shape[0] == 0:
                continue
            stats.cells_probed += 1
            stats.codes_scanned += codes.shape[0]
            table = self.pq.adc_table(query - self.centroids[cell])
            all_ids.append(self._cell_ids[cell])
            all_dists.append(self.pq.lookup(table, codes))
        if not all_ids:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                stats,
            )
        ids = np.concatenate(all_ids)
        dists = np.concatenate(all_dists)
        order = topk_indices(dists, min(k, ids.shape[0]))
        return ids[order], dists[order], stats

    def _search_blocked(
        self, query: np.ndarray, k: int, nprobe: int, rerank: int | None
    ) -> tuple[np.ndarray, np.ndarray, IvfAdcSearchStats]:
        """One-pass register-blocked scan over every probed cell.

        All probed cells' residual ADC tables are built in one batched
        pass, quantized jointly to shared-scale uint8 LUTs, and scanned
        with one contiguous gather per subquantizer pair; the top
        candidates by quantized sum are then re-scored against the
        float tables (exact-rerank tail) before the final top-k cut.
        """
        self._require_trained()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        nprobe = max(1, min(nprobe, self.nlist))
        probe_cells = assign_topn(query[None, :], self.centroids, nprobe)[0]
        stats = IvfAdcSearchStats()

        cells: list[int] = []
        sizes: list[int] = []
        id_chunks: list[np.ndarray] = []
        for c in probe_cells:
            count = self._cell_codes[c].shape[0]
            if count:
                cells.append(int(c))
                sizes.append(count)
                id_chunks.append(self._cell_ids[c])
        if not cells:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                stats,
            )
        total = sum(sizes)
        stats.cells_probed = len(cells)
        stats.codes_scanned = total

        residuals = query[None, :] - self.centroids[cells]
        tables = self.pq.adc_tables(residuals)  # (c, m, ks) float64
        blocked = gather_packed_cells(self._cell_packed, cells)
        qluts = quantize_tables(tables, paired=blocked.paired)
        slots = np.repeat(np.arange(len(cells), dtype=np.int32), sizes)
        acc = fastscan_accumulate(qluts.luts, blocked.packed, slots * qluts.lut_size)
        ids = np.concatenate(id_chunks)

        tail = max(4 * k, 32) if rerank is None else rerank
        if tail <= 0:
            approx = qluts.dequantize(acc)
            order = topk_indices(approx, min(k, total))
            return ids[order], approx[order], stats

        # Accumulator order == approximate-distance order (monotone
        # affine map), and the tail is re-sorted exactly anyway, so the
        # candidate cut runs on the raw uint accumulator, unsorted.
        tail = min(tail, total)
        cand = np.argpartition(acc, tail - 1)[:tail] if tail < total else np.arange(
            total
        )
        codes = np.concatenate([self._cell_codes[c] for c in cells], axis=0)
        cand_codes = codes[cand]
        cand_slots = slots[cand]
        exact = tables[
            cand_slots[:, None], np.arange(self.pq.m)[None, :], cand_codes
        ].sum(axis=1)
        order = topk_indices(exact, min(k, cand.shape[0]))
        return ids[cand][order], exact[order], stats

    def memory_bytes(self) -> int:
        """Approximate resident size: centroids + codes + id lists."""
        self._require_trained()
        centroid_bytes = self.centroids.nbytes
        code_bytes = sum(c.nbytes for c in self._cell_codes)
        id_bytes = sum(i.nbytes for i in self._cell_ids)
        packed_bytes = sum(p.packed.nbytes for p in self._cell_packed)
        return centroid_bytes + code_bytes + id_bytes + packed_bytes

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._cell_ids)
