"""Optimized product quantization (OPQ) [41] (§2.2).

PQ's error depends on how variance is distributed across subspaces; OPQ
learns an orthogonal rotation ``R`` so that the rotated data product-
quantizes better.  We implement the non-parametric alternating solver of
Ge et al.: fix codebooks, solve the orthogonal Procrustes problem for R
via SVD; fix R, retrain/re-encode.  The public surface mirrors
:class:`~repro.quantization.pq.ProductQuantizer` with the rotation folded
into encode/decode/ADC, so OPQ is a drop-in replacement everywhere PQ is
accepted.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import IndexNotBuiltError
from ..core.types import VECTOR_DTYPE
from .pq import ProductQuantizer


class OptimizedProductQuantizer:
    """PQ behind a learned orthogonal rotation.

    Parameters
    ----------
    m, ks:
        As in :class:`ProductQuantizer`.
    opq_iterations:
        Alternating optimization rounds (rotation <-> codebooks).
    """

    def __init__(self, m: int = 8, ks: int = 256, opq_iterations: int = 10, seed: int = 0):
        self.pq = ProductQuantizer(m=m, ks=ks, seed=seed)
        self.opq_iterations = opq_iterations
        self.seed = seed
        self._rotation: np.ndarray | None = None

    @property
    def m(self) -> int:
        return self.pq.m

    @property
    def ks(self) -> int:
        return self.pq.ks

    @property
    def dim(self) -> int | None:
        return self.pq.dim

    @property
    def is_trained(self) -> bool:
        return self._rotation is not None and self.pq.is_trained

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexNotBuiltError(
                "OptimizedProductQuantizer.train() has not been called"
            )

    def train(self, data: np.ndarray) -> "OptimizedProductQuantizer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("training data must be a non-empty 2-D matrix")
        dim = data.shape[1]
        rotation = np.eye(dim)
        self.pq.train(data)
        for _ in range(self.opq_iterations):
            rotated = data @ rotation
            codes = self.pq.encode(rotated)
            recon = self.pq.decode(codes).astype(np.float64)
            # Orthogonal Procrustes: argmin_R ||X R - Y||_F with R orthogonal
            # is R = U V^T from SVD(X^T Y).
            u, _, vt = np.linalg.svd(data.T @ recon)
            rotation = u @ vt
            self.pq.train(data @ rotation)
        self._rotation = rotation
        return self

    def _rotate(self, vectors: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(vectors, dtype=np.float64)) @ self._rotation

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        self._require_trained()
        return self.pq.encode(self._rotate(vectors))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        self._require_trained()
        recon = self.pq.decode(codes).astype(np.float64)
        return (recon @ self._rotation.T).astype(VECTOR_DTYPE)

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        self._require_trained()
        return self.pq.adc_table(self._rotate(query)[0])

    lookup = staticmethod(ProductQuantizer.lookup)

    def adc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        return self.lookup(self.adc_table(query), codes)

    def code_size_bytes(self) -> int:
        return self.pq.code_size_bytes()

    def compression_ratio(self) -> float:
        self._require_trained()
        return self.pq.compression_ratio()

    def quantization_error(self, data: np.ndarray) -> float:
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        recon = self.decode(self.encode(data)).astype(np.float64)
        return float(np.mean(np.sum((data - recon) ** 2, axis=1)))

    @property
    def rotation(self) -> np.ndarray:
        self._require_trained()
        return self._rotation
