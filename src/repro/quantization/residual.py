"""Residual (hierarchical) quantization [89] (§2.2).

Where PQ splits the *dimensions*, a residual quantizer stacks
codebooks: level 0 quantizes the vector, level 1 quantizes the
remaining residual, and so on.  Reconstruction is the sum of one
codeword per level, so error decreases with depth while the code stays
``levels`` bytes.

ADC uses the expansion  d^2(q, x_hat) = ||q||^2 - 2 q.x_hat + ||x_hat||^2:
``q . x_hat`` is a sum of per-level inner-product table lookups, and
``||x_hat||^2`` is precomputed per database code at encode time —
so queries never reconstruct vectors.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import IndexNotBuiltError
from ..core.types import VECTOR_DTYPE
from .kmeans import kmeans


class ResidualQuantizer:
    """A stack of ``levels`` k-means codebooks over successive residuals.

    Parameters
    ----------
    levels:
        Codebooks in the cascade (bytes per code).
    ks:
        Centroids per level (<= 256).
    """

    def __init__(self, levels: int = 4, ks: int = 256, seed: int = 0):
        if levels <= 0:
            raise ValueError("levels must be positive")
        if not 2 <= ks <= 256:
            raise ValueError("ks must be in [2, 256]")
        self.levels = levels
        self.ks = ks
        self.seed = seed
        self.dim: int | None = None
        self._codebooks: np.ndarray | None = None  # (levels, ks, d)

    @property
    def is_trained(self) -> bool:
        return self._codebooks is not None

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexNotBuiltError("ResidualQuantizer.train() has not been called")

    def train(self, data: np.ndarray) -> "ResidualQuantizer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < self.ks:
            raise ValueError(f"need >= ks={self.ks} training rows, got {data.shape}")
        self.dim = data.shape[1]
        codebooks = np.empty((self.levels, self.ks, self.dim))
        residual = data.copy()
        for level in range(self.levels):
            result = kmeans(residual, self.ks, seed=self.seed + level)
            codebooks[level] = result.centroids
            residual = residual - result.centroids[result.assignments]
        self._codebooks = codebooks
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """(n, levels) uint8 codes (greedy per-level assignment)."""
        self._require_trained()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        codes = np.empty((vectors.shape[0], self.levels), dtype=np.uint8)
        residual = vectors.copy()
        for level in range(self.levels):
            cb = self._codebooks[level]
            sq = (
                np.einsum("ij,ij->i", residual, residual)[:, None]
                + np.einsum("ij,ij->i", cb, cb)[None, :]
                - 2.0 * residual @ cb.T
            )
            chosen = sq.argmin(axis=1)
            codes[:, level] = chosen
            residual -= cb[chosen]
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        self._require_trained()
        codes = np.atleast_2d(codes)
        out = np.zeros((codes.shape[0], self.dim))
        for level in range(self.levels):
            out += self._codebooks[level][codes[:, level]]
        return out.astype(VECTOR_DTYPE)

    def reconstruction_norms_sq(self, codes: np.ndarray) -> np.ndarray:
        """||x_hat||^2 per code — stored alongside codes for ADC."""
        decoded = self.decode(codes).astype(np.float64)
        return np.einsum("ij,ij->i", decoded, decoded)

    def adc_distances(
        self, query: np.ndarray, codes: np.ndarray,
        norms_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Squared L2 from a float query to coded vectors, table-based."""
        self._require_trained()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        codes = np.atleast_2d(codes)
        if norms_sq is None:
            norms_sq = self.reconstruction_norms_sq(codes)
        # q . x_hat = sum over levels of q . codeword[level]
        ip = np.zeros(codes.shape[0])
        for level in range(self.levels):
            table = self._codebooks[level] @ query  # (ks,)
            ip += table[codes[:, level]]
        return float(query @ query) - 2.0 * ip + norms_sq

    def quantization_error(self, data: np.ndarray) -> float:
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        recon = self.decode(self.encode(data)).astype(np.float64)
        return float(np.mean(np.sum((data - recon) ** 2, axis=1)))

    def code_size_bytes(self) -> int:
        return self.levels
