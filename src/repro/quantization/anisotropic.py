"""Score-aware anisotropic quantization (ScaNN [46]) (§2.2).

For maximum-inner-product search, not all quantization error is equal:
error *parallel* to the datapoint changes its inner products with
queries far more than *orthogonal* error.  ScaNN trains codebooks under
the anisotropic loss

    L(x, c) = h_par * ||r_par||^2 + h_orth * ||r_orth||^2,
    r = x - c,  r_par = (r.x / ||x||^2) x,  r_orth = r - r_par,

with h_par > h_orth (parameterized here by ``eta = h_par / h_orth``).
Training alternates exact anisotropic assignment with the closed-form
weighted-least-squares centroid update: each point contributes the
weighting matrix  W_i = h_par P_i + h_orth (I - P_i)  (P_i the projector
onto x_i), and  c_j = (sum W_i)^-1 (sum W_i x_i)  over the cluster.

``eta = 1`` recovers plain k-means — the ablation bench E16 measures
the MIPS recall gap anisotropy buys at equal codebook size.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import IndexNotBuiltError
from .kmeans import kmeans


class AnisotropicQuantizer:
    """Single-level vector quantizer trained with anisotropic loss.

    Parameters
    ----------
    num_centroids:
        Codebook size.
    eta:
        Parallel-to-orthogonal error weight ratio (>= 1).  ScaNN derives
        eta from a recall target; we expose it directly.
    """

    def __init__(
        self,
        num_centroids: int = 256,
        eta: float = 4.0,
        iterations: int = 10,
        seed: int = 0,
    ):
        if num_centroids < 1:
            raise ValueError("num_centroids must be >= 1")
        if eta < 1.0:
            raise ValueError("eta must be >= 1 (1 recovers plain k-means)")
        self.num_centroids = num_centroids
        self.eta = eta
        self.iterations = iterations
        self.seed = seed
        self.centroids: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self.centroids is not None

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexNotBuiltError(
                "AnisotropicQuantizer.train() has not been called"
            )

    # ---------------------------------------------------------------- loss

    def _losses(self, data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """(n, k) anisotropic losses, vectorized.

        With unit h_orth and h_par = eta:
        L = ||r||^2 + (eta - 1) * (r.x)^2 / ||x||^2.
        """
        r_sq = (
            np.einsum("ij,ij->i", data, data)[:, None]
            + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            - 2.0 * data @ centroids.T
        )
        norms_sq = np.einsum("ij,ij->i", data, data)
        safe = np.where(norms_sq > 0, norms_sq, 1.0)
        # r.x = x.x - c.x
        rx = norms_sq[:, None] - data @ centroids.T
        return np.clip(r_sq, 0, None) + (self.eta - 1.0) * rx**2 / safe[:, None]

    def train(self, data: np.ndarray) -> "AnisotropicQuantizer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < self.num_centroids:
            raise ValueError(
                f"need >= {self.num_centroids} training rows, got {data.shape}"
            )
        dim = data.shape[1]
        # Warm-start from plain k-means.
        centroids = kmeans(data, self.num_centroids, seed=self.seed).centroids
        norms_sq = np.einsum("ij,ij->i", data, data)
        safe = np.where(norms_sq > 0, norms_sq, 1.0)
        eye = np.eye(dim)
        for _ in range(self.iterations):
            assign = self._losses(data, centroids).argmin(axis=1)
            new_centroids = centroids.copy()
            for j in range(self.num_centroids):
                members = np.flatnonzero(assign == j)
                if members.size == 0:
                    continue
                x = data[members]
                w = (self.eta - 1.0) / safe[members]  # extra parallel weight
                # sum W_i = sum [I + w_i x_i x_i^T]
                a = members.size * eye + (x * w[:, None]).T @ x
                # sum W_i x_i = sum [x_i + w_i ||x_i||^2 x_i]
                #             = sum x_i (1 + w_i ||x_i||^2)
                b = ((1.0 + w * norms_sq[members])[:, None] * x).sum(axis=0)
                new_centroids[j] = np.linalg.solve(a, b)
            centroids = new_centroids
        self.centroids = centroids
        return self

    # -------------------------------------------------------------- encoding

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest centroid under the anisotropic loss."""
        self._require_trained()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        return self._losses(vectors, self.centroids).argmin(axis=1)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        self._require_trained()
        return self.centroids[np.atleast_1d(codes)]

    def mips_scores(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner products <query, x> via the codewords."""
        self._require_trained()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        table = self.centroids @ query  # (k,)
        return table[np.atleast_1d(codes)]

    def score_aware_error(self, data: np.ndarray) -> float:
        """Mean anisotropic loss on ``data`` (the trained objective)."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        losses = self._losses(data, self.centroids)
        return float(losses.min(axis=1).mean())
