"""Product quantization (PQ) [49] with ADC and SDC lookups (§2.2).

PQ splits the d-dimensional space into ``m`` subspaces of d/m dimensions,
learns a ``ks``-centroid codebook per subspace by k-means, and encodes a
vector as the tuple of its nearest sub-centroid indices — m * log2(ks)
bits per vector.

Distance estimation:

* **ADC** (asymmetric): the float query is compared against codes via a
  per-subspace lookup table of query-to-centroid distances, one table
  build per query and then one table lookup per (vector, subspace).
* **SDC** (symmetric): the query is itself encoded and distances come
  from precomputed centroid-to-centroid tables; cheaper per lookup but
  doubly approximate.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import IndexNotBuiltError
from ..core.types import VECTOR_DTYPE
from .kmeans import kmeans


class ProductQuantizer:
    """An m-subspace, ks-centroid product quantizer.

    Parameters
    ----------
    m:
        Number of subspaces; must divide the dimension at train time.
    ks:
        Centroids per subspace (<= 256 keeps codes in uint8).
    """

    def __init__(self, m: int = 8, ks: int = 256, seed: int = 0):
        if m <= 0:
            raise ValueError("m must be positive")
        if not 2 <= ks <= 256:
            raise ValueError("ks must be in [2, 256] (codes are uint8)")
        self.m = m
        self.ks = ks
        self.seed = seed
        self.dim: int | None = None
        self.subdim: int | None = None
        # (m, ks, subdim) codebooks.
        self._codebooks: np.ndarray | None = None
        # (m, ks, ks) symmetric centroid-to-centroid squared distances,
        # built lazily for SDC.
        self._sdc_tables: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self._codebooks is not None

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexNotBuiltError("ProductQuantizer.train() has not been called")

    def train(self, data: np.ndarray) -> "ProductQuantizer":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("training data must be a non-empty 2-D matrix")
        n, dim = data.shape
        if dim % self.m != 0:
            raise ValueError(f"dimension {dim} is not divisible by m={self.m}")
        if n < self.ks:
            raise ValueError(f"need at least ks={self.ks} training points, got {n}")
        self.dim = dim
        self.subdim = dim // self.m
        codebooks = np.empty((self.m, self.ks, self.subdim), dtype=np.float64)
        for sub in range(self.m):
            block = data[:, sub * self.subdim : (sub + 1) * self.subdim]
            result = kmeans(block, self.ks, seed=self.seed + sub)
            codebooks[sub] = result.centroids
        self._codebooks = codebooks
        self._sdc_tables = None
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """(n, m) uint8 codes: nearest sub-centroid per subspace."""
        self._require_trained()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        codes = np.empty((vectors.shape[0], self.m), dtype=np.uint8)
        for sub in range(self.m):
            block = vectors[:, sub * self.subdim : (sub + 1) * self.subdim]
            cb = self._codebooks[sub]
            sq = (
                np.einsum("ij,ij->i", block, block)[:, None]
                + np.einsum("ij,ij->i", cb, cb)[None, :]
                - 2.0 * block @ cb.T
            )
            codes[:, sub] = sq.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors by concatenating sub-centroids."""
        self._require_trained()
        codes = np.atleast_2d(codes)
        n = codes.shape[0]
        out = np.empty((n, self.dim), dtype=np.float64)
        for sub in range(self.m):
            out[:, sub * self.subdim : (sub + 1) * self.subdim] = self._codebooks[
                sub
            ][codes[:, sub]]
        return out.astype(VECTOR_DTYPE)

    # -------------------------------------------------------------------- ADC

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """(m, ks) table of squared distances query-subvector -> centroid."""
        self._require_trained()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[0]}")
        table = np.empty((self.m, self.ks), dtype=np.float64)
        for sub in range(self.m):
            q = query[sub * self.subdim : (sub + 1) * self.subdim]
            diff = self._codebooks[sub] - q
            table[sub] = np.einsum("ij,ij->i", diff, diff)
        return table

    def adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """(c, m, ks) stack of ADC tables for a batch of queries.

        One einsum per subspace covers every query at once — the batched
        analogue of :meth:`adc_table` (same difference-form arithmetic,
        so each slice matches the per-query table).  IVFADC uses this to
        build all probed cells' residual tables in one pass.
        """
        self._require_trained()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {queries.shape[1]}")
        # One difference tensor and one einsum cover every (query, sub,
        # centroid) triple; the reduction order over subdim matches the
        # per-query loop, so each slice equals adc_table(queries[i]).
        sub_queries = queries.reshape(queries.shape[0], self.m, self.subdim)
        diff = self._codebooks[None, :, :, :] - sub_queries[:, :, None, :]
        return np.einsum("cmks,cmks->cmk", diff, diff)

    @staticmethod
    def lookup(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum table entries along the code tuple -> squared ADC distances."""
        codes = np.atleast_2d(codes)
        m = codes.shape[1]
        cols = np.arange(m)
        return table[cols, codes].sum(axis=1)

    def adc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric squared distances from a float query to coded vectors."""
        return self.lookup(self.adc_table(query), codes)

    # -------------------------------------------------------------------- SDC

    def _ensure_sdc_tables(self) -> np.ndarray:
        if self._sdc_tables is None:
            tables = np.empty((self.m, self.ks, self.ks), dtype=np.float64)
            for sub in range(self.m):
                cb = self._codebooks[sub]
                sq = (
                    np.einsum("ij,ij->i", cb, cb)[:, None]
                    + np.einsum("ij,ij->i", cb, cb)[None, :]
                    - 2.0 * cb @ cb.T
                )
                tables[sub] = np.clip(sq, 0.0, None)
            self._sdc_tables = tables
        return self._sdc_tables

    def sdc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Symmetric squared distances (query is itself quantized)."""
        self._require_trained()
        tables = self._ensure_sdc_tables()
        qcode = self.encode(np.atleast_2d(query))[0]
        codes = np.atleast_2d(codes)
        total = np.zeros(codes.shape[0], dtype=np.float64)
        for sub in range(self.m):
            total += tables[sub, qcode[sub], codes[:, sub]]
        return total

    # -------------------------------------------------------------- properties

    def code_size_bytes(self) -> int:
        """Bytes per encoded vector."""
        return self.m  # uint8 per subspace

    def compression_ratio(self) -> float:
        self._require_trained()
        raw = self.dim * np.dtype(VECTOR_DTYPE).itemsize
        return raw / self.code_size_bytes()

    def quantization_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error on ``data``."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        recon = self.decode(self.encode(data)).astype(np.float64)
        return float(np.mean(np.sum((data - recon) ** 2, axis=1)))
