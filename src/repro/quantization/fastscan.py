"""Register-blocked ADC scan — a Quick(er)-ADC analogue [26, 27] (§2.3).

Quick-ADC observes that naive ADC is bottlenecked by *memory retrievals*:
per candidate, per subspace, one random lookup into the distance table.
The fix stores the table in SIMD registers (quantized to 8 bits so 16
entries fit a 128-bit register) and replaces gathers with in-register
shuffles over *transposed, blocked* code layouts.

The same structure maps onto numpy: we (1) quantize the ADC table to
uint8, (2) keep codes in a transposed (m, n) layout so each subspace's
lookup is one contiguous vectorized gather, and (3) accumulate in a
uint16 "register" array.  The naive baseline does per-row Python-level
lookups, mirroring the scalar gather code the papers beat.  The bench
(E10) measures the throughput gap's *shape*; the quantized-table recall
cost is measurable via :func:`table_quantization_error`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..index._kernels import topk_indices
from .pq import ProductQuantizer


@dataclass
class QuantizedTable:
    """An ADC table quantized to uint8 with an affine inverse transform."""

    table: np.ndarray  # (m, ks) uint8
    scale: float
    offset: float

    def dequantize(self, accumulated: np.ndarray, m: int) -> np.ndarray:
        """Map uint accumulator sums back to approximate squared distances."""
        return accumulated.astype(np.float64) * self.scale + m * self.offset


def quantize_table(table: np.ndarray) -> QuantizedTable:
    """Quantize an (m, ks) float ADC table to uint8 per Quicker-ADC.

    Entries are affinely mapped so the global min maps to 0 and the global
    max to 255; sums of m entries then fit comfortably in uint16 for
    m <= 257.
    """
    lo = float(table.min())
    hi = float(table.max())
    span = hi - lo
    if span == 0:
        return QuantizedTable(np.zeros_like(table, dtype=np.uint8), 1.0, lo)
    scale = span / 255.0
    q = np.rint((table - lo) / scale).astype(np.uint8)
    return QuantizedTable(q, scale, lo)


def table_quantization_error(table: np.ndarray) -> float:
    """Worst-case per-entry error introduced by uint8 table quantization."""
    span = float(table.max() - table.min())
    return span / 255.0 / 2.0


def naive_adc_scan(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Scalar-gather baseline: per-vector, per-subspace table lookups.

    Intentionally row-at-a-time (as compiled scalar code would be) so the
    blocked variant's advantage is observable.
    """
    codes = np.atleast_2d(codes)
    n, m = codes.shape
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        acc = 0.0
        row = codes[i]
        for sub in range(m):
            acc += table[sub, row[sub]]
        out[i] = acc
    return out


def blocked_adc_scan(
    table: np.ndarray, codes_transposed: np.ndarray, exact: bool = False
) -> np.ndarray:
    """Blocked scan over a transposed (m, n) code layout.

    With ``exact=False`` (the Quick-ADC mode) the table is quantized to
    uint8 and accumulated in uint16; with ``exact=True`` the float table
    is used with the same blocked access pattern (pure layout win).
    """
    m, n = codes_transposed.shape
    if exact:
        acc = np.zeros(n, dtype=np.float64)
        for sub in range(m):
            acc += table[sub][codes_transposed[sub]]
        return acc
    qt = quantize_table(table)
    acc = np.zeros(n, dtype=np.uint32)
    for sub in range(m):
        acc += qt.table[sub][codes_transposed[sub]]
    return qt.dequantize(acc, m)


def transpose_codes(codes: np.ndarray) -> np.ndarray:
    """Re-layout (n, m) codes to the contiguous (m, n) scan order."""
    return np.ascontiguousarray(np.atleast_2d(codes).T)


class FastScanPQ:
    """A PQ wrapper that stores codes pre-transposed for blocked scans."""

    def __init__(self, pq: ProductQuantizer):
        self.pq = pq
        self._codes_t: np.ndarray | None = None
        self._ids: np.ndarray | None = None

    def add(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        codes_t = transpose_codes(self.pq.encode(vectors))
        ids = np.asarray(ids, dtype=np.int64)
        if self._codes_t is None:
            self._codes_t = codes_t
            self._ids = ids
        else:
            self._codes_t = np.concatenate([self._codes_t, codes_t], axis=1)
            self._ids = np.concatenate([self._ids, ids])

    def search(
        self, query: np.ndarray, k: int, exact: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k via a blocked ADC scan over all stored codes."""
        if self._codes_t is None or self._codes_t.shape[1] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        table = self.pq.adc_table(query)
        dists = blocked_adc_scan(table, self._codes_t, exact=exact)
        order = topk_indices(dists, min(k, dists.shape[0]))
        return self._ids[order], dists[order]

    def __len__(self) -> int:
        return 0 if self._codes_t is None else self._codes_t.shape[1]
